"""ODE layer: equation systems, taxonomy, rewriting, integration.

This subpackage implements everything the paper's framework needs on
the mathematical side:

* :mod:`~repro.odes.term` / :mod:`~repro.odes.system` -- polynomial
  terms and equation systems ``dX/dt = f(X)``.
* :mod:`~repro.odes.parser` -- text-to-system parsing.
* :mod:`~repro.odes.classify` -- the Section 2 taxonomy (complete,
  completely partitionable, polynomial, restricted polynomial).
* :mod:`~repro.odes.partition` -- the ``(+T, -T)`` term pairing that
  becomes protocol transitions.
* :mod:`~repro.odes.rewrite` -- the Section 7 rewriting techniques.
* :mod:`~repro.odes.integrate` / :mod:`~repro.odes.equilibria` /
  :mod:`~repro.odes.phase` -- mean-field integration, equilibrium
  finding and phase-portrait generation (the analysis substrate for
  Figures 2, 4 and 7).
* :mod:`~repro.odes.library` -- the paper's named systems.
"""

from .classify import TaxonomyReport, classify, is_complete, is_completely_partitionable, is_polynomial, is_restricted_polynomial
from .equilibria import Equilibrium, classify_point, find_equilibria, stable_equilibria
from .integrate import Trajectory, integrate, integrate_to_equilibrium
from .parser import ParseError, parse_equations, parse_system
from .partition import PartitionResult, TermPair, partition_terms
from .phase import FIGURE2_STARTS, FIGURE4_STARTS, PhasePortrait, phase_portrait, simplex_grid_points
from .rewrite import (
    auto_rewrite,
    denormalize,
    expand_constants,
    linear_ode_to_system,
    make_complete,
    multiply_terms_by_total,
    normalize,
    split_for_partition,
    to_restricted,
)
from .system import EquationSystem, SystemError, build_system
from .term import Term, combine_like_terms

from . import library

__all__ = [
    "EquationSystem",
    "SystemError",
    "build_system",
    "Term",
    "combine_like_terms",
    "parse_system",
    "parse_equations",
    "ParseError",
    "classify",
    "TaxonomyReport",
    "is_complete",
    "is_polynomial",
    "is_restricted_polynomial",
    "is_completely_partitionable",
    "partition_terms",
    "PartitionResult",
    "TermPair",
    "make_complete",
    "normalize",
    "denormalize",
    "linear_ode_to_system",
    "expand_constants",
    "multiply_terms_by_total",
    "to_restricted",
    "split_for_partition",
    "auto_rewrite",
    "integrate",
    "integrate_to_equilibrium",
    "Trajectory",
    "find_equilibria",
    "stable_equilibria",
    "classify_point",
    "Equilibrium",
    "phase_portrait",
    "PhasePortrait",
    "simplex_grid_points",
    "FIGURE2_STARTS",
    "FIGURE4_STARTS",
    "library",
]
