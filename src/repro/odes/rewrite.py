"""Equation rewriting techniques (paper Section 7).

These transforms bring arbitrary polynomial systems into the *mappable*
form required by the synthesizer: complete, and either restricted
polynomial (Flipping + One-Time-Sampling suffice, Theorem 1) or plain
polynomial (Tokenizing also needed, Theorem 5 as corrected by the
errata).

Implemented techniques:

* :func:`make_complete` -- add a slack variable ``z = 1 - sum(x)`` whose
  derivative balances the system ("Rewriting an equation into a
  Complete form").
* :func:`normalize` -- rescale a system written in absolute counts so
  the variables become fractions summing to one ("Normalizing").
* :func:`linear_ode_to_system` -- reduce a higher-order linear ODE in a
  single variable to a first-order system ("Mapping Differential
  equations of higher Orders"), reproducing the paper's
  ``x'' + x' = x`` example.
* :func:`expand_constants` -- rewrite a bare constant ``+/- c`` as
  ``+/- c * sum(v)``, valid on the simplex (Section 6, Tokenizing).
* :func:`multiply_terms_by_total` / :func:`to_restricted` -- the
  degree-raising substitution ``1 = sum(v)`` that turns the raw
  Lotka-Volterra competition system (eq. 6) into the restricted
  partitionable form (eq. 7).
* :func:`split_for_partition` -- split terms so a complete system
  partitions pairwise (the rewrite behind open question (5)).

All simplex-based rewrites (``expand_constants``, degree raising)
preserve the dynamics only on the invariant set ``sum(v) = 1``, which is
exactly where protocol state fractions live.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .partition import PartitionResult, partition_terms
from .system import EquationSystem, SystemError
from .term import Term, combine_like_terms


def _fresh_variable(existing: Sequence[str], base: str = "z") -> str:
    """Pick a slack-variable name not colliding with existing ones."""
    if base not in existing:
        return base
    index = 1
    while f"{base}{index}" in existing:
        index += 1
    return f"{base}{index}"


def make_complete(system: EquationSystem, slack: Optional[str] = None) -> EquationSystem:
    """Complete a system by adding ``slack' = -sum_x f_x``.

    This is the paper's completion rewrite: introduce ``z`` not in X with
    ``z = 1 - sum(x)`` and give it the balancing equation.  If the
    system is already complete it is returned unchanged (simplified).
    """
    from .classify import is_complete  # local import avoids a cycle

    system = system.simplified()
    if is_complete(system):
        return system
    slack = slack or _fresh_variable(system.variables)
    if slack in system.variables:
        raise SystemError(f"slack variable {slack!r} already exists")
    balancing: List[Term] = []
    for var in system.variables:
        balancing.extend(t.negated() for t in system.equations[var])
    equations = {v: system.equations[v] for v in system.variables}
    equations[slack] = tuple(combine_like_terms(balancing))
    return EquationSystem(
        tuple(system.variables) + (slack,), equations, name=system.name
    )


def normalize(system: EquationSystem, total: float) -> EquationSystem:
    """Rescale a count-denominated system onto the unit simplex.

    If the original variables ``X`` satisfy ``sum(X) = total`` and obey
    ``dX/dt = f(X)``, the fractions ``x = X / total`` obey a polynomial
    system whose term coefficients pick up a factor ``total^(degree-1)``.
    The paper's example: ``X' = -(1/N) X Y`` normalizes to ``x' = -x y``.
    """
    if total <= 0:
        raise SystemError(f"total must be positive, got {total}")
    equations = {}
    for var in system.variables:
        equations[var] = tuple(
            t.scaled(total ** (t.degree - 1)) for t in system.equations[var]
        )
    return EquationSystem(system.variables, equations, name=system.name)


def denormalize(system: EquationSystem, total: float) -> EquationSystem:
    """Inverse of :func:`normalize` (fractions back to counts)."""
    if total <= 0:
        raise SystemError(f"total must be positive, got {total}")
    equations = {}
    for var in system.variables:
        equations[var] = tuple(
            t.scaled(total ** (1 - t.degree)) for t in system.equations[var]
        )
    return EquationSystem(system.variables, equations, name=system.name)


def linear_ode_to_system(
    coefficients: Sequence[float],
    variable: str = "x",
    complete: bool = True,
) -> EquationSystem:
    """Reduce ``x^(k) = c_0 x + c_1 x' + ... + c_{k-1} x^(k-1)``.

    New variables ``u1 .. u_{k-1}`` stand for the successive derivatives
    (the paper: "introducing new variables for higher order terms").
    With ``complete=True`` a balancing slack variable is appended, which
    reproduces the paper's worked example: ``x'' + x' = x`` becomes
    ``x' = u; u' = x - u; z' = -x``.
    """
    order = len(coefficients)
    if order < 1:
        raise SystemError("need at least one coefficient (order >= 1)")
    names = [variable] + [f"u{i}" for i in range(1, order)]
    equations: Dict[str, List[Term]] = {}
    for i in range(order - 1):
        equations[names[i]] = [Term(1.0, {names[i + 1]: 1})]
    last_terms = [
        Term(c, {names[i]: 1}) for i, c in enumerate(coefficients) if c != 0
    ]
    equations[names[order - 1]] = last_terms
    system = EquationSystem(names, equations, name=f"{variable}-order-{order}")
    if order == 1:
        system = EquationSystem(
            [variable],
            {variable: [Term(coefficients[0], {variable: 1})]},
            name=system.name,
        )
    if complete:
        system = make_complete(system)
    return system.simplified()


def expand_constants(system: EquationSystem) -> EquationSystem:
    """Rewrite each constant term ``+/- c`` as ``+/- c * sum(v)``.

    Valid on the simplex (``sum(v) = 1``).  This is the preparatory step
    named in Section 6: after expansion, every term contains at least
    one variable and can be tokenized.
    """
    equations = {}
    for var in system.variables:
        new_terms: List[Term] = []
        for term in system.equations[var]:
            if term.is_constant():
                new_terms.extend(
                    term.times_variable(v) for v in system.variables
                )
            else:
                new_terms.append(term)
        equations[var] = tuple(new_terms)
    return EquationSystem(system.variables, equations, name=system.name).simplified()


def multiply_terms_by_total(
    system: EquationSystem,
    selector: Callable[[str, Term], bool],
) -> EquationSystem:
    """Multiply selected terms by ``sum(v) (= 1)``, raising their degree.

    This is the substitution that turns the raw LV competition equations
    (eq. 6, after completion) into the restricted partitionable form
    (eq. 7): the ``+3x`` term of ``x'`` becomes ``3x(x + y + z)`` and the
    quadratic pieces cancel, leaving ``+3xz - 3xy``.
    """
    equations = {}
    for var in system.variables:
        new_terms: List[Term] = []
        for term in system.equations[var]:
            if selector(var, term):
                new_terms.extend(
                    term.times_variable(v) for v in system.variables
                )
            else:
                new_terms.append(term)
        equations[var] = tuple(new_terms)
    return EquationSystem(system.variables, equations, name=system.name).simplified()


def to_restricted(
    system: EquationSystem, max_iterations: int = 6
) -> EquationSystem:
    """Try to eliminate token-requiring terms by degree raising.

    A term is an *offender* when it is a bare constant, or a negative
    term of ``f_x`` lacking a factor of ``x``.  Each iteration collects
    the offending monomials and multiplies, by ``sum(v)``, **every term
    with that monomial in every equation**.  Raising uniformly per
    monomial is what preserves symbolic completeness (each monomial's
    signed coefficient sum is redistributed identically), and the
    cancellations after simplification are what make the rewrite
    converge for systems like LV: applied to the completed equation (6)
    this produces exactly equation (7).

    Returns the first restricted-polynomial equivalent found; if the
    iteration budget runs out, returns the last attempt (callers can
    still map it with Tokenizing).
    """
    from .classify import is_restricted_polynomial  # local import, avoids cycle

    current = system.simplified()
    for _ in range(max_iterations):
        if is_restricted_polynomial(current):
            return current
        offending_monomials = set()
        for var in current.variables:
            for term in current.equations[var]:
                if term.is_constant() or (
                    term.sign < 0 and term.exponent_of(var) < 1
                ):
                    offending_monomials.add(term.monomial)

        def selected(
            _var: str, term: Term, monomials=frozenset(offending_monomials)
        ) -> bool:
            return term.monomial in monomials

        rewritten = multiply_terms_by_total(current, selected)
        if rewritten.equivalent_to(current):
            break  # no progress; stop early
        current = rewritten
    return current


def split_for_partition(
    system: EquationSystem,
) -> Tuple[EquationSystem, PartitionResult]:
    """Split terms so a complete system partitions pairwise.

    Returns the rewritten system (with split terms materialized in the
    equations, e.g. ``+12xy`` as ``+6xy + 6xy``) together with the
    partition.  Raises :class:`SystemError` when the system is not
    complete (splitting cannot fix incompleteness).
    """
    from .classify import is_complete  # local import avoids a cycle

    if not is_complete(system):
        raise SystemError(
            f"{system.name!r} is not complete; apply make_complete first"
        )
    partition = partition_terms(system, allow_splitting=True)
    if not partition.is_partitionable:
        raise SystemError(
            f"{system.name!r} could not be partitioned even with splitting"
        )
    equations: Dict[str, List[Term]] = {v: [] for v in system.variables}
    for pair in partition.pairs:
        equations[pair.source].append(pair.term)
        equations[pair.target].append(pair.term.negated())
    rewritten = EquationSystem(system.variables, equations, name=system.name)
    return rewritten, partition


def auto_rewrite(system: EquationSystem, slack: Optional[str] = None) -> EquationSystem:
    """One-call pipeline: complete, de-tokenize if possible, simplify.

    The returned system is guaranteed complete; it is restricted
    polynomial whenever the degree-raising rewrite can achieve that
    (as it can for the LV equations), and otherwise remains mappable
    through Tokenizing as long as it partitions (with splitting).
    """
    completed = make_complete(system, slack=slack)
    restricted = to_restricted(expand_constants(completed))
    return restricted.simplified()
