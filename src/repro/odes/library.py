"""Canonical equation systems from the paper (and close relatives).

Every system the paper manipulates is available here by name, in the
*fraction* notation (variables are fractions of processes, summing to
one).  The errata's count notation (``beta = 2b/N``) is reachable via
:func:`repro.odes.rewrite.denormalize`.

=======================  ==========================================
builder                  paper reference
=======================  ==========================================
``epidemic``             equation (0), the motivating pull epidemic
``endemic``              equation (1), Case Study I (Section 4.1)
``lv_raw``               equation (6), Case Study II, pre-rewrite
``lv``                   equation (7), the mappable LV system
``sir`` / ``sis``        standard epidemiology (Bailey [3])
``higher_order_demo``    the ``x'' + x' = x`` example of Section 7
=======================  ==========================================
"""

from __future__ import annotations

from typing import Optional

from .system import EquationSystem, build_system


def epidemic(rate: float = 1.0) -> EquationSystem:
    """Equation (0): ``x' = -rate*x*y; y' = rate*x*y``.

    ``x`` is the susceptible fraction, ``y`` the infected fraction.
    With ``rate=1`` this synthesizes to the canonical pull epidemic:
    each susceptible samples one process per period and turns infected
    if the target is infected.
    """
    return build_system(
        "epidemic",
        ["x", "y"],
        {
            "x": [(-rate, {"x": 1, "y": 1})],
            "y": [(+rate, {"x": 1, "y": 1})],
        },
    )


def endemic(
    alpha: float,
    gamma: float,
    beta: Optional[float] = None,
    b: Optional[int] = None,
) -> EquationSystem:
    """Equation (1), the endemic (SIRS-style) system, fraction notation.

    ``x`` = susceptible/receptive, ``y`` = infected/stash, ``z`` =
    immune/averse fractions::

        x' = -beta*x*y + alpha*z
        y' =  beta*x*y - gamma*y
        z' =  gamma*y  - alpha*z

    Exactly one of ``beta`` or ``b`` must be given.  When ``b`` (the
    per-period contact fan-out of the Figure 1 protocol) is supplied,
    the effective contact rate is ``beta = 2b``: receptives pull from
    ``b`` random targets and stashers push to ``b`` random targets
    (action (iv) with ``b = beta/2``), so
    ``beta = N(1 - (1 - b/N)^2) ~= 2b`` in fraction notation.
    """
    if (beta is None) == (b is None):
        raise ValueError("provide exactly one of beta= or b=")
    if beta is None:
        beta = 2.0 * float(b)  # type: ignore[arg-type]
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
    if not 0 < gamma <= 1:
        raise ValueError(f"gamma must lie in (0, 1], got {gamma}")
    if beta <= gamma:
        raise ValueError(f"the paper assumes beta > gamma (got {beta} <= {gamma})")
    return build_system(
        "endemic",
        ["x", "y", "z"],
        {
            "x": [(-beta, {"x": 1, "y": 1}), (+alpha, {"z": 1})],
            "y": [(+beta, {"x": 1, "y": 1}), (-gamma, {"y": 1})],
            "z": [(+gamma, {"y": 1}), (-alpha, {"z": 1})],
        },
    )


def lv_raw(rate: float = 3.0) -> EquationSystem:
    """Equation (6): the raw Lotka-Volterra competition system.

    Two variables only; not complete (a slack variable must be added)
    and not directly partitionable -- the starting point for the
    Section 4.2 rewrite demonstration::

        x' = rate*x*(1 - x - 2y) = rate*x - rate*x^2 - 2*rate*x*y
        y' = rate*y*(1 - y - 2x) = rate*y - rate*y^2 - 2*rate*x*y
    """
    return build_system(
        "lv-raw",
        ["x", "y"],
        {
            "x": [
                (+rate, {"x": 1}),
                (-rate, {"x": 2}),
                (-2 * rate, {"x": 1, "y": 1}),
            ],
            "y": [
                (+rate, {"y": 1}),
                (-rate, {"y": 2}),
                (-2 * rate, {"x": 1, "y": 1}),
            ],
        },
    )


def lv(rate: float = 3.0) -> EquationSystem:
    """Equation (7): the mappable (restricted, partitionable) LV system.

    ``x`` and ``y`` are the two competing proposal camps, ``z`` the
    undecided fraction::

        x' = +rate*x*z - rate*x*y
        y' = +rate*y*z - rate*x*y
        z' = -rate*x*z - rate*y*z + rate*x*y + rate*x*y

    Note the *two* separate ``+rate*x*y`` terms in ``z'`` -- they pair
    with the ``-rate*x*y`` outflows of ``x`` and ``y`` respectively.
    """
    return EquationSystem(
        ["x", "y", "z"],
        {
            "x": _terms([(+rate, {"x": 1, "z": 1}), (-rate, {"x": 1, "y": 1})]),
            "y": _terms([(+rate, {"y": 1, "z": 1}), (-rate, {"x": 1, "y": 1})]),
            "z": _terms(
                [
                    (-rate, {"x": 1, "z": 1}),
                    (-rate, {"y": 1, "z": 1}),
                    (+rate, {"x": 1, "y": 1}),
                    (+rate, {"x": 1, "y": 1}),
                ]
            ),
        },
        name="lv",
    )


def sir(beta: float, gamma: float) -> EquationSystem:
    """Classic SIR epidemic (susceptible/infected/recovered), complete."""
    return build_system(
        "sir",
        ["s", "i", "r"],
        {
            "s": [(-beta, {"s": 1, "i": 1})],
            "i": [(+beta, {"s": 1, "i": 1}), (-gamma, {"i": 1})],
            "r": [(+gamma, {"i": 1})],
        },
    )


def sis(beta: float, gamma: float) -> EquationSystem:
    """SIS epidemic: infection with recovery back to susceptible."""
    return build_system(
        "sis",
        ["s", "i"],
        {
            "s": [(-beta, {"s": 1, "i": 1}), (+gamma, {"i": 1})],
            "i": [(+beta, {"s": 1, "i": 1}), (-gamma, {"i": 1})],
        },
    )


def push_epidemic(rate: float = 1.0) -> EquationSystem:
    """Push-style epidemic: infectives sample and convert susceptibles.

    The mean-field equations coincide with :func:`epidemic`; the
    distinction matters at the protocol level (who sends the message),
    which :mod:`repro.protocols.epidemic` models explicitly.
    """
    return epidemic(rate).with_name("push-epidemic")


def higher_order_demo() -> EquationSystem:
    """The Section 7 example ``x'' + x' = x`` as a first-order system.

    Rewritten (paper): ``x' = u; u' = x - u; z' = -x``.
    """
    return build_system(
        "higher-order-demo",
        ["x", "u", "z"],
        {
            "x": [(+1.0, {"u": 1})],
            "u": [(+1.0, {"x": 1}), (-1.0, {"u": 1})],
            "z": [(-1.0, {"x": 1})],
        },
    )


def _terms(pairs):
    from .term import Term

    return tuple(Term(c, e) for c, e in pairs)


#: Registry of all named builders (used by CLI-ish helpers and tests).
REGISTRY = {
    "epidemic": epidemic,
    "push-epidemic": push_epidemic,
    "endemic": endemic,
    "lv-raw": lv_raw,
    "lv": lv,
    "sir": sir,
    "sis": sis,
    "higher-order-demo": higher_order_demo,
}
