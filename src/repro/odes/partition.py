"""Pairing of terms for *completely partitionable* systems.

A complete system is completely partitionable when every term can be
grouped into a pair ``(+T, -T)`` summing to zero (paper Section 2).
Each such pair is exactly one protocol transition: the ``-T`` term in
``f_source`` is the outflow of processes leaving ``state source``, and
the matching ``+T`` in ``f_target`` is the corresponding inflow into
``state target``.  This module computes that pairing.

Two modes are offered:

* **strict** (the paper's definition): terms pair only when their
  monomials and magnitudes match exactly.
* **splitting**: terms may first be split into equal-monomial pieces
  (e.g. ``-2xy`` into two ``-xy`` halves).  Under splitting, *every*
  complete polynomial system is partitionable, because completeness
  forces the signed coefficients of each monomial to cancel across
  equations -- our answer to the paper's open question (5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .system import EquationSystem
from .term import COEFF_ATOL, COEFF_RTOL, Term

import math


@dataclass(frozen=True)
class TermPair:
    """One matched ``(-T, +T)`` couple: a protocol transition.

    Attributes
    ----------
    source:
        Variable whose equation contains the negative term; processes in
        this state execute the action.
    target:
        Variable whose equation contains the positive twin; the action's
        transition destination.
    term:
        The negative term (coefficient < 0) with its (possibly split)
        actual coefficient.
    """

    source: str
    target: str
    term: Term

    @property
    def magnitude(self) -> float:
        """The positive rate constant ``c`` of the pair."""
        return self.term.magnitude

    @property
    def monomial(self) -> Tuple[Tuple[str, int], ...]:
        return self.term.monomial

    def render(self) -> str:
        return f"{self.source} --[{self.term.render()}]--> {self.target}"


@dataclass
class PartitionResult:
    """Outcome of the pairing attempt."""

    pairs: List[TermPair] = field(default_factory=list)
    unmatched: List[Tuple[str, Term]] = field(default_factory=list)
    used_splitting: bool = False

    @property
    def is_partitionable(self) -> bool:
        return not self.unmatched

    def pairs_from(self, source: str) -> List[TermPair]:
        """All transitions out of a given state."""
        return [p for p in self.pairs if p.source == source]

    def render(self) -> str:
        lines = [p.render() for p in self.pairs]
        for var, term in self.unmatched:
            lines.append(f"UNMATCHED in {var}': {term.render()}")
        return "\n".join(lines)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=COEFF_RTOL, abs_tol=COEFF_ATOL)


def partition_terms(
    system: EquationSystem,
    allow_splitting: bool = False,
    presimplify: bool = True,
) -> PartitionResult:
    """Pair every ``-T`` with a ``+T`` of identical monomial.

    Parameters
    ----------
    allow_splitting:
        When True, terms of the same monomial with unequal magnitudes
        may be split so the masses match piecewise (see module docs).
    presimplify:
        When True (default), like terms are combined first.  The
        paper's definition operates on the terms *as written* -- the two
        separate ``+3xy`` terms in equation (7)'s ``z'`` each pair with
        one of the ``-3xy`` outflows -- so the taxonomy classifier passes
        ``presimplify=False``.  The synthesizer keeps the default and
        relies on splitting, which yields the same actions.
    """
    if presimplify:
        system = system.simplified()

    by_monomial: Dict[Tuple[Tuple[str, int], ...], Dict[str, List[Tuple[str, float]]]] = {}
    for var in system.variables:
        for term in system.equations[var]:
            bucket = by_monomial.setdefault(term.monomial, {"pos": [], "neg": []})
            side = "pos" if term.sign > 0 else "neg"
            bucket[side].append((var, term.magnitude))

    result = PartitionResult()
    for monomial, bucket in by_monomial.items():
        positives = sorted(bucket["pos"], key=lambda item: (-item[1], item[0]))
        negatives = sorted(bucket["neg"], key=lambda item: (-item[1], item[0]))
        if allow_splitting:
            _match_with_splitting(monomial, positives, negatives, result)
        else:
            _match_strict(monomial, positives, negatives, result)
    # Deterministic order: by source then target then descending rate.
    result.pairs.sort(key=lambda p: (p.source, p.target, -p.magnitude))
    result.unmatched.sort(key=lambda item: item[0])
    return result


def _match_strict(
    monomial: Tuple[Tuple[str, int], ...],
    positives: List[Tuple[str, float]],
    negatives: List[Tuple[str, float]],
    result: PartitionResult,
) -> None:
    remaining = list(positives)
    for neg_var, magnitude in negatives:
        match_index = None
        for i, (_, pos_mag) in enumerate(remaining):
            if _close(pos_mag, magnitude):
                match_index = i
                break
        if match_index is None:
            result.unmatched.append((neg_var, Term(-magnitude, dict(monomial))))
            continue
        pos_var, _ = remaining.pop(match_index)
        result.pairs.append(
            TermPair(neg_var, pos_var, Term(-magnitude, dict(monomial)))
        )
    for pos_var, magnitude in remaining:
        result.unmatched.append((pos_var, Term(magnitude, dict(monomial))))


def _match_with_splitting(
    monomial: Tuple[Tuple[str, int], ...],
    positives: List[Tuple[str, float]],
    negatives: List[Tuple[str, float]],
    result: PartitionResult,
) -> None:
    """Greedy fractional matching (two-pointer over sorted mass lists)."""
    pos = [(var, mag) for var, mag in positives]
    neg = [(var, mag) for var, mag in negatives]
    i = j = 0
    while i < len(neg) and j < len(pos):
        neg_var, neg_mag = neg[i]
        pos_var, pos_mag = pos[j]
        piece = min(neg_mag, pos_mag)
        if piece > COEFF_ATOL:
            result.pairs.append(
                TermPair(neg_var, pos_var, Term(-piece, dict(monomial)))
            )
            if not _close(piece, neg_mag) or not _close(piece, pos_mag):
                result.used_splitting = True
        neg_mag -= piece
        pos_mag -= piece
        if neg_mag <= COEFF_ATOL:
            i += 1
        else:
            neg[i] = (neg_var, neg_mag)
        if pos_mag <= COEFF_ATOL:
            j += 1
        else:
            pos[j] = (pos_var, pos_mag)
    for k in range(i, len(neg)):
        var, mag = neg[k]
        if mag > COEFF_ATOL:
            result.unmatched.append((var, Term(-mag, dict(monomial))))
    for k in range(j, len(pos)):
        var, mag = pos[k]
        if mag > COEFF_ATOL:
            result.unmatched.append((var, Term(mag, dict(monomial))))


def reconstruct_system(
    variables: List[str], pairs: List[TermPair], name: str = "reconstructed"
) -> EquationSystem:
    """Rebuild the equation system implied by a set of term pairs.

    Used to verify (in tests and in the synthesizer's self-check) that a
    partition is faithful: reconstructing from the pairs must yield a
    system equivalent to the simplified original.
    """
    equations: Dict[str, List[Term]] = {v: [] for v in variables}
    for pair in pairs:
        equations[pair.source].append(pair.term)
        equations[pair.target].append(pair.term.negated())
    return EquationSystem(variables, equations, name=name).simplified()
