"""Polynomial terms of differential equations.

The paper (Section 2) restricts attention to equation systems whose
right-hand sides are sums of *polynomial terms*.  Each term has the form

    ``+/- c * prod(y ** i_y for y in variables)``

with a positive constant ``c`` and non-negative integer exponents.  This
module provides the :class:`Term` value type used throughout the ODE
layer: it carries a signed coefficient and a monomial (a mapping from
variable name to exponent), and supports the small amount of algebra the
framework needs (evaluation, negation, scaling, splitting, degree
queries, canonical keys for pairing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

#: Relative tolerance used when comparing floating-point coefficients.
COEFF_RTOL = 1e-9

#: Absolute tolerance used when deciding whether a coefficient is zero.
COEFF_ATOL = 1e-12


def _clean_exponents(exponents: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    """Return a canonical, sorted exponent tuple with zero entries removed."""
    items = []
    for name, power in exponents.items():
        if not isinstance(power, int):
            if isinstance(power, float) and power.is_integer():
                power = int(power)
            else:
                raise ValueError(f"exponent for {name!r} must be an integer, got {power!r}")
        if power < 0:
            raise ValueError(f"exponent for {name!r} must be non-negative, got {power}")
        if power > 0:
            items.append((name, power))
    return tuple(sorted(items))


@dataclass(frozen=True)
class Term:
    """A signed polynomial term ``coefficient * monomial``.

    Parameters
    ----------
    coefficient:
        The signed constant in front of the monomial.  The paper writes
        terms as ``+/- c`` with ``c > 0``; here the sign is folded into
        the coefficient.
    exponents:
        Mapping from variable name to its (positive integer) exponent.
        Variables with exponent zero are dropped; a term with an empty
        exponent map is a constant.
    """

    coefficient: float
    exponents: Tuple[Tuple[str, int], ...] = field(default=())

    def __init__(self, coefficient: float, exponents: Mapping[str, int] | None = None):
        object.__setattr__(self, "coefficient", float(coefficient))
        object.__setattr__(self, "exponents", _clean_exponents(exponents or {}))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def monomial(self) -> Tuple[Tuple[str, int], ...]:
        """Canonical key identifying the monomial (sorted name/exponent pairs)."""
        return self.exponents

    @property
    def magnitude(self) -> float:
        """The positive constant ``c`` of the paper's ``+/- c`` notation."""
        return abs(self.coefficient)

    @property
    def sign(self) -> int:
        """+1 for positive terms, -1 for negative ones, 0 for a zero term."""
        if self.is_zero():
            return 0
        return 1 if self.coefficient > 0 else -1

    @property
    def variables(self) -> Tuple[str, ...]:
        """Names of the variables appearing with non-zero exponent."""
        return tuple(name for name, _ in self.exponents)

    @property
    def degree(self) -> int:
        """Total degree of the monomial (sum of exponents)."""
        return sum(power for _, power in self.exponents)

    @property
    def occurrences(self) -> int:
        """Total number of variable occurrences ``|T|`` (Section 3).

        This is the quantity the paper uses for message complexity and
        for the failure-compensation factor ``(1/(1-f))^(|T|-1)``: the
        monomial ``x^2 y`` has three occurrences.
        """
        return self.degree

    def exponent_of(self, name: str) -> int:
        """Exponent of variable ``name`` in this term (0 if absent)."""
        for var, power in self.exponents:
            if var == name:
                return power
        return 0

    def is_constant(self) -> bool:
        """True when the term has no variables (a bare ``+/- c``)."""
        return not self.exponents

    def is_zero(self) -> bool:
        """True when the coefficient is (numerically) zero."""
        return abs(self.coefficient) <= COEFF_ATOL

    def is_linear_in(self, name: str) -> bool:
        """True when the term is exactly ``c * name`` (a flipping term)."""
        return self.exponents == ((name, 1),)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate the term at a point given as ``{variable: value}``."""
        result = self.coefficient
        for name, power in self.exponents:
            result *= values[name] ** power
        return result

    def negated(self) -> "Term":
        """Return ``-self``."""
        return Term(-self.coefficient, dict(self.exponents))

    def scaled(self, factor: float) -> "Term":
        """Return ``factor * self``."""
        return Term(self.coefficient * factor, dict(self.exponents))

    def with_coefficient(self, coefficient: float) -> "Term":
        """Return a term with the same monomial and a new coefficient."""
        return Term(coefficient, dict(self.exponents))

    def times_variable(self, name: str, power: int = 1) -> "Term":
        """Return ``self * name**power`` (used by constant expansion)."""
        exps = dict(self.exponents)
        exps[name] = exps.get(name, 0) + power
        return Term(self.coefficient, exps)

    def split(self, pieces: int) -> Tuple["Term", ...]:
        """Split the term into ``pieces`` equal-coefficient copies.

        Splitting is the rewrite behind the discussion of the paper's
        open question (5): ``-2xy`` may be rewritten as two ``-xy``
        terms, each of which can then be paired independently.
        """
        if pieces < 1:
            raise ValueError("pieces must be >= 1")
        return tuple(self.scaled(1.0 / pieces) for _ in range(pieces))

    def same_monomial(self, other: "Term") -> bool:
        """True when both terms share the same monomial."""
        return self.exponents == other.exponents

    def cancels(self, other: "Term") -> bool:
        """True when ``self + other == 0`` (the paper's pairing criterion)."""
        return self.same_monomial(other) and math.isclose(
            self.coefficient, -other.coefficient, rel_tol=COEFF_RTOL, abs_tol=COEFF_ATOL
        )

    def expanded_variables(self) -> Tuple[str, ...]:
        """The monomial written out with multiplicity, lexicographically.

        One-Time-Sampling (Section 3.1) orders the variables of
        ``prod(y ** i_y)`` lexicographically and requires the j-th
        sampled process to be in the state of the j-th variable of this
        expansion.  ``x^2 z`` expands to ``('x', 'x', 'z')``.
        """
        out = []
        for name, power in self.exponents:  # already sorted by name
            out.extend([name] * power)
        return tuple(out)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, *, leading: bool = False) -> str:
        """Human-readable form, e.g. ``- 3*x*y^2`` or ``+ 0.5``."""
        sign = "-" if self.coefficient < 0 else ("" if leading else "+")
        mag = self.magnitude
        parts = []
        if not self.exponents or not math.isclose(mag, 1.0, rel_tol=COEFF_RTOL):
            parts.append(f"{mag:g}")
        for name, power in self.exponents:
            parts.append(name if power == 1 else f"{name}^{power}")
        body = "*".join(parts) if parts else "0"
        if leading and not sign:
            return body
        return f"{sign} {body}".strip() if leading else f"{sign} {body}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render(leading=True)


def combine_like_terms(terms: Iterable[Term]) -> Tuple[Term, ...]:
    """Sum terms sharing a monomial and drop the ones that cancel.

    The result preserves first-appearance order of monomials, which
    keeps rendered equations readable and protocol synthesis stable.
    """
    order: list[Tuple[Tuple[str, int], ...]] = []
    sums: Dict[Tuple[Tuple[str, int], ...], float] = {}
    for term in terms:
        key = term.monomial
        if key not in sums:
            sums[key] = 0.0
            order.append(key)
        sums[key] += term.coefficient
    out = []
    for key in order:
        coefficient = sums[key]
        if abs(coefficient) > COEFF_ATOL:
            out.append(Term(coefficient, dict(key)))
    return tuple(out)


def term_sum(terms: Iterable[Term], values: Mapping[str, float]) -> float:
    """Evaluate a sum of terms at a point."""
    return sum(term.evaluate(values) for term in terms)
