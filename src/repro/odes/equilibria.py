"""Equilibrium finding and stability classification.

The protocols inherit the stochastic behaviour of the source equations;
in particular, stable equilibria of the ODEs become self-stabilizing
operating points of the protocol (paper Section 4).  This module finds
equilibria numerically (multi-start root solving on the unit simplex)
and classifies their stability from the Jacobian.

For *complete* systems the Jacobian always has a zero eigenvalue along
the conserved direction ``(1, 1, ..., 1)`` (total mass).  Stability on
the physically meaningful set -- the simplex -- is therefore judged from
the Jacobian projected onto the simplex tangent space, which is exactly
the reduction the paper performs by hand when it eliminates ``z`` and
analyzes the 2x2 matrix ``A`` of equation (4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import optimize

from .system import EquationSystem


@dataclass
class Equilibrium:
    """An equilibrium point with its local linearization.

    Attributes
    ----------
    point:
        Coordinates as ``{variable: value}``.
    eigenvalues:
        Eigenvalues of the Jacobian projected on the simplex tangent
        space (for complete systems) or of the full Jacobian otherwise.
    classification:
        Strogatz-style label: ``stable spiral``, ``stable node``,
        ``saddle point``, ``unstable node``, ``unstable spiral``,
        ``center``, ``degenerate`` or ``non-hyperbolic``.
    """

    system: EquationSystem
    point: Dict[str, float]
    eigenvalues: np.ndarray
    classification: str

    @property
    def is_stable(self) -> bool:
        return self.classification.startswith("stable")

    @property
    def is_saddle(self) -> bool:
        return self.classification == "saddle point"

    def vector(self) -> np.ndarray:
        return self.system.state_vector(self.point)

    def scaled(self, total: float) -> Dict[str, float]:
        """Equilibrium in process counts for a group of size ``total``."""
        return {k: v * total for k, v in self.point.items()}

    def render(self) -> str:
        coords = ", ".join(f"{k}={v:.6g}" for k, v in self.point.items())
        eigs = ", ".join(f"{e:.4g}" for e in self.eigenvalues)
        return f"({coords}) [{self.classification}; eig: {eigs}]"


def simplex_tangent_basis(dimension: int) -> np.ndarray:
    """Orthonormal basis of the hyperplane ``sum(x) = const``.

    Returns a ``dimension x (dimension-1)`` matrix whose columns span
    the tangent space of the simplex.
    """
    ones = np.ones((dimension, 1)) / np.sqrt(dimension)
    # Complete `ones` to an orthonormal basis via QR; drop the first column.
    random_state = np.random.RandomState(0)
    candidate = np.hstack([ones, random_state.randn(dimension, dimension - 1)])
    q, _ = np.linalg.qr(candidate)
    return q[:, 1:]


def reduced_jacobian(system: EquationSystem, point: Sequence[float]) -> np.ndarray:
    """Jacobian projected onto the simplex tangent space."""
    J = system.jacobian(point)
    B = simplex_tangent_basis(system.dimension)
    return B.T @ J @ B


def classify_eigenvalues(eigenvalues: np.ndarray, tol: float = 1e-9) -> str:
    """Map a spectrum to a Strogatz-style stability label.

    For two-dimensional spectra this matches the trace-determinant
    classification used in the paper's Theorem 3 proof.  Imaginary
    parts are judged relative to the real parts: repeated real
    eigenvalues routinely come back from the numeric eigensolver with
    O(1e-8) spurious imaginary components, which must not be read as
    oscillation.
    """
    real = np.real(eigenvalues)
    imag = np.imag(eigenvalues)
    imag_tol = np.maximum(tol, 1e-6 * (1.0 + np.abs(real)))
    if np.any(np.abs(real) <= tol):
        if np.all(np.abs(real) <= tol) and np.any(np.abs(imag) > imag_tol):
            return "center"
        return "non-hyperbolic"
    has_positive = np.any(real > tol)
    has_negative = np.any(real < -tol)
    oscillatory = bool(np.any(np.abs(imag) > imag_tol))
    if has_positive and has_negative:
        return "saddle point"
    if has_positive:
        return "unstable spiral" if oscillatory else "unstable node"
    return "stable spiral" if oscillatory else "stable node"


def classify_point(
    system: EquationSystem,
    point: Dict[str, float],
    *,
    on_simplex: bool = True,
) -> Equilibrium:
    """Build an :class:`Equilibrium` record for a known fixed point."""
    vector = system.state_vector(point)
    if on_simplex:
        eigenvalues = np.linalg.eigvals(reduced_jacobian(system, vector))
    else:
        eigenvalues = np.linalg.eigvals(system.jacobian(vector))
    return Equilibrium(
        system=system,
        point={k: float(v) for k, v in point.items()},
        eigenvalues=eigenvalues,
        classification=classify_eigenvalues(eigenvalues),
    )


def _initial_guesses(dimension: int, extra: int, seed: int) -> List[np.ndarray]:
    guesses: List[np.ndarray] = []
    # Simplex corners and their midpoints: equilibria of population
    # systems habitually sit on the boundary (e.g. LV's (1,0) / (0,1)).
    for i in range(dimension):
        corner = np.zeros(dimension)
        corner[i] = 1.0
        guesses.append(corner)
    for i, j in itertools.combinations(range(dimension), 2):
        midpoint = np.zeros(dimension)
        midpoint[i] = midpoint[j] = 0.5
        guesses.append(midpoint)
    guesses.append(np.full(dimension, 1.0 / dimension))
    rng = np.random.default_rng(seed)
    for _ in range(extra):
        guesses.append(rng.dirichlet(np.ones(dimension)))
    return guesses


def find_equilibria(
    system: EquationSystem,
    *,
    restarts: int = 64,
    seed: int = 0,
    tol: float = 1e-10,
    merge_distance: float = 1e-6,
    domain_tol: float = 1e-7,
    on_simplex: bool = True,
) -> List[Equilibrium]:
    """Locate equilibria on the unit simplex by multi-start root solving.

    For complete systems one equation is redundant (the rows of ``f``
    sum to zero), so the last component of the residual is replaced by
    the simplex constraint ``sum(x) - 1``; this makes the root problem
    square and well-posed.

    Returns equilibria sorted by distance from the simplex barycenter,
    deduplicated within ``merge_distance``.  Points with any coordinate
    below ``-domain_tol`` (outside the physical domain) are dropped.
    """
    from .classify import is_complete  # local import avoids a cycle

    dimension = system.dimension
    complete = is_complete(system)

    def residual(x: np.ndarray) -> np.ndarray:
        fx = system.rhs(x)
        if complete and on_simplex:
            fx = fx.copy()
            fx[-1] = np.sum(x) - 1.0
        return fx

    found: List[np.ndarray] = []
    for guess in _initial_guesses(dimension, restarts, seed):
        solution = optimize.root(residual, guess, method="hybr", tol=tol)
        if not solution.success:
            continue
        x = solution.x
        if np.any(x < -domain_tol):
            continue
        if np.max(np.abs(system.rhs(x))) > 1e-7:
            continue
        if complete and on_simplex and abs(np.sum(x) - 1.0) > 1e-6:
            continue
        x = np.clip(x, 0.0, None)
        if not any(np.linalg.norm(x - other) < merge_distance for other in found):
            found.append(x)

    equilibria = [
        classify_point(system, system.state_dict(x), on_simplex=complete and on_simplex)
        for x in found
    ]
    barycenter = np.full(dimension, 1.0 / dimension)
    equilibria.sort(key=lambda e: float(np.linalg.norm(e.vector() - barycenter)))
    return equilibria


def stable_equilibria(system: EquationSystem, **kwargs) -> List[Equilibrium]:
    """Only the stable equilibria of :func:`find_equilibria`."""
    return [e for e in find_equilibria(system, **kwargs) if e.is_stable]
