"""Mean-field integration of equation systems via scipy.

The differential equations are the infinite-N limit of the synthesized
protocols, so integrating them numerically gives the reference
("analysis") curves the paper compares simulations against (e.g.
Figure 7).  This module wraps :func:`scipy.integrate.solve_ivp` with the
conventions used throughout the repository: states as ``{name: value}``
mappings, trajectories as structured objects, optional convergence
events, and conservation checks for complete systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from .system import EquationSystem, SystemError


@dataclass
class Trajectory:
    """A solved trajectory of an equation system.

    Attributes
    ----------
    system:
        The integrated system (defines variable order).
    times:
        1-D array of time points.
    states:
        2-D array with shape ``(len(times), dimension)``.
    converged:
        True when integration stopped at the convergence event.
    """

    system: EquationSystem
    times: np.ndarray
    states: np.ndarray
    converged: bool = False

    @property
    def final(self) -> Dict[str, float]:
        """Final state as a mapping."""
        return self.system.state_dict(self.states[-1])

    @property
    def initial(self) -> Dict[str, float]:
        """Initial state as a mapping."""
        return self.system.state_dict(self.states[0])

    def series(self, variable: str) -> np.ndarray:
        """Time series of one variable."""
        return self.states[:, self.system.index_of(variable)]

    def at(self, time: float) -> Dict[str, float]:
        """Linearly interpolated state at an arbitrary time."""
        if not (self.times[0] <= time <= self.times[-1]):
            raise ValueError(
                f"time {time} outside [{self.times[0]}, {self.times[-1]}]"
            )
        values = [
            float(np.interp(time, self.times, self.states[:, i]))
            for i in range(self.system.dimension)
        ]
        return self.system.state_dict(values)

    def mass_drift(self) -> float:
        """Max deviation of ``sum(x)`` from its initial value.

        For complete systems this measures integration error only.
        """
        sums = self.states.sum(axis=1)
        return float(np.max(np.abs(sums - sums[0])))

    def time_to_reach(self, variable: str, value: float) -> Optional[float]:
        """First time the variable series crosses ``value`` (or None)."""
        series = self.series(variable)
        start = series[0]
        if start == value:
            return float(self.times[0])
        crossing = (series - value) * (start - value) <= 0
        hits = np.nonzero(crossing)[0]
        if len(hits) == 0:
            return None
        i = hits[0]
        if i == 0:
            return float(self.times[0])
        t0, t1 = self.times[i - 1], self.times[i]
        v0, v1 = series[i - 1], series[i]
        if v1 == v0:
            return float(t1)
        return float(t0 + (value - v0) * (t1 - t0) / (v1 - v0))


def integrate(
    system: EquationSystem,
    initial: Mapping[str, float],
    t_end: float,
    *,
    t_start: float = 0.0,
    samples: int = 400,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    method: str = "LSODA",
    stop_at_equilibrium: bool = False,
    equilibrium_tol: float = 1e-9,
) -> Trajectory:
    """Integrate ``system`` from ``initial`` over ``[t_start, t_end]``.

    Parameters
    ----------
    stop_at_equilibrium:
        When True, integration terminates early once ``|f(X)|_inf``
        drops below ``equilibrium_tol`` (useful for convergence-time
        measurements).
    """
    missing = set(system.variables) - set(initial)
    if missing:
        raise SystemError(f"initial state missing variables {sorted(missing)}")
    y0 = system.state_vector(initial)
    t_eval = np.linspace(t_start, t_end, samples)

    events = None
    if stop_at_equilibrium:

        def settled(_t: float, y: np.ndarray) -> float:
            return float(np.max(np.abs(system.rhs(y))) - equilibrium_tol)

        settled.terminal = True  # type: ignore[attr-defined]
        settled.direction = -1  # type: ignore[attr-defined]
        events = [settled]

    solution = solve_ivp(
        system.rhs_function(),
        (t_start, t_end),
        y0,
        method=method,
        t_eval=t_eval,
        rtol=rtol,
        atol=atol,
        events=events,
        dense_output=False,
    )
    if not solution.success:  # pragma: no cover - scipy failure path
        raise RuntimeError(f"integration failed: {solution.message}")
    converged = bool(events and solution.t_events and len(solution.t_events[0]))
    times = solution.t
    states = solution.y.T
    if converged and solution.t_events[0].size:
        # Append the event point so `final` reflects the converged state.
        t_hit = solution.t_events[0][-1]
        y_hit = solution.y_events[0][-1]
        if times.size == 0 or t_hit > times[-1]:
            times = np.append(times, t_hit)
            states = np.vstack([states, y_hit])
    return Trajectory(system=system, times=times, states=states, converged=converged)


def integrate_to_equilibrium(
    system: EquationSystem,
    initial: Mapping[str, float],
    *,
    max_time: float = 1e6,
    tol: float = 1e-9,
    samples: int = 400,
) -> Trajectory:
    """Integrate until the flow settles (or ``max_time`` elapses)."""
    return integrate(
        system,
        initial,
        max_time,
        samples=samples,
        stop_at_equilibrium=True,
        equilibrium_tol=tol,
    )
