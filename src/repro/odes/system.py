"""Equation systems ``dX/dt = f(X)`` with polynomial right-hand sides.

An :class:`EquationSystem` is the central value type of the ODE layer:
an ordered set of variables and, per variable, the list of
:class:`~repro.odes.term.Term` objects whose sum is that variable's
derivative.  Systems are immutable; all rewrites return new systems.

The paper's framework (Section 2) restricts itself to first-order,
degree-one systems in exactly this shape, so this type can represent
every equation system the paper manipulates: the epidemic equations (0),
the endemic equations (1), and both forms of the Lotka-Volterra
competition system (6)/(7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .term import COEFF_ATOL, Term, combine_like_terms


class SystemError(ValueError):
    """Raised for malformed equation systems."""


@dataclass(frozen=True)
class EquationSystem:
    """An autonomous system of first-order polynomial ODEs.

    Parameters
    ----------
    variables:
        Ordered tuple of variable names.  Order matters: it fixes the
        layout of state vectors handed to numeric code.
    equations:
        Mapping from each variable name to the tuple of terms forming
        its right-hand side.
    name:
        Optional human-readable label (used in reports and rendering).
    """

    variables: Tuple[str, ...]
    equations: Dict[str, Tuple[Term, ...]]
    name: str = "system"

    def __init__(
        self,
        variables: Sequence[str],
        equations: Mapping[str, Iterable[Term]],
        name: str = "system",
    ):
        variables = tuple(variables)
        if len(set(variables)) != len(variables):
            raise SystemError(f"duplicate variables in {variables!r}")
        if set(equations) != set(variables):
            missing = set(variables) - set(equations)
            extra = set(equations) - set(variables)
            raise SystemError(
                f"equations/variables mismatch (missing={sorted(missing)}, extra={sorted(extra)})"
            )
        cleaned: Dict[str, Tuple[Term, ...]] = {}
        for var in variables:
            terms = tuple(equations[var])
            for term in terms:
                unknown = set(term.variables) - set(variables)
                if unknown:
                    raise SystemError(
                        f"equation for {var!r} uses unknown variables {sorted(unknown)}"
                    )
            cleaned[var] = terms
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "equations", cleaned)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of variables (states in the synthesized protocol)."""
        return len(self.variables)

    def terms_of(self, variable: str) -> Tuple[Term, ...]:
        """Right-hand-side terms of ``d(variable)/dt``."""
        return self.equations[variable]

    def all_terms(self) -> List[Tuple[str, Term]]:
        """All ``(variable, term)`` pairs in declaration order."""
        return [(var, term) for var in self.variables for term in self.equations[var]]

    def negative_terms_of(self, variable: str) -> Tuple[Term, ...]:
        """Negative (outflow) terms of a variable's equation."""
        return tuple(t for t in self.equations[variable] if t.sign < 0)

    def positive_terms_of(self, variable: str) -> Tuple[Term, ...]:
        """Positive (inflow) terms of a variable's equation."""
        return tuple(t for t in self.equations[variable] if t.sign > 0)

    def term_count(self) -> int:
        """Total number of terms across all equations."""
        return sum(len(ts) for ts in self.equations.values())

    def max_coefficient(self) -> float:
        """Largest term magnitude, used to pick the normalizer ``p``."""
        magnitudes = [t.magnitude for _, t in self.all_terms()]
        return max(magnitudes) if magnitudes else 0.0

    # ------------------------------------------------------------------
    # Numeric evaluation
    # ------------------------------------------------------------------
    def index_of(self, variable: str) -> int:
        """Position of a variable in the state-vector layout."""
        return self.variables.index(variable)

    def state_dict(self, state: Sequence[float]) -> Dict[str, float]:
        """Convert a state vector into a ``{name: value}`` mapping."""
        if len(state) != self.dimension:
            raise SystemError(
                f"state vector has length {len(state)}, expected {self.dimension}"
            )
        return dict(zip(self.variables, state))

    def state_vector(self, values: Mapping[str, float]) -> np.ndarray:
        """Convert a ``{name: value}`` mapping into an ordered vector."""
        return np.array([float(values[v]) for v in self.variables])

    def rhs(self, state: Sequence[float]) -> np.ndarray:
        """Evaluate ``f(X)`` at a state vector, returning ``dX/dt``."""
        values = self.state_dict(state)
        return np.array(
            [sum(t.evaluate(values) for t in self.equations[v]) for v in self.variables]
        )

    def rhs_function(self) -> Callable[[float, np.ndarray], np.ndarray]:
        """Return a ``f(t, y)`` callable suitable for scipy solvers."""

        def f(_t: float, y: np.ndarray) -> np.ndarray:
            return self.rhs(y)

        return f

    def jacobian(self, state: Sequence[float]) -> np.ndarray:
        """Analytic Jacobian matrix ``J[i][j] = d f_i / d x_j``.

        Computed exactly from the polynomial structure (no finite
        differences), which keeps the downstream stability
        classification (Section 4.1.3) robust near equilibria.
        """
        values = self.state_dict(state)
        J = np.zeros((self.dimension, self.dimension))
        for i, vi in enumerate(self.variables):
            for term in self.equations[vi]:
                for j, vj in enumerate(self.variables):
                    power = term.exponent_of(vj)
                    if power == 0:
                        continue
                    partial = term.coefficient * power
                    for name, exp in term.exponents:
                        e = exp - 1 if name == vj else exp
                        if e:
                            partial *= values[name] ** e
                    J[i, j] += partial
        return J

    def divergence_sum(self, state: Sequence[float]) -> float:
        """``sum_x f_x(X)`` at a point (zero everywhere iff complete)."""
        return float(np.sum(self.rhs(state)))

    # ------------------------------------------------------------------
    # Structural transforms (shared by the rewrite module)
    # ------------------------------------------------------------------
    def simplified(self) -> "EquationSystem":
        """Combine like terms and drop cancelled ones, per equation."""
        return EquationSystem(
            self.variables,
            {v: combine_like_terms(self.equations[v]) for v in self.variables},
            name=self.name,
        )

    def scaled(self, factor: float) -> "EquationSystem":
        """Scale every right-hand side by a constant (time rescaling)."""
        return EquationSystem(
            self.variables,
            {v: tuple(t.scaled(factor) for t in self.equations[v]) for v in self.variables},
            name=self.name,
        )

    def renamed(self, mapping: Mapping[str, str]) -> "EquationSystem":
        """Rename variables according to ``mapping`` (missing = keep)."""
        new_names = tuple(mapping.get(v, v) for v in self.variables)
        if len(set(new_names)) != len(new_names):
            raise SystemError(f"renaming {mapping!r} collapses variables")
        new_equations = {}
        for var in self.variables:
            new_terms = []
            for term in self.equations[var]:
                exps = {mapping.get(n, n): p for n, p in term.exponents}
                new_terms.append(Term(term.coefficient, exps))
            new_equations[mapping.get(var, var)] = tuple(new_terms)
        return EquationSystem(new_names, new_equations, name=self.name)

    def with_name(self, name: str) -> "EquationSystem":
        """Return the same system with a different label."""
        return EquationSystem(self.variables, self.equations, name=name)

    def restricted_sum(self, values: Mapping[str, float]) -> float:
        """Sum of variable values (should stay at 1 for complete systems)."""
        return sum(values[v] for v in self.variables)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Multi-line textual form, e.g. ``x' = - x*y + 0.01*z``."""
        lines = []
        for var in self.variables:
            terms = self.equations[var]
            if not terms:
                lines.append(f"{var}' = 0")
                continue
            parts = [terms[0].render(leading=True)]
            parts.extend(t.render() for t in terms[1:])
            lines.append(f"{var}' = " + " ".join(parts))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}:\n{self.render()}"

    # ------------------------------------------------------------------
    # Equality helpers (structural, tolerance-aware)
    # ------------------------------------------------------------------
    def equivalent_to(self, other: "EquationSystem", rtol: float = 1e-9) -> bool:
        """True when both systems have identical simplified term sets.

        Term order is ignored; coefficients are compared with relative
        tolerance ``rtol``.
        """
        if set(self.variables) != set(other.variables):
            return False
        a, b = self.simplified(), other.simplified()
        for var in a.variables:
            mine = {t.monomial: t.coefficient for t in a.equations[var]}
            theirs = {t.monomial: t.coefficient for t in b.equations[var]}
            if set(mine) != set(theirs):
                return False
            for key, coefficient in mine.items():
                if not np.isclose(coefficient, theirs[key], rtol=rtol, atol=COEFF_ATOL):
                    return False
        return True


def build_system(
    name: str,
    variables: Sequence[str],
    term_lists: Mapping[str, Sequence[Tuple[float, Mapping[str, int]]]],
) -> EquationSystem:
    """Convenience constructor from ``(coefficient, exponents)`` tuples.

    Example
    -------
    >>> build_system("epidemic", ["x", "y"], {
    ...     "x": [(-1.0, {"x": 1, "y": 1})],
    ...     "y": [(+1.0, {"x": 1, "y": 1})],
    ... }).dimension
    2
    """
    equations = {
        var: tuple(Term(c, dict(e)) for c, e in term_lists.get(var, ()))
        for var in variables
    }
    return EquationSystem(variables, equations, name=name)
