"""Taxonomy of differential equation systems (paper Section 2).

The paper defines four structural properties that decide which mapping
technique applies:

* **complete** -- the right-hand sides sum to zero, so the total mass
  ``sum(x)`` is conserved (we normalize it to 1: fractions of
  processes).
* **completely partitionable** -- complete, *and* the multiset of terms
  can be grouped into ``(+T, -T)`` pairs, each summing to zero.
* **polynomial** -- every right-hand side is a sum of polynomial terms
  (this is guaranteed by construction of :class:`Term`, but constants
  and zero-degree monomials still matter for mapping).
* **restricted polynomial** -- polynomial, and every negative term in
  ``f_x`` contains at least one factor of ``x`` itself.

The classification decides which actions suffice (Theorems 1 and 5):

========================================  =====================================
system class                              mapping technique
========================================  =====================================
restricted polynomial + partitionable     Flipping + One-Time-Sampling
polynomial + partitionable                ... + Tokenizing (errata to Thm 5)
otherwise                                 rewrite first (Section 7)
========================================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from .partition import PartitionResult, partition_terms
from .system import EquationSystem
from .term import COEFF_ATOL, Term

#: Tolerance on the per-monomial coefficient sums when testing completeness.
COMPLETENESS_ATOL = 1e-9


def is_polynomial(system: EquationSystem) -> bool:
    """True for every representable system (terms are polynomial by type).

    The function exists so that callers mirror the paper's taxonomy
    explicitly; it also re-validates exponent integrality.
    """
    for _, term in system.all_terms():
        for _, power in term.exponents:
            if power < 0 or int(power) != power:
                return False
    return True


def is_complete(system: EquationSystem) -> bool:
    """True when ``sum_x f_x`` is identically zero.

    Checked symbolically: all coefficients of each monomial, summed
    across equations, must cancel.  This is exact (up to float
    tolerance), unlike sampling the divergence at a few points.
    """
    totals: dict = {}
    for _, term in system.all_terms():
        totals[term.monomial] = totals.get(term.monomial, 0.0) + term.coefficient
    return all(abs(total) <= COMPLETENESS_ATOL for total in totals.values())


def is_restricted_polynomial(system: EquationSystem) -> bool:
    """True when every negative term of ``f_x`` has ``i_x >= 1``.

    This is the condition that lets a negative term be realized as an
    action taken *by the processes currently in state x* (they leave the
    state themselves) -- no tokens required.
    """
    for var in system.variables:
        for term in system.negative_terms_of(var):
            if term.exponent_of(var) < 1:
                return False
    return True


def is_completely_partitionable(system: EquationSystem, allow_splitting: bool = False) -> bool:
    """True when all terms pair off into ``(+T, -T)`` couples.

    The check follows the paper's definition and pairs the terms *as
    written* (no like-term merging): equation (7)'s ``z'`` deliberately
    carries ``+3xy`` twice so each copy pairs with one of the two
    ``-3xy`` outflows.

    With ``allow_splitting=True`` the check uses the term-splitting
    rewrite (see :mod:`repro.odes.rewrite`), under which completeness
    alone implies partitionability for polynomial systems.
    """
    if not is_complete(system):
        return False
    result = partition_terms(
        system, allow_splitting=allow_splitting, presimplify=False
    )
    return result.is_partitionable


def violating_terms(system: EquationSystem) -> List[Tuple[str, Term]]:
    """Negative terms violating the *restricted* condition (need tokens)."""
    out = []
    for var in system.variables:
        for term in system.negative_terms_of(var):
            if term.exponent_of(var) < 1:
                out.append((var, term))
    return out


@dataclass
class TaxonomyReport:
    """Full classification of an equation system, with the evidence.

    Attributes mirror Section 2 of the paper; ``mapping_technique``
    summarizes which theorem applies:

    * ``"flip+sample"`` -- Theorem 1 (restricted polynomial, completely
      partitionable).
    * ``"flip+sample+tokenize"`` -- Theorem 5 per errata (polynomial,
      completely partitionable).
    * ``"rewrite-required"`` -- neither; Section 7 rewrites needed.
    """

    system_name: str
    polynomial: bool
    complete: bool
    restricted_polynomial: bool
    completely_partitionable: bool
    partitionable_with_splitting: bool
    mass: float
    token_terms: List[Tuple[str, Term]] = field(default_factory=list)
    partition: PartitionResult | None = None

    @property
    def mapping_technique(self) -> str:
        pairable = self.completely_partitionable or self.partitionable_with_splitting
        if not (self.complete and self.polynomial and pairable):
            return "rewrite-required"
        technique = (
            "flip+sample" if self.restricted_polynomial else "flip+sample+tokenize"
        )
        if not self.completely_partitionable:
            technique += " (term splitting)"
        return technique

    @property
    def mappable(self) -> bool:
        """Whether the synthesizer can handle the system as-is."""
        return self.mapping_technique != "rewrite-required"

    def render(self) -> str:
        """Human-readable classification summary."""
        lines = [
            f"taxonomy of {self.system_name!r}:",
            f"  polynomial:                {self.polynomial}",
            f"  complete:                  {self.complete}",
            f"  restricted polynomial:     {self.restricted_polynomial}",
            f"  completely partitionable:  {self.completely_partitionable}",
            f"  partitionable w/ splitting:{self.partitionable_with_splitting}",
            f"  mapping technique:         {self.mapping_technique}",
        ]
        if self.token_terms:
            rendered = ", ".join(f"{t.render()} in {v}'" for v, t in self.token_terms)
            lines.append(f"  tokenized terms:           {rendered}")
        return "\n".join(lines)


def classify(system: EquationSystem) -> TaxonomyReport:
    """Classify a system against the paper's full taxonomy.

    Classification follows the paper: terms are examined *as written*
    (no like-term merging), so systems such as equation (7) with its
    intentionally duplicated ``+3xy`` terms classify as completely
    partitionable.
    """
    complete = is_complete(system)
    partition = (
        partition_terms(system, allow_splitting=False, presimplify=False)
        if complete
        else None
    )
    partitionable = bool(partition and partition.is_partitionable)
    splitting = (
        is_completely_partitionable(system, allow_splitting=True) if complete else False
    )
    # Mass: value of sum(x) implied by usage; report 1.0 as convention.
    mass = 1.0
    return TaxonomyReport(
        system_name=system.name,
        polynomial=is_polynomial(system),
        complete=complete,
        restricted_polynomial=is_restricted_polynomial(system),
        completely_partitionable=partitionable,
        partitionable_with_splitting=splitting,
        mass=mass,
        token_terms=violating_terms(system),
        partition=partition if partitionable else None,
    )


def check_conservation(
    system: EquationSystem, samples: int = 16, seed: int = 0
) -> float:
    """Max |divergence| over random simplex points (sanity for complete).

    Complements :func:`is_complete` with a numeric probe; useful in
    property-based tests as an independent oracle.
    """
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(samples):
        point = rng.dirichlet(np.ones(system.dimension))
        worst = max(worst, abs(system.divergence_sum(point)))
    return worst
