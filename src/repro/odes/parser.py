"""Parser for textual equation systems.

The framework is meant to be handed equations the way scientists write
them, so the library accepts plain text such as::

    x' = -beta*x*y + alpha*z
    y' = beta*x*y - gamma*y
    z' = gamma*y - alpha*z

``parse_system`` turns this into an :class:`~repro.odes.system.EquationSystem`.
Named parameters (``beta`` above) are substituted with numeric values at
parse time; every symbol that is not a declared variable must have a
parameter binding.

Grammar (informal)::

    system   := line+
    line     := NAME ("'" | "dot") "=" expr
    expr     := ["+"|"-"] product (("+"|"-") product)*
    product  := factor ("*" factor)*
    factor   := NUMBER | NAME ["^" INT | "**" INT]

Only the polynomial forms of the paper are accepted; anything else
(division, nested parentheses, function calls) raises :class:`ParseError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .system import EquationSystem
from .term import Term


class ParseError(ValueError):
    """Raised when equation text cannot be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|[-+*^=()'])"
    r")"
)


@dataclass
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected character at {pos}: {remainder[:10]!r}")
        pos = match.end()
        for kind in ("number", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start()))
                break
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream of one equation."""

    def __init__(self, tokens: Sequence[_Token], line: str):
        self.tokens = list(tokens)
        self.index = 0
        self.line = line

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.line!r}")
        self.index += 1
        return token

    def expect_op(self, op: str) -> None:
        token = self.next()
        if token.kind != "op" or token.value != op:
            raise ParseError(f"expected {op!r} in {self.line!r}, got {token.value!r}")

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # expr := [sign] product ((+|-) product)*
    def parse_expr(self) -> List[Tuple[float, List[Tuple[str, int]]]]:
        terms = []
        sign = 1.0
        token = self.peek()
        if token and token.kind == "op" and token.value in "+-":
            self.next()
            sign = -1.0 if token.value == "-" else 1.0
        terms.append(self.parse_product(sign))
        while not self.at_end():
            token = self.next()
            if token.kind != "op" or token.value not in "+-":
                raise ParseError(
                    f"expected '+' or '-' in {self.line!r}, got {token.value!r}"
                )
            sign = -1.0 if token.value == "-" else 1.0
            terms.append(self.parse_product(sign))
        return terms

    # product := factor (* factor)*
    def parse_product(self, sign: float) -> Tuple[float, List[Tuple[str, int]]]:
        coefficient = sign
        factors: List[Tuple[str, int]] = []
        coefficient, factors = self._apply_factor(coefficient, factors)
        while True:
            token = self.peek()
            if token and token.kind == "op" and token.value == "*":
                self.next()
                coefficient, factors = self._apply_factor(coefficient, factors)
            elif token and token.kind in ("name", "number"):
                # Implicit multiplication, e.g. "3x" or "2 x y".
                coefficient, factors = self._apply_factor(coefficient, factors)
            else:
                break
        return coefficient, factors

    def _apply_factor(
        self, coefficient: float, factors: List[Tuple[str, int]]
    ) -> Tuple[float, List[Tuple[str, int]]]:
        token = self.next()
        if token.kind == "number":
            base: Tuple[str, float] = ("number", float(token.value))
        elif token.kind == "name":
            base = ("name", token.value)
        else:
            raise ParseError(
                f"expected a number or name in {self.line!r}, got {token.value!r}"
            )
        power = 1
        nxt = self.peek()
        if nxt and nxt.kind == "op" and nxt.value in ("^", "**"):
            self.next()
            exp_token = self.next()
            if exp_token.kind != "number" or "." in exp_token.value:
                raise ParseError(f"exponent must be an integer in {self.line!r}")
            power = int(exp_token.value)
            if power < 0:
                raise ParseError(f"negative exponent in {self.line!r}")
        if base[0] == "number":
            coefficient *= float(base[1]) ** power
        else:
            factors.append((str(base[1]), power))
        return coefficient, factors


def _parse_line(
    line: str, parameters: Mapping[str, float]
) -> Tuple[str, List[Tuple[float, Dict[str, int]]]]:
    tokens = _tokenize(line)
    if len(tokens) < 3:
        raise ParseError(f"incomplete equation: {line!r}")
    parser = _Parser(tokens, line)
    head = parser.next()
    if head.kind != "name":
        raise ParseError(f"equation must start with a variable name: {line!r}")
    variable = head.value
    # Accept "x'", "x dot" or bare "x" before '='.
    token = parser.peek()
    if token and token.kind == "op" and token.value == "'":
        parser.next()
    elif token and token.kind == "name" and token.value == "dot":
        parser.next()
    parser.expect_op("=")
    raw_terms = parser.parse_expr()

    resolved: List[Tuple[float, Dict[str, int]]] = []
    for coefficient, factors in raw_terms:
        exponents: Dict[str, int] = {}
        for name, power in factors:
            if name in parameters:
                coefficient *= float(parameters[name]) ** power
            else:
                exponents[name] = exponents.get(name, 0) + power
        resolved.append((coefficient, exponents))
    return variable, resolved


def parse_system(
    text: str,
    parameters: Optional[Mapping[str, float]] = None,
    name: str = "parsed",
    variables: Optional[Sequence[str]] = None,
) -> EquationSystem:
    """Parse a multi-line equation system.

    Parameters
    ----------
    text:
        One equation per line; blank lines and ``#`` comments ignored.
    parameters:
        Numeric bindings for symbols that are rates, not variables.
    name:
        Label of the resulting system.
    variables:
        Optional explicit variable order.  By default, variables appear
        in the order their equations are written, and every symbol used
        on a right-hand side must have its own equation or a parameter
        binding.
    """
    parameters = dict(parameters or {})
    lines = []
    for raw in text.splitlines():
        stripped = raw.split("#", 1)[0].strip()
        if stripped:
            lines.append(stripped)
    if not lines:
        raise ParseError("no equations found")

    parsed: List[Tuple[str, List[Tuple[float, Dict[str, int]]]]] = []
    seen_vars: List[str] = []
    for line in lines:
        variable, terms = _parse_line(line, parameters)
        if variable in seen_vars:
            raise ParseError(f"duplicate equation for {variable!r}")
        if variable in parameters:
            raise ParseError(f"{variable!r} is both a parameter and a variable")
        seen_vars.append(variable)
        parsed.append((variable, terms))

    order = list(variables) if variables is not None else seen_vars
    if set(order) != set(seen_vars):
        raise ParseError(
            f"variable order {order!r} does not match equations {seen_vars!r}"
        )

    # Any symbol on a right-hand side must be a declared variable.
    equations: Dict[str, List[Term]] = {}
    for variable, terms in parsed:
        term_objs = []
        for coefficient, exponents in terms:
            unknown = set(exponents) - set(order)
            if unknown:
                raise ParseError(
                    f"unbound symbols {sorted(unknown)} in equation for {variable!r}; "
                    f"bind them via parameters= or add their equations"
                )
            if abs(coefficient) > 0:
                term_objs.append(Term(coefficient, exponents))
        equations[variable] = term_objs

    return EquationSystem(order, equations, name=name).simplified()


def parse_equations(lines: Iterable[str], **kwargs) -> EquationSystem:
    """Convenience wrapper accepting an iterable of equation strings."""
    return parse_system("\n".join(lines), **kwargs)
