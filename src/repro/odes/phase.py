"""Phase portraits: trajectory bundles from sets of initial points.

Figures 2 and 4 of the paper are phase portraits -- simultaneous plots
of ``(N x(t), N y(t))`` from several initial conditions, showing the
stable spiral of the endemic system and the bistable structure of the
LV system.  This module generates the underlying trajectory data
(rendering is left to :mod:`repro.viz.ascii_plot` or external tools).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .integrate import Trajectory, integrate
from .system import EquationSystem


@dataclass
class PhasePortrait:
    """A bundle of trajectories of one system.

    ``scale`` converts fractions to process counts for presentation
    (the paper plots ``(Num. X, Num. Y) = (N x, N y)``).
    """

    system: EquationSystem
    trajectories: List[Trajectory]
    scale: float = 1.0

    def projected(self, x_var: str, y_var: str) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-trajectory ``(x, y)`` curves scaled to counts."""
        return [
            (t.series(x_var) * self.scale, t.series(y_var) * self.scale)
            for t in self.trajectories
        ]

    def endpoints(self) -> List[Dict[str, float]]:
        """Final state of each trajectory (scaled)."""
        return [
            {k: v * self.scale for k, v in t.final.items()}
            for t in self.trajectories
        ]

    def start_points(self) -> List[Dict[str, float]]:
        """Initial state of each trajectory (scaled)."""
        return [
            {k: v * self.scale for k, v in t.initial.items()}
            for t in self.trajectories
        ]


def phase_portrait(
    system: EquationSystem,
    initial_points: Iterable[Mapping[str, float]],
    t_end: float,
    *,
    scale: float = 1.0,
    samples: int = 600,
    normalize_counts: bool = False,
    rtol: float = 1e-9,
) -> PhasePortrait:
    """Integrate the system from each initial point.

    Parameters
    ----------
    initial_points:
        States either as fractions or (with ``normalize_counts=True``)
        as process counts that are divided by ``scale`` first -- Figure 2
        lists its starting points as counts like ``(999, 1, 0)``.
    scale:
        Group size N used for presentation and count normalization.
    """
    trajectories = []
    for point in initial_points:
        state = dict(point)
        if normalize_counts:
            state = {k: v / scale for k, v in state.items()}
        trajectories.append(
            integrate(system, state, t_end, samples=samples, rtol=rtol)
        )
    return PhasePortrait(system=system, trajectories=trajectories, scale=scale)


def simplex_grid_points(
    variables: Sequence[str], steps: int = 4
) -> List[Dict[str, float]]:
    """Regular grid of initial points on the simplex (for exploration)."""
    points: List[Dict[str, float]] = []
    n = len(variables)
    if n == 0:
        return points

    def recurse(prefix: List[int], remaining: int, slots: int) -> None:
        if slots == 1:
            prefix = prefix + [remaining]
            points.append(
                {v: c / steps for v, c in zip(variables, prefix)}
            )
            return
        for c in range(remaining + 1):
            recurse(prefix + [c], remaining - c, slots - 1)

    recurse([], steps, n)
    return points


# The seven starting points of Figure 2 (endemic portrait), as counts
# (X, Y, Z) in a group of 1000 processes.
FIGURE2_STARTS: Tuple[Dict[str, float], ...] = (
    {"x": 999, "y": 1, "z": 0},
    {"x": 0, "y": 1, "z": 999},
    {"x": 0, "y": 1000, "z": 0},
    {"x": 500, "y": 500, "z": 0},
    {"x": 500, "y": 1, "z": 499},
    {"x": 1, "y": 500, "z": 499},
    {"x": 333, "y": 333, "z": 334},
)

# The seven starting points of Figure 4 (LV portrait), as counts.
FIGURE4_STARTS: Tuple[Dict[str, float], ...] = (
    {"x": 100, "y": 200, "z": 700},
    {"x": 200, "y": 100, "z": 700},
    {"x": 300, "y": 500, "z": 200},
    {"x": 500, "y": 300, "z": 200},
    {"x": 100, "y": 800, "z": 100},
    {"x": 800, "y": 100, "z": 100},
    {"x": 100, "y": 100, "z": 800},
)
