"""TTL-adjusted mean-field analysis of tokenized protocols (Section 6).

The paper's Tokenizing technique needs a way to route a generated token
to a process in the required state.  The membership-oracle variant is
exact; the random-walk alternative gives each token an integer TTL, so
a token dies unrouted with probability ``(1 - x)^ttl`` where ``x`` is
the fraction of processes in the token state.  The paper notes that
"the behavior of the protocol may be different from the original
equation system.  However, the new behavior can still be analyzed by
modifying the original equation system with multiplicative terms in
tokenized actions that account for the likelihood of the generated
token being effective."

This module implements exactly that modified analysis: the adjusted
right-hand side multiplies every tokenized flow by the delivery
probability ``1 - (1 - x)^ttl``.  The adjusted field is no longer
polynomial (so it cannot itself be synthesized), but it can be
integrated and compared against simulation -- which the ABLATE-3 bench
and the token tests do.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..odes.system import EquationSystem
from ..synthesis.actions import TokenizeAction, transition_edges
from ..synthesis.protocol import ProtocolSpec, _first_order_term


def ttl_delivery_probability(fraction: float, ttl: Optional[int]) -> float:
    """P(a token finds a target): ``1 - (1 - x)^ttl`` (oracle: 1)."""
    if ttl is None:
        return 1.0 if fraction > 0 else 0.0
    return 1.0 - (1.0 - min(max(fraction, 0.0), 1.0)) ** ttl


def ttl_adjusted_rhs(spec: ProtocolSpec) -> Callable[[np.ndarray], np.ndarray]:
    """The Section 6 modified mean field, as a per-period map increment.

    Returns ``g(state) -> delta`` where ``state`` is the fraction
    vector in ``spec.states`` order and ``delta`` the expected
    per-period change.  Non-token actions contribute their usual
    first-order rates; tokenized actions are scaled by the TTL delivery
    probability evaluated at the current token-state fraction.
    """
    from ..synthesis.actions import SampleAction

    index = {name: i for i, name in enumerate(spec.states)}
    compiled: List[Tuple[float, Dict[int, int], Dict[int, int],
                         Optional[Tuple[int, Optional[int]]]]] = []
    for action in spec.actions:
        term = _first_order_term(action)
        coefficient = term.coefficient
        # Mirror the failure-compensation discount of
        # ProtocolSpec.mean_field_system(effective=True).
        if spec.failure_rate > 0.0 and isinstance(
            action, (SampleAction, TokenizeAction)
        ):
            coefficient *= (1.0 - spec.failure_rate) ** len(action.required_states)
        exponents = {index[name]: power for name, power in term.exponents}
        flows: Dict[int, int] = {}
        for src, dst in transition_edges(action):
            flows[index[src]] = flows.get(index[src], 0) - 1
            flows[index[dst]] = flows.get(index[dst], 0) + 1
        token_info = None
        if isinstance(action, TokenizeAction):
            token_info = (index[action.token_state], action.ttl)
        compiled.append((coefficient, exponents, flows, token_info))

    def g(state: np.ndarray) -> np.ndarray:
        delta = np.zeros(len(spec.states))
        for coefficient, exponents, flows, token_info in compiled:
            rate = coefficient
            for var_index, power in exponents.items():
                rate *= state[var_index] ** power
            if token_info is not None:
                token_index, ttl = token_info
                rate *= ttl_delivery_probability(state[token_index], ttl)
            for var_index, sign in flows.items():
                delta[var_index] += sign * rate
        return delta

    return g


def iterate_ttl_adjusted(
    spec: ProtocolSpec,
    initial_fractions: Mapping[str, float],
    periods: int,
) -> Dict[str, np.ndarray]:
    """Iterate the TTL-adjusted discrete map over ``periods`` rounds.

    The analogue of
    :func:`repro.analysis.mean_field.discrete_mean_field` with the
    Section 6 token-effectiveness correction applied.
    """
    g = ttl_adjusted_rhs(spec)
    state = np.array([float(initial_fractions[s]) for s in spec.states])
    out = np.empty((periods + 1, len(spec.states)))
    out[0] = state
    for step in range(1, periods + 1):
        state = np.clip(state + g(state), 0.0, 1.0)
        out[step] = state
    return {s: out[:, i] for i, s in enumerate(spec.states)}


def compare_ttl_models(
    spec: ProtocolSpec,
    simulated_fractions: Mapping[str, np.ndarray],
    initial_fractions: Mapping[str, float],
) -> Dict[str, float]:
    """RMS error of the simulation against adjusted vs unadjusted models.

    Returns ``{"adjusted": err, "unadjusted": err}`` -- for a TTL
    protocol the adjusted model should win, demonstrating the paper's
    claim that the deviation is analyzable.
    """
    from .mean_field import discrete_mean_field

    some_series = next(iter(simulated_fractions.values()))
    periods = len(some_series) - 1
    adjusted = iterate_ttl_adjusted(spec, initial_fractions, periods)
    unadjusted = discrete_mean_field(spec, initial_fractions, periods)

    def rms(model: Mapping[str, np.ndarray]) -> float:
        worst = 0.0
        for state, series in simulated_fractions.items():
            diff = np.asarray(series) - model[state][: len(series)]
            worst = max(worst, float(np.sqrt(np.mean(diff**2))))
        return worst

    return {"adjusted": rms(adjusted), "unadjusted": rms(unadjusted)}
