"""Perturbation analysis around equilibria (paper Section 4.1.3).

The paper studies self-correction of the endemic equilibrium by
perturbing ``(x, y, z) = (x_inf(1+u), y_inf(1+v), z_inf(1+w))`` and
reducing the linearized dynamics to the 2x2 system ``T' = A T`` of
equation (4), whose trace and determinant decide stability (Theorem 3).
This module provides both the paper's closed forms (via
:class:`~repro.protocols.endemic.EndemicParams`) and a generic numeric
linearization that works for any equation system, so the two can be
checked against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..odes.equilibria import reduced_jacobian, simplex_tangent_basis
from ..odes.system import EquationSystem


@dataclass(frozen=True)
class Linearization:
    """Local linear dynamics ``d(delta)/dt = J delta`` at a point.

    ``jacobian`` is the full m x m Jacobian; ``reduced`` is its
    projection onto the simplex tangent space (the physically relevant
    operator for complete systems, and the analogue of the paper's
    matrix A).
    """

    system: EquationSystem
    point: Dict[str, float]
    jacobian: np.ndarray
    reduced: np.ndarray

    @property
    def trace(self) -> float:
        """Trace of the reduced operator (the paper's tau)."""
        return float(np.trace(self.reduced))

    @property
    def determinant(self) -> float:
        """Determinant of the reduced operator (the paper's Delta)."""
        return float(np.linalg.det(self.reduced))

    @property
    def discriminant(self) -> float:
        """``tau^2 - 4 Delta`` (sign decides spiral vs node in 2D)."""
        return self.trace**2 - 4.0 * self.determinant

    @property
    def eigenvalues(self) -> np.ndarray:
        return np.linalg.eigvals(self.reduced)

    def decay_rate(self) -> float:
        """Slowest decay rate: ``-max(Re(lambda))`` (positive = stable)."""
        return float(-np.max(np.real(self.eigenvalues)))

    def oscillation_frequency(self) -> float:
        """Imaginary part magnitude of the leading eigenvalue pair."""
        return float(np.max(np.abs(np.imag(self.eigenvalues))))


def linearize(
    system: EquationSystem, point: Mapping[str, float]
) -> Linearization:
    """Numeric linearization of a system at an arbitrary point."""
    vector = system.state_vector(point)
    return Linearization(
        system=system,
        point={k: float(v) for k, v in point.items()},
        jacobian=system.jacobian(vector),
        reduced=reduced_jacobian(system, vector),
    )


def perturb(
    point: Mapping[str, float], relative: Mapping[str, float]
) -> Dict[str, float]:
    """The paper's perturbation: ``x0 = x_inf * (1 + u)`` per variable."""
    out = {}
    for name, value in point.items():
        out[name] = value * (1.0 + relative.get(name, 0.0))
    return out


def relative_deviation(
    point: Mapping[str, float], equilibrium: Mapping[str, float]
) -> Dict[str, float]:
    """Inverse of :func:`perturb`: recover ``u = x/x_inf - 1``."""
    out = {}
    for name, value in equilibrium.items():
        if value == 0:
            out[name] = float("nan")
        else:
            out[name] = point[name] / value - 1.0
    return out


def endemic_closed_form_matrix(
    alpha: float, gamma: float, beta: float
) -> np.ndarray:
    """The paper's matrix A (equation 4) in fraction notation.

    ``sigma = (beta - gamma) / (1 + gamma/alpha)`` (= ``beta * y_inf``);
    ``A = [[-(sigma+alpha), -sigma*(gamma+alpha)], [1, 0]]``.
    Its eigenvalues coincide with those of the planar Jacobian at the
    non-trivial equilibrium, which the tests verify against
    :func:`linearize`.
    """
    sigma = (beta - gamma) / (1.0 + gamma / alpha)
    return np.array([[-(sigma + alpha), -sigma * (gamma + alpha)], [1.0, 0.0]])


def endemic_trace_determinant(
    alpha: float, gamma: float, beta: float
) -> Tuple[float, float]:
    """The paper's (tau, Delta) of equation (5)."""
    sigma = (beta - gamma) / (1.0 + gamma / alpha)
    return -(sigma + alpha), sigma * (gamma + alpha)


def planar_jacobian_endemic(
    alpha: float, gamma: float, beta: float
) -> np.ndarray:
    """Jacobian of the endemic system reduced by ``z = 1 - x - y``.

    Evaluated at the non-trivial equilibrium::

        d(dx/dt)/dx = -beta*y - alpha      d(dx/dt)/dy = -(gamma + alpha)
        d(dy/dt)/dx =  beta*y              d(dy/dt)/dy = 0

    (using ``beta * x_inf = gamma``).  Similar to A of equation (4):
    same trace and determinant, hence identical eigenvalues.
    """
    y_inf = (1.0 - gamma / beta) / (1.0 + gamma / alpha)
    sigma = beta * y_inf
    return np.array([[-(sigma + alpha), -(gamma + alpha)], [sigma, 0.0]])
