"""Trace-determinant stability classification (Strogatz, ch. 5/6).

The paper's Theorem 3 proof classifies the endemic equilibrium by the
signs of the trace and determinant of the linearization matrix: trace
negative + determinant positive = stable; determinant negative =
saddle.  This module implements the full planar classification chart
plus convenience wrappers tying it to equation systems and protocol
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..odes.system import EquationSystem
from .linearize import Linearization, linearize

#: Tolerance for treating trace/determinant values as zero.
ZERO_TOL = 1e-12


def classify_trace_determinant(
    trace: float, determinant: float, tol: float = ZERO_TOL
) -> str:
    """The planar trace-determinant chart, as a label.

    ================================  =======================
    condition                         label
    ================================  =======================
    Delta < 0                         saddle point
    Delta > 0, tau < 0, tau^2 > 4Δ    stable node
    Delta > 0, tau < 0, tau^2 < 4Δ    stable spiral
    Delta > 0, tau < 0, tau^2 = 4Δ    stable degenerate node
    Delta > 0, tau > 0 (mirrored)     unstable ...
    Delta > 0, tau = 0                center
    Delta = 0                         non-isolated (line of equilibria)
    ================================  =======================
    """
    if determinant < -tol:
        return "saddle point"
    if abs(determinant) <= tol:
        return "non-isolated equilibria"
    if abs(trace) <= tol:
        return "center"
    discriminant = trace * trace - 4.0 * determinant
    prefix = "stable" if trace < 0 else "unstable"
    if abs(discriminant) <= tol:
        return f"{prefix} degenerate node"
    if discriminant < 0:
        return f"{prefix} spiral"
    return f"{prefix} node"


@dataclass(frozen=True)
class StabilityVerdict:
    """Stability classification of one equilibrium point."""

    point: Mapping[str, float]
    trace: float
    determinant: float
    discriminant: float
    label: str

    @property
    def stable(self) -> bool:
        return self.label.startswith("stable")

    @property
    def oscillatory(self) -> bool:
        return "spiral" in self.label or self.label == "center"

    def render(self) -> str:
        coords = ", ".join(f"{k}={v:.6g}" for k, v in self.point.items())
        return (
            f"({coords}): {self.label} "
            f"(tau={self.trace:.6g}, Delta={self.determinant:.6g}, "
            f"tau^2-4Delta={self.discriminant:.6g})"
        )


def classify_equilibrium(
    system: EquationSystem, point: Mapping[str, float]
) -> StabilityVerdict:
    """Classify an equilibrium of a (complete) system on the simplex.

    Uses the reduced (tangent-space) linearization; for 3-variable
    complete systems this is exactly the planar analysis the paper does
    by hand after eliminating ``z``.
    """
    local = linearize(system, point)
    trace, determinant = local.trace, local.determinant
    return StabilityVerdict(
        point=dict(point),
        trace=trace,
        determinant=determinant,
        discriminant=trace * trace - 4.0 * determinant,
        label=classify_trace_determinant(trace, determinant),
    )


def endemic_stability(alpha: float, gamma: float, beta: float) -> StabilityVerdict:
    """Theorem 3 in executable form.

    For ``alpha, gamma > 0`` and ``gamma/beta < 1`` the non-trivial
    equilibrium always has ``tau < 0 < Delta`` -- stable (spiral or
    node depending on the discriminant's sign).
    """
    from .linearize import endemic_trace_determinant

    x = gamma / beta
    y = (1.0 - x) / (1.0 + gamma / alpha)
    z = (1.0 - x) / (1.0 + alpha / gamma)
    trace, determinant = endemic_trace_determinant(alpha, gamma, beta)
    return StabilityVerdict(
        point={"x": x, "y": y, "z": z},
        trace=trace,
        determinant=determinant,
        discriminant=trace * trace - 4.0 * determinant,
        label=classify_trace_determinant(trace, determinant),
    )


def spectral_abscissa(system: EquationSystem, point: Mapping[str, float]) -> float:
    """Max real part of the reduced spectrum (negative = attracting)."""
    local = linearize(system, point)
    return float(np.max(np.real(local.eigenvalues)))
