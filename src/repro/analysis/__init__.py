"""Analysis toolkit: nonlinear-dynamics techniques for protocols.

Implements the analytical machinery of Sections 4.1.3 and 4.2.2:
perturbation analysis and the trace-determinant stability chart
(:mod:`~repro.analysis.linearize`, :mod:`~repro.analysis.stability`),
convergence complexity (:mod:`~repro.analysis.convergence`),
probabilistic safety / replica longevity (:mod:`~repro.analysis.safety`),
fairness and untraceability statistics (:mod:`~repro.analysis.fairness`),
and the simulation-vs-mean-field comparison harness
(:mod:`~repro.analysis.mean_field`).
"""

from .convergence import (
    ConvergenceMeasurement,
    decay_rate_estimate,
    endemic_case,
    endemic_displacement,
    endemic_settling_time,
    first_period_below,
    lv_majority_fraction,
    lv_minority_fraction,
    lv_periods_to_minority,
)
from .fairness import (
    FairnessReport,
    analyze_member_log,
    attack_window_decay,
    fairness_over_time,
    jain_index,
)
from .linearize import (
    Linearization,
    endemic_closed_form_matrix,
    endemic_trace_determinant,
    linearize,
    perturb,
    planar_jacobian_endemic,
    relative_deviation,
)
from .mean_field import (
    EquilibriumMeasurement,
    TrajectoryComparison,
    compare_trajectory,
    discrete_mean_field,
    measure_equilibrium,
)
from .safety import (
    ExtinctionTrial,
    LongevityEstimate,
    RealityCheck,
    expected_longevity_periods,
    expected_longevity_years,
    extinction_probability,
    measure_extinction,
    replicas_for_extinction_probability,
)
from .tokens import (
    compare_ttl_models,
    iterate_ttl_adjusted,
    ttl_adjusted_rhs,
    ttl_delivery_probability,
)
from .stability import (
    StabilityVerdict,
    classify_equilibrium,
    classify_trace_determinant,
    endemic_stability,
    spectral_abscissa,
)

__all__ = [
    "linearize",
    "Linearization",
    "perturb",
    "relative_deviation",
    "endemic_closed_form_matrix",
    "endemic_trace_determinant",
    "planar_jacobian_endemic",
    "classify_trace_determinant",
    "classify_equilibrium",
    "endemic_stability",
    "spectral_abscissa",
    "StabilityVerdict",
    "endemic_case",
    "endemic_displacement",
    "endemic_settling_time",
    "lv_minority_fraction",
    "lv_majority_fraction",
    "lv_periods_to_minority",
    "first_period_below",
    "decay_rate_estimate",
    "ConvergenceMeasurement",
    "extinction_probability",
    "expected_longevity_periods",
    "expected_longevity_years",
    "replicas_for_extinction_probability",
    "measure_extinction",
    "ExtinctionTrial",
    "LongevityEstimate",
    "RealityCheck",
    "jain_index",
    "analyze_member_log",
    "attack_window_decay",
    "fairness_over_time",
    "FairnessReport",
    "measure_equilibrium",
    "compare_trajectory",
    "discrete_mean_field",
    "ttl_adjusted_rhs",
    "iterate_ttl_adjusted",
    "compare_ttl_models",
    "ttl_delivery_probability",
    "EquilibriumMeasurement",
    "TrajectoryComparison",
]
