"""Convergence complexity (paper Sections 4.1.3 and 4.2.2).

The paper defines the *convergence complexity* of an equilibrium as the
vector of closed-form functions describing how the state fractions
approach it from a nearby start.  Implemented here:

* the endemic displacement ``u(t)`` in all three discriminant cases
  (complex, real-distinct and repeated eigenvalues);
* the LV convergence complexity near the stable point (0, 1):
  ``(x, y)(t) = (u0 e^{-3t}, 1 - (6 u0 t + v0) e^{-3t})``, from which
  the paper concludes O(log N) protocol periods to an O(1) minority;
* empirical convergence-time measurement on simulated series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..protocols.endemic import EndemicParams
from ..runtime.metrics import MetricsRecorder


# ----------------------------------------------------------------------
# Endemic: u(t), the relative displacement of the susceptible count
# ----------------------------------------------------------------------
def endemic_case(params: EndemicParams) -> str:
    """Which of the three Section 4.1.3 cases applies.

    ``"spiral"`` (complex eigenvalues), ``"node"`` (real distinct) or
    ``"degenerate"`` (repeated).
    """
    disc = params.discriminant()
    if disc < 0:
        return "spiral"
    if disc > 0:
        return "node"
    return "degenerate"


def endemic_displacement(
    params: EndemicParams,
    t: np.ndarray,
    u0: float,
    udot0: float = 0.0,
) -> np.ndarray:
    """The paper's ``u(t)`` closed forms, all three cases.

    Case 1 (complex eigenvalues)::

        u = u0 * exp(-t (sigma+alpha)/2) * cos(t sqrt(sigma gamma - (sigma-alpha)^2/4))

    Case 2 (real distinct eigenvalues lambda1, lambda2)::

        u = (udot0 - lambda2 u0)/(lambda1-lambda2) e^{lambda1 t}
          + (udot0 - lambda1 u0)/(lambda2-lambda1) e^{lambda2 t}

    Case 3 (repeated)::

        u = u0 * exp(-t (sigma+alpha)/2)

    (The paper's case-1 expression sets the phase so ``u(0) = u0``; for
    non-zero ``udot0`` the general solution adds a sine term, which we
    include for exactness when ``udot0 != 0``.)
    """
    t = np.asarray(t, dtype=float)
    sigma, alpha, gamma = params.sigma(), params.alpha, params.gamma
    case = endemic_case(params)
    decay = np.exp(-t * (sigma + alpha) / 2.0)
    if case == "spiral":
        omega = math.sqrt(sigma * gamma - (sigma - alpha) ** 2 / 4.0)
        out = u0 * decay * np.cos(omega * t)
        if udot0:
            # General solution: the sine coefficient matches u'(0).
            coefficient = (udot0 + u0 * (sigma + alpha) / 2.0) / omega
            out = decay * (u0 * np.cos(omega * t) + coefficient * np.sin(omega * t))
        return out
    eig1, eig2 = params.eigenvalues()
    lam1, lam2 = eig1.real, eig2.real
    if case == "node":
        c1 = (udot0 - lam2 * u0) / (lam1 - lam2)
        c2 = (udot0 - lam1 * u0) / (lam2 - lam1)
        return c1 * np.exp(lam1 * t) + c2 * np.exp(lam2 * t)
    return u0 * decay  # degenerate


def endemic_settling_time(params: EndemicParams, ratio: float = 100.0) -> float:
    """Periods until the displacement envelope shrinks by ``ratio``.

    The envelope decays as ``exp(-t (sigma+alpha)/2)`` (spiral case) or
    with the slowest eigenvalue (node case), so settling is
    logarithmic in the required accuracy -- "the system converges
    exponentially quickly".
    """
    eig1, eig2 = params.eigenvalues()
    slowest = max(eig1.real, eig2.real)
    if slowest >= 0:
        return math.inf
    return math.log(ratio) / (-slowest)


# ----------------------------------------------------------------------
# LV: convergence complexity near (0, 1) / (1, 0)
# ----------------------------------------------------------------------
def lv_minority_fraction(
    t: np.ndarray, u0: float, rate: float = 3.0
) -> np.ndarray:
    """Minority-camp fraction near the stable point: ``u0 e^{-rate t}``."""
    return u0 * np.exp(-rate * np.asarray(t, dtype=float))


def lv_majority_fraction(
    t: np.ndarray, u0: float, v0: float, rate: float = 3.0
) -> np.ndarray:
    """Majority-camp fraction: ``1 - (2 rate u0 t + v0) e^{-rate t}``.

    The paper states this for ``rate = 3`` as
    ``y(t) = 1 - (6 u0 t + v0) e^{-3t}`` where ``v0`` is the initial
    majority deficit (``y(0) = 1 - v0``) and ``u0`` the minority
    fraction.  Derivation: linearizing ``y' = 3y(1-y-2x)`` at (0, 1)
    gives ``v' = -2 rate u - rate v`` with ``u = u0 e^{-rate t}``.
    """
    t = np.asarray(t, dtype=float)
    return 1.0 - (2.0 * rate * u0 * t + v0) * np.exp(-rate * t)


def lv_periods_to_minority(
    n: int, u0: float = 0.4, minority: float = 1.0, p: float = 0.01, rate: float = 3.0
) -> float:
    """Protocol periods until the minority camp reaches ``minority`` hosts.

    ``u0 e^{-rate t} n = minority`` gives ``t = ln(u0 n / minority)/rate``
    time units = that over ``p`` periods: O(log N) periods.
    """
    if u0 * n <= minority:
        return 0.0
    return math.log(u0 * n / minority) / (rate * p)


# ----------------------------------------------------------------------
# Empirical measurement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConvergenceMeasurement:
    """Result of an empirical convergence-time measurement."""

    period: Optional[int]
    value_at_convergence: Optional[float]

    @property
    def converged(self) -> bool:
        return self.period is not None


def first_period_below(
    recorder: MetricsRecorder, state: str, threshold: float
) -> ConvergenceMeasurement:
    """First recorded period where a state count drops to ``threshold``."""
    series = recorder.counts(state)
    times = recorder.times
    below = np.nonzero(series <= threshold)[0]
    if len(below) == 0:
        return ConvergenceMeasurement(period=None, value_at_convergence=None)
    index = int(below[0])
    return ConvergenceMeasurement(
        period=int(times[index]), value_at_convergence=float(series[index])
    )


def decay_rate_estimate(
    times: Sequence[float], values: Sequence[float]
) -> float:
    """Least-squares exponential decay rate of a positive series.

    Fits ``log(values) ~ a - rate * t`` and returns ``rate``; used to
    check simulated minority decay against the theoretical ``3p`` per
    period.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    mask = v > 0
    if mask.sum() < 2:
        raise ValueError("need at least two positive samples")
    slope, _ = np.polyfit(t[mask], np.log(v[mask]), 1)
    return float(-slope)
