"""Simulation-vs-analysis comparison harness (Figure 7 and Theorem 1).

Two reusable measurements:

* :func:`measure_equilibrium` -- run a protocol to (stochastic)
  equilibrium and summarize a long observation window per state; the
  Figure 7 experiment compares these medians/min/max against the
  closed-form equilibrium across group sizes.
* :func:`compare_trajectory` -- run a protocol from a given start and
  compare the full simulated trajectory against the integrated source
  equations (the empirical content of the Theorem 1/5 equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..odes.integrate import integrate
from ..runtime.batch_engine import BatchMetricsRecorder, BatchRoundEngine
from ..runtime.metrics import MetricsRecorder, WindowStats
from ..runtime.round_engine import RoundEngine
from ..synthesis.protocol import ProtocolSpec


@dataclass(frozen=True)
class EquilibriumMeasurement:
    """One Figure 7 cell: measured window stats vs the analytic value."""

    n: int
    state: str
    analytic: float
    stats: WindowStats
    #: Ensemble size behind the stats (1 for a single serial run).
    trials: int = 1

    @property
    def relative_error(self) -> float:
        """|median - analytic| / analytic (NaN when analytic is 0)."""
        if self.analytic == 0:
            return float("nan")
        return abs(self.stats.median - self.analytic) / self.analytic

    def row(self) -> Tuple:
        return (
            self.n,
            self.state,
            round(self.analytic, 2),
            self.stats.median,
            self.stats.minimum,
            self.stats.maximum,
            round(self.relative_error, 4),
        )


def measure_equilibrium(
    spec: ProtocolSpec,
    n: int,
    analytic: Mapping[str, float],
    *,
    warmup_periods: int,
    window_periods: int,
    seed: Optional[int] = None,
    initial: Optional[Mapping[str, float]] = None,
    states: Optional[Iterable[str]] = None,
) -> Dict[str, EquilibriumMeasurement]:
    """Run to equilibrium; summarize each state over the window.

    ``analytic`` maps state names to predicted equilibrium *counts*.
    By default the simulation starts at the analytic equilibrium (as
    the paper's experiments do); override with ``initial``.
    """
    start = dict(initial) if initial is not None else dict(analytic)
    engine = RoundEngine(spec, n=n, initial=start, seed=seed)
    recorder = MetricsRecorder(spec.states)
    engine.run(warmup_periods, recorder=recorder)
    engine.run(window_periods, recorder=recorder, record_initial=False)
    observe = tuple(states) if states is not None else spec.states
    out = {}
    for state in observe:
        out[state] = EquilibriumMeasurement(
            n=n,
            state=state,
            analytic=float(analytic.get(state, 0.0)),
            stats=recorder.window(state, start_period=warmup_periods + 1),
        )
    return out


def measure_equilibrium_batch(
    spec: ProtocolSpec,
    n: int,
    analytic: Mapping[str, float],
    *,
    trials: int,
    warmup_periods: int,
    window_periods: int,
    seed: Optional[int] = None,
    initial: Optional[Mapping[str, float]] = None,
    states: Optional[Iterable[str]] = None,
    mode: str = "batch",
) -> Dict[str, EquilibriumMeasurement]:
    """Batched :func:`measure_equilibrium`: M trials, pooled window stats.

    Runs the M-trial ensemble as one
    :class:`~repro.runtime.batch_engine.BatchRoundEngine` and summarizes
    each state over the union of all trials' observation windows
    (``M * window_periods`` samples), which both tightens the median
    against ensemble noise and replaces the serial per-size loop the
    Figure 7 bench used to run.
    """
    start = dict(initial) if initial is not None else dict(analytic)
    engine = BatchRoundEngine(
        spec, n=n, trials=trials, initial=start, seed=seed, mode=mode
    )
    # The warmup is burn-in: run it with a recorder that keeps nothing
    # (stride past the horizon) instead of storing per-period tensors
    # the window stats would only mask off.
    engine.run(
        warmup_periods,
        recorder=BatchMetricsRecorder(
            spec.states, trials, track_transitions=False,
            stride=warmup_periods + 1,
        ),
        record_initial=False,
    )
    recorder = BatchMetricsRecorder(
        spec.states, trials, track_transitions=False
    )
    engine.run(window_periods, recorder=recorder, record_initial=False)
    observe = tuple(states) if states is not None else spec.states
    out = {}
    for state in observe:
        pooled = recorder.counts(state).ravel()
        out[state] = EquilibriumMeasurement(
            n=n,
            state=state,
            analytic=float(analytic.get(state, 0.0)),
            stats=WindowStats.of(pooled),
            trials=trials,
        )
    return out


@dataclass(frozen=True)
class TrajectoryComparison:
    """Simulated vs integrated trajectories of one protocol run."""

    spec: ProtocolSpec
    n: int
    periods: np.ndarray
    simulated: Dict[str, np.ndarray]   # counts per state
    predicted: Dict[str, np.ndarray]   # ODE counts at matching times

    def max_abs_error(self, state: str) -> float:
        return float(
            np.max(np.abs(self.simulated[state] - self.predicted[state]))
        )

    def rms_fraction_error(self, state: str) -> float:
        """RMS error of the state fraction (normalized by n)."""
        diff = (self.simulated[state] - self.predicted[state]) / self.n
        return float(np.sqrt(np.mean(diff**2)))

    def worst_rms_fraction_error(self) -> float:
        return max(self.rms_fraction_error(s) for s in self.simulated)


def discrete_mean_field(
    spec: ProtocolSpec,
    initial_fractions: Mapping[str, float],
    periods: int,
) -> Dict[str, np.ndarray]:
    """Iterate the protocol's discrete mean-field map.

    The synchronous protocol is, in expectation, the map
    ``X_{n+1} = X_n + g(X_n)`` where ``g`` is the per-period effective
    mean field (``p * f`` for exact protocols).  This is the exact
    infinite-N reference for a synchronous-round simulation; it
    converges to the source ODE as the normalizer ``p`` shrinks.
    """
    system = spec.mean_field_system(effective=True)
    state = np.array([float(initial_fractions[s]) for s in spec.states])
    out = np.empty((periods + 1, len(spec.states)))
    out[0] = state
    for step in range(1, periods + 1):
        state = state + system.rhs(state)
        out[step] = state
    return {s: out[:, i] for i, s in enumerate(spec.states)}


def compare_trajectory(
    spec: ProtocolSpec,
    n: int,
    initial_counts: Mapping[str, float],
    periods: int,
    *,
    seed: Optional[int] = None,
    record_every: int = 1,
    connection_failure_rate: float = 0.0,
    reference: str = "ode",
) -> TrajectoryComparison:
    """Simulate and solve the mean field from the same start.

    ``reference="ode"`` integrates the protocol's *source system*
    scaled by the normalizer (one period = ``p`` time units) -- the
    paper's continuous-time analysis.  ``reference="discrete"``
    iterates the exact per-period mean-field map instead, which removes
    the O(p) time-discretization gap (relevant when ``p`` is of order
    one, e.g. the epidemic protocol).

    For exact protocols the fraction error against the discrete
    reference shrinks as ``O(1/sqrt(n))``; this function is the
    workhorse of the EQUIV bench and the property-based equivalence
    tests.
    """
    if spec.source is None:
        raise ValueError("protocol has no source system to compare against")
    if reference not in ("ode", "discrete"):
        raise ValueError(f"unknown reference {reference!r}")
    engine = RoundEngine(
        spec,
        n=n,
        initial=dict(initial_counts),
        seed=seed,
        connection_failure_rate=connection_failure_rate,
    )
    recorder = MetricsRecorder(spec.states, stride=record_every)
    engine.run(periods, recorder=recorder)

    times = recorder.times
    fractions0 = {k: v / n for k, v in dict(initial_counts).items()}
    for state in spec.states:
        fractions0.setdefault(state, 0.0)

    predicted: Dict[str, np.ndarray] = {}
    simulated: Dict[str, np.ndarray] = {}
    if reference == "ode":
        trajectory = integrate(
            spec.source,
            fractions0,
            t_end=spec.time_for_periods(periods),
            samples=max(2, len(times)),
        )
        for state in spec.states:
            ode_values = np.interp(
                spec.time_for_periods(times.astype(float)),
                trajectory.times,
                trajectory.series(state),
            )
            predicted[state] = ode_values * n
    else:
        series = discrete_mean_field(spec, fractions0, periods)
        for state in spec.states:
            predicted[state] = series[state][times] * n
    for state in spec.states:
        simulated[state] = recorder.counts(state).astype(float)
    return TrajectoryComparison(
        spec=spec,
        n=n,
        periods=times,
        simulated=simulated,
        predicted=predicted,
    )
