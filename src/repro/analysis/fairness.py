"""Fairness, load balancing and replica untraceability (Figure 8).

Figure 8 plots which hosts are stashers at the end of each period and
argues three properties from its visual appearance:

* **load balancing** -- "the absence of significant horizontal lines":
  no host stores a replica for very long;
* **fairness** -- over long runs every host bears responsibility for an
  equal fraction of time (the protocol is symmetric);
* **untraceability** -- no correlation in time or host id, so an
  attacker cannot predict replica locations.

This module turns those visual arguments into statistics computed from
the per-period member logs collected by
:class:`~repro.runtime.metrics.MetricsRecorder`:
Jain's fairness index over per-host responsibility time, maximum
stretch of consecutive stashing (against its geometric expectation),
a chi-square uniformity test over host ids, and the attacker's decay
window (how quickly a snapshot of stasher locations goes stale).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

def _member_log_of(source) -> List[Tuple[int, np.ndarray]]:
    """Accept a recorder or a raw ``[(period, member ids), ...]`` list.

    The raw-list form is how the batched Figure 8 bench feeds one
    ensemble member's log
    (:meth:`~repro.runtime.batch_engine.BatchMetricsRecorder.trial_member_log`).
    """
    log = getattr(source, "member_log", source)
    if not log:
        raise ValueError(
            "no member log (set member_log_state on the recorder)"
        )
    log = list(log)
    # A BatchMetricsRecorder's own member_log holds *per-trial lists*
    # of arrays; analysis works on one trial at a time.
    if not isinstance(log[0][1], np.ndarray):
        raise ValueError(
            "member log entries must be (period, member ids) pairs; for "
            "a batched recorder pass trial_member_log(trial), not the "
            "recorder itself"
        )
    return log


@dataclass(frozen=True)
class FairnessReport:
    """Summary statistics of a member (stasher) log."""

    n_hosts: int
    periods_observed: int
    hosts_ever_responsible: int
    jain_index: float
    max_run_length: int
    expected_max_run_length: float
    host_id_uniformity_pvalue: float
    host_time_correlation: float

    def render(self) -> str:
        return "\n".join(
            [
                f"hosts ever responsible:   {self.hosts_ever_responsible}/{self.n_hosts}",
                f"Jain fairness index:      {self.jain_index:.4f}",
                f"max consecutive stint:    {self.max_run_length} periods "
                f"(expected max ~{self.expected_max_run_length:.1f})",
                f"host-id uniformity p:     {self.host_id_uniformity_pvalue:.3f}",
                f"host-time correlation:    {self.host_time_correlation:+.4f}",
            ]
        )


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly equal shares."""
    array = np.asarray(values, dtype=float)
    if len(array) == 0:
        raise ValueError("empty values")
    total = array.sum()
    if total == 0:
        return 1.0
    return float(total**2 / (len(array) * (array**2).sum()))


def _runs_per_host(
    member_log: List[Tuple[int, np.ndarray]]
) -> Dict[int, List[int]]:
    """Consecutive-stint lengths per host from a member log."""
    runs: Dict[int, List[int]] = {}
    current: Dict[int, int] = {}
    previous_period: Optional[int] = None
    stride = None
    for period, members in member_log:
        if previous_period is not None:
            stride = period - previous_period
        previous_period = period
        member_set = set(members.tolist())
        for host in list(current):
            if host not in member_set:
                runs.setdefault(host, []).append(current.pop(host))
        for host in member_set:
            current[host] = current.get(host, 0) + 1
    for host, length in current.items():
        runs.setdefault(host, []).append(length)
    return runs


def analyze_member_log(
    recorder,
    n_hosts: int,
    gamma: Optional[float] = None,
) -> FairnessReport:
    """Compute the Figure 8 statistics from a recorded member log.

    ``recorder`` is a :class:`~repro.runtime.metrics.MetricsRecorder`
    (or anything with a ``member_log``), or a raw
    ``[(period, member ids), ...]`` list such as one trial of a batched
    ensemble.  ``gamma`` (the per-period stash-to-averse rate) gives
    the geometric dwell distribution used for the expected maximum
    stint length: with ``k`` observed stints the expected maximum is
    roughly ``ln(k) / gamma``.
    """
    log = _member_log_of(recorder)
    periods = len(log)
    occupancy = np.zeros(n_hosts, dtype=np.int64)
    host_times: List[Tuple[int, int]] = []
    for period, members in log:
        occupancy[members] += 1
        host_times.extend((int(h), period) for h in members.tolist())

    runs = _runs_per_host(log)
    all_runs = [r for host_runs in runs.values() for r in host_runs]
    max_run = max(all_runs) if all_runs else 0
    if gamma and all_runs:
        expected_max = math.log(max(2, len(all_runs))) / gamma
    else:
        expected_max = float("nan")

    # Host-id uniformity, tested over *stints* rather than per-period
    # occupancy: consecutive periods of one stint are fully dependent
    # (expected dwell is 1/gamma periods), so a chi-square over raw
    # occupancy would wildly overstate the sample size and reject
    # uniformity even for a perfectly fair protocol.  Stint starts are
    # (nearly) independent uniform draws over hosts.
    stints_per_host = np.zeros(n_hosts, dtype=np.int64)
    for host, host_runs in runs.items():
        stints_per_host[host] += len(host_runs)
    total_stints = int(stints_per_host.sum())
    buckets = max(4, min(32, total_stints // 16))
    bucket_counts = np.array(
        [
            stints_per_host[
                (n_hosts * b) // buckets: (n_hosts * (b + 1)) // buckets
            ].sum()
            for b in range(buckets)
        ],
        dtype=float,
    )
    if total_stints > 0:
        _, pvalue = stats.chisquare(bucket_counts)
    else:
        pvalue = float("nan")

    # Host-id/time correlation over individual (host, period) points.
    if len(host_times) >= 3:
        hosts_arr = np.array([h for h, _ in host_times], dtype=float)
        times_arr = np.array([t for _, t in host_times], dtype=float)
        correlation = float(np.corrcoef(hosts_arr, times_arr)[0, 1])
    else:
        correlation = float("nan")

    shares = occupancy / max(1, periods)
    return FairnessReport(
        n_hosts=n_hosts,
        periods_observed=periods,
        hosts_ever_responsible=int(np.count_nonzero(occupancy)),
        jain_index=jain_index(shares) if occupancy.sum() else 1.0,
        max_run_length=int(max_run),
        expected_max_run_length=expected_max,
        host_id_uniformity_pvalue=float(pvalue),
        host_time_correlation=correlation,
    )


def attack_window_decay(
    recorder, lags: Sequence[int] = (1, 5, 10, 20, 50)
) -> Dict[int, float]:
    """How stale a snapshot of responsible hosts becomes with lag.

    Returns, per lag (in recorded samples), the mean fraction of a
    snapshot's hosts still responsible ``lag`` samples later.  Mean-
    field prediction: ``(1 - gamma)^lag`` -- the attacker's usable
    window shrinks geometrically, which is the untraceability argument
    in quantitative form.
    """
    log = _member_log_of(recorder)
    out: Dict[int, float] = {}
    for lag in lags:
        overlaps = []
        for i in range(len(log) - lag):
            _, now = log[i]
            _, later = log[i + lag]
            if len(now) == 0:
                continue
            later_set = set(later.tolist())
            still = sum(1 for h in now.tolist() if h in later_set)
            overlaps.append(still / len(now))
        if overlaps:
            out[lag] = float(np.mean(overlaps))
    return out


def fairness_over_time(
    recorder, n_hosts: int, checkpoints: int = 5
) -> List[Tuple[int, float]]:
    """Jain index measured over growing prefixes of the member log.

    Fairness is an asymptotic property ("over a long time of running");
    this shows the index rising toward 1 as the window grows.
    """
    log = _member_log_of(recorder)
    out = []
    for checkpoint in range(1, checkpoints + 1):
        upto = max(1, (len(log) * checkpoint) // checkpoints)
        occupancy = np.zeros(n_hosts, dtype=np.int64)
        for _, members in log[:upto]:
            occupancy[members] += 1
        out.append((upto, jain_index(occupancy)))
    return out
