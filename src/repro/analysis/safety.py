"""Probabilistic safety: replica longevity (paper Section 4.1.3).

No responsibility-migration protocol can achieve deterministic safety
(Theorem 2: all responsible processes may crash simultaneously), so the
paper quantifies *probabilistic* safety with a back-of-the-envelope
birth-death argument: at equilibrium each stasher creates new stashers
at rate ``beta * x_inf = gamma`` -- exactly its own death rate -- so a
stasher is equally likely to die before reproducing.  The chance that
all ``y_inf`` stashers die childless is ``(1/2)^{y_inf}``, giving an
expected object lifetime of ``2^{y_inf}`` protocol periods.

Choosing parameters so ``y_inf = c log2 N`` makes the extinction
probability ``N^{-c}`` -- the paper's headline numbers: 50 replicas in
a 1024-host group with 6-minute periods live an expected 1.28e10 years;
100 replicas among 2^20 hosts, 1.45e25 years.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..protocols.endemic import EndemicParams
from ..runtime import BatchRoundEngine
from ..protocols.endemic import STASH, figure1_protocol

#: Seconds per (Julian) year, as used for the longevity conversions.
SECONDS_PER_YEAR = 365.25 * 24 * 3600


def extinction_probability(y_inf: float) -> float:
    """``(1/2)^{y_inf}``: all stashers die before creating replicas."""
    if y_inf < 0:
        raise ValueError(f"y_inf must be non-negative, got {y_inf}")
    return 0.5**y_inf


def expected_longevity_periods(y_inf: float) -> float:
    """Expected object lifetime in protocol periods: ``2^{y_inf}``."""
    return 2.0**y_inf


def expected_longevity_years(
    y_inf: float, period_seconds: float = 360.0
) -> float:
    """Expected lifetime in years for a given protocol period length.

    The paper's examples use 6-minute (360 s) periods.
    """
    return expected_longevity_periods(y_inf) * period_seconds / SECONDS_PER_YEAR


def replicas_for_extinction_probability(n: int, c: float) -> float:
    """``y_inf = c log2(n)`` gives extinction probability ``n^{-c}``."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return c * math.log2(n)


@dataclass(frozen=True)
class LongevityEstimate:
    """The SAFE "table" row: a configuration and its predicted lifetime."""

    n: int
    replicas: float
    period_seconds: float
    extinction_probability: float
    expected_years: float

    @classmethod
    def of(
        cls, n: int, replicas: float, period_seconds: float = 360.0
    ) -> "LongevityEstimate":
        return cls(
            n=n,
            replicas=replicas,
            period_seconds=period_seconds,
            extinction_probability=extinction_probability(replicas),
            expected_years=expected_longevity_years(replicas, period_seconds),
        )


# ----------------------------------------------------------------------
# Empirical extinction measurement (small scale)
# ----------------------------------------------------------------------
@dataclass
class ExtinctionTrial:
    """Outcome of repeated small-scale extinction experiments."""

    params: EndemicParams
    n: int
    trials: int
    horizon_periods: int
    extinctions: int

    @property
    def probability(self) -> float:
        return self.extinctions / self.trials if self.trials else float("nan")


def measure_extinction(
    params: EndemicParams,
    n: int,
    trials: int,
    horizon_periods: int,
    seed: int = 0,
) -> ExtinctionTrial:
    """Empirical probability the stash population hits zero.

    Only feasible for configurations with small equilibrium stash
    populations (the whole point of the analysis is that realistic
    configurations essentially never go extinct).  Used by the SAFE
    bench to check the *shape*: each extra equilibrium replica roughly
    halves the extinction probability.

    The trials run as one batched ensemble (``seed`` is the root seed
    of the spawned per-trial streams).  Extinction is absorbing for the
    endemic protocol -- with no stasher left, no contact can recreate
    one -- so a latched per-period zero check (with an early exit once
    every trial is extinct) is equivalent to recording the full count
    history, at O(trials) memory instead of
    O(trials x horizon x states).
    """
    spec = figure1_protocol(params)
    engine = BatchRoundEngine(
        spec, n=n, trials=trials,
        initial=params.equilibrium_counts(n), seed=seed,
    )
    stash = spec.states.index(STASH)
    extinct = engine.counts_matrix()[:, stash] == 0
    for _ in range(horizon_periods):
        if extinct.all():
            break
        engine.step()
        extinct |= engine.counts_matrix()[:, stash] == 0
    return ExtinctionTrial(
        params=params,
        n=n,
        trials=trials,
        horizon_periods=horizon_periods,
        extinctions=int(extinct.sum()),
    )


# ----------------------------------------------------------------------
# The Section 5.1 "Reality Check" quantities
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RealityCheck:
    """Per-host costs of storing one file endemically (Section 5.1)."""

    n: int
    stashers: float
    store_fraction: float          # fraction of time a host is a stasher
    mean_store_periods: float      # expected stash dwell time (1/gamma)
    periods_between_stints: float  # expected periods between stashing stints
    bandwidth_bps_per_host: float  # steady-state transfer bandwidth

    @classmethod
    def of(
        cls,
        params: EndemicParams,
        n: int,
        file_size_bytes: float = 88.2e3,
        period_seconds: float = 360.0,
    ) -> "RealityCheck":
        """Compute the reality-check row for a configuration.

        The paper's example: N = 100,000, y_inf ~= 100 stashers, so each
        host stores the file ~0.1% of the time, for ``1/gamma = 1000``
        periods (~100 hours) per stint; at 88.2 KB mean file size and
        6-minute periods the steady-state per-host bandwidth is
        ``2 * gamma * y_inf * file_size / (N * period)`` ~ 3.9e-3 bps
        (factor 2: every replica birth is one transfer *sent* by some
        host and *received* by another; normalized per host).
        """
        eq = params.equilibrium_counts(n)
        stashers = eq[STASH]
        store_fraction = stashers / n
        mean_store_periods = 1.0 / params.gamma
        births_per_period = params.gamma * stashers
        transfers_bytes_per_second = (
            births_per_period * file_size_bytes / period_seconds
        )
        bandwidth = 2.0 * 8.0 * transfers_bytes_per_second / n  # bits/s/host
        periods_between = (
            (n / stashers) * mean_store_periods if stashers > 0 else math.inf
        )
        return cls(
            n=n,
            stashers=stashers,
            store_fraction=store_fraction,
            mean_store_periods=mean_store_periods,
            periods_between_stints=periods_between,
            bandwidth_bps_per_host=bandwidth,
        )
