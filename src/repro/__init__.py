"""repro: distributed protocols synthesized from differential equations.

A production-quality reproduction of Indranil Gupta, "On the Design of
Distributed Protocols from Differential Equations", PODC 2004.

The library is organized in layers:

* :mod:`repro.odes` -- equation systems, taxonomy, rewriting, mean-field
  integration and stability analysis.
* :mod:`repro.synthesis` -- the equation-to-protocol mapper (Flipping,
  One-Time-Sampling, Tokenizing) and protocol specifications.
* :mod:`repro.runtime` -- simulation substrates: a discrete-event kernel
  with per-process agents, and a vectorized synchronous round engine for
  100,000-host experiments; failures, churn, metrics.
* :mod:`repro.protocols` -- the paper's case studies: epidemic spread,
  endemic migratory replication, LV majority selection, plus baselines.
* :mod:`repro.analysis` -- perturbation analysis, stability and
  convergence complexity, probabilistic safety, fairness metrics.
* :mod:`repro.experiment` -- the declarative facade over all of the
  above: ``Protocol`` handles (equations file / registry name /
  hand-built spec), ``Experiment`` with automatic engine-tier
  selection, one ``ExperimentResult`` surface.  **Start here.**
* :mod:`repro.campaign` -- declarative experiment campaigns: grids of
  protocol x N x loss rate x failure scenario, executed as batched
  multi-trial ensembles with recorded seeds for bit-for-bit replay.
* :mod:`repro.store` -- example applications: a migratory replicated
  file store and a majority-vote service.

Quickstart (the facade: equations in, ensemble results out)::

    from repro.experiment import Experiment, Protocol

    protocol = Protocol.from_equations("examples/endemic.txt")
    result = Experiment(protocol, n=10_000, trials=16, periods=200,
                        seed=7).run()      # auto-selects the batch engine
    print(result.render_summary())
    print(result.equilibrium_check().render())

The engine tiers remain directly usable when a study needs one run or
one engine in particular::

    from repro.odes import library
    from repro.synthesis import synthesize
    from repro.runtime import RoundEngine

    system = library.epidemic()          # x' = -x*y ; y' = x*y
    protocol = synthesize(system)        # the canonical pull epidemic
    engine = RoundEngine(protocol, n=10_000, seed=7,
                         initial={"x": 9_999, "y": 1})
    result = engine.run(periods=40)
    print(result.final_counts())         # epidemic has taken over
"""

from . import (
    analysis,
    campaign,
    experiment,
    odes,
    protocols,
    runtime,
    store,
    synthesis,
    viz,
)

__version__ = "1.2.0"

__all__ = [
    "odes",
    "synthesis",
    "runtime",
    "protocols",
    "analysis",
    "experiment",
    "campaign",
    "store",
    "viz",
    "__version__",
]
