"""repro: distributed protocols synthesized from differential equations.

A production-quality reproduction of Indranil Gupta, "On the Design of
Distributed Protocols from Differential Equations", PODC 2004.

The library is organized in layers:

* :mod:`repro.odes` -- equation systems, taxonomy, rewriting, mean-field
  integration and stability analysis.
* :mod:`repro.synthesis` -- the equation-to-protocol mapper (Flipping,
  One-Time-Sampling, Tokenizing) and protocol specifications.
* :mod:`repro.runtime` -- simulation substrates: a discrete-event kernel
  with per-process agents, and a vectorized synchronous round engine for
  100,000-host experiments; failures, churn, metrics.
* :mod:`repro.protocols` -- the paper's case studies: epidemic spread,
  endemic migratory replication, LV majority selection, plus baselines.
* :mod:`repro.analysis` -- perturbation analysis, stability and
  convergence complexity, probabilistic safety, fairness metrics.
* :mod:`repro.campaign` -- declarative experiment campaigns: grids of
  protocol x N x loss rate x failure scenario, executed as batched
  multi-trial ensembles with recorded seeds for bit-for-bit replay.
* :mod:`repro.store` -- example applications: a migratory replicated
  file store and a majority-vote service.

Quickstart::

    from repro.odes import library
    from repro.synthesis import synthesize
    from repro.runtime import RoundEngine

    system = library.epidemic()          # x' = -x*y ; y' = x*y
    protocol = synthesize(system)        # the canonical pull epidemic
    engine = RoundEngine(protocol, n=10_000, seed=7,
                         initial={"x": 9_999, "y": 1})
    result = engine.run(periods=40)
    print(result.final_counts())         # epidemic has taken over

Ensemble quickstart (M trials in one batched engine)::

    from repro.runtime import BatchRoundEngine

    batch = BatchRoundEngine(protocol, n=10_000, trials=32, seed=7,
                             initial={"x": 9_999, "y": 1})
    result = batch.run(periods=40)
    print(result.mean_final_counts())    # ensemble means over 32 trials
"""

from . import analysis, campaign, odes, protocols, runtime, store, synthesis, viz

__version__ = "1.1.0"

__all__ = [
    "odes",
    "synthesis",
    "runtime",
    "protocols",
    "analysis",
    "campaign",
    "store",
    "viz",
    "__version__",
]
