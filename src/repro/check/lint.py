"""Determinism linter: AST enforcement of the reproducibility contract.

The repo promises bitwise reproducibility (exec checkpoints, service
replay, store snapshots).  That contract survives only if every
source of nondeterminism is threaded through an explicit seed and
every timestamp through provenance plumbing.  This linter walks the
AST of ``src/repro`` and flags the constructs that break it:

``unseeded-rng`` (ERROR)
    Calls into global or OS-entropy randomness: the legacy
    ``numpy.random`` module functions (``np.random.rand``,
    ``np.random.seed``, ...), the stdlib ``random`` module, or RNG
    constructors invoked with no seed (``default_rng()``,
    ``SeedSequence()``).

``rng-construction`` (ERROR)
    Seeded RNG construction *outside* ``repro.runtime.rng``: call
    ``make_generator`` / ``spawn_seeds`` instead so every stream
    belongs to a named seed domain and the MT19937 choice stays in one
    place.

``wall-clock`` (ERROR)
    ``time.time`` / ``time.time_ns`` / ``datetime.now`` / ``utcnow`` /
    ``today`` outside sanctioned clock or provenance modules.
    (``time.perf_counter`` is fine: durations are measurement, not
    behavior.)

``set-iteration`` (ERROR in ``runtime``/``store``, WARNING elsewhere)
    Iterating directly over a bare ``set`` / ``frozenset``: Python
    set ordering is hash-seed dependent across builds, so iteration
    order leaks into trajectories.  Sort first.

Legitimate sites (entropy *sources*, RNG state (de)serialization,
provenance stamps) live in an allowlist file -- one entry per line::

    path::rule::qualname  # one-line justification

where ``path`` is repo-root-relative posix, ``qualname`` the dotted
function/class scope containing the call (``<module>`` at top level,
``*`` wildcard), and the trailing comment is the mandatory
justification.  Entries that no longer match anything are themselves
reported (``stale-allowlist``, INFO) so the list cannot rot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity

_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default allowlist location (repo-root-relative).
DEFAULT_ALLOWLIST = _REPO_ROOT / "tools" / "lint_allowlist.txt"

#: Modules whose whole purpose is RNG construction; rng rules skipped.
SANCTIONED_RNG_MODULES = ("src/repro/runtime/rng.py",)

#: Paths where set iteration is ERROR (replay-critical hot paths).
HOT_PATH_PREFIXES = ("src/repro/runtime/", "src/repro/store/")

#: numpy.random attributes that construct generators / entropy state.
RNG_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
    "BitGenerator",
})

WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@dataclass(frozen=True)
class AllowlistEntry:
    path: str
    rule: str
    qualname: str
    justification: str
    line: int

    def matches(self, path: str, rule: str, qualname: str) -> bool:
        return (
            self.path == path
            and self.rule == rule
            and (self.qualname == "*" or self.qualname == qualname)
        )


def load_allowlist(path: Path) -> List[AllowlistEntry]:
    entries: List[AllowlistEntry] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, comment = line.partition("#")
        parts = [p.strip() for p in body.strip().split("::")]
        if len(parts) != 3 or not all(parts):
            raise ValueError(
                f"{path}:{lineno}: malformed allowlist entry {line!r}; "
                f"expected 'path::rule::qualname  # justification'"
            )
        entries.append(AllowlistEntry(
            path=parts[0], rule=parts[1], qualname=parts[2],
            justification=comment.strip(), line=lineno,
        ))
    return entries


@dataclass(frozen=True)
class _Site:
    """One raw lint hit, carrying the scope key for allowlist matching."""

    finding: Finding
    path: str
    qualname: str


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str, source_lines: Sequence[str]):
        self.rel_path = rel_path
        self.lines = source_lines
        self.sites: List[_Site] = []
        self.scope: List[str] = []
        # alias sets / maps, populated by import statements
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.stdlib_random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_module_aliases: Set[str] = set()
        self.from_imports: Dict[str, str] = {}
        self._suppressed: Set[int] = set()
        self.rng_sanctioned = rel_path in SANCTIONED_RNG_MODULES
        self.hot_path = rel_path.startswith(HOT_PATH_PREFIXES)

    # -- scope tracking -------------------------------------------------
    def _in_scope(self, name: str, node: ast.AST) -> None:
        self.scope.append(name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._in_scope(node.name, node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._in_scope(node.name, node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._in_scope(node.name, node)

    @property
    def qualname(self) -> str:
        return ".".join(self.scope) if self.scope else "<module>"

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy_aliases.add(local)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.numpy_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
            elif alias.name == "random":
                self.stdlib_random_aliases.add(local)
            elif alias.name == "time":
                self.time_aliases.add(local)
            elif alias.name == "datetime":
                self.datetime_module_aliases.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            if module == "numpy" and alias.name == "random":
                self.numpy_random_aliases.add(local)
            elif module == "numpy.random":
                self.from_imports[local] = f"numpy.random.{alias.name}"
            elif module == "random":
                self.from_imports[local] = f"random.{alias.name}"
            elif module == "time":
                self.from_imports[local] = f"time.{alias.name}"
            elif module == "datetime":
                self.from_imports[local] = f"datetime.{alias.name}"

    # -- name normalization --------------------------------------------
    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        if root in self.numpy_aliases:
            parts[0] = "numpy"
        elif root in self.numpy_random_aliases:
            parts[0:1] = ["numpy", "random"]
        elif root in self.stdlib_random_aliases:
            parts[0] = "random"
        elif root in self.time_aliases:
            parts[0] = "time"
        elif root in self.datetime_module_aliases:
            parts[0] = "datetime"
        elif root in self.from_imports:
            parts[0:1] = self.from_imports[root].split(".")
        else:
            return None
        return ".".join(parts)

    # -- findings -------------------------------------------------------
    def _add(self, node: ast.AST, severity: Severity, rule: str,
             message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        self.sites.append(_Site(
            finding=Finding(
                severity, rule, f"{self.rel_path}:{lineno}", message,
            ),
            path=self.rel_path,
            qualname=self.qualname,
        ))

    def _snippet(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- rules ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if id(node) not in self._suppressed:
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is None:
            return
        if dotted.startswith("numpy.random."):
            if not self.rng_sanctioned:
                self._flag_numpy_random(node, dotted)
            return
        if dotted.startswith("random."):
            self._add(
                node, Severity.ERROR, "unseeded-rng",
                f"stdlib random ({dotted}) draws from global, "
                f"non-replayable state: `{self._snippet(node)}`",
            )
            return
        if dotted in WALL_CLOCK_CALLS:
            self._add(
                node, Severity.ERROR, "wall-clock",
                f"{dotted}() reads the wall clock; behavior must not "
                f"depend on when a run happens: `{self._snippet(node)}`",
            )

    def _flag_numpy_random(self, node: ast.Call, dotted: str) -> None:
        tail = dotted[len("numpy.random."):]
        if tail in RNG_CONSTRUCTORS:
            # one finding per outermost constructor expression
            for child in ast.walk(node):
                if child is not node and isinstance(child, ast.Call):
                    inner = self._dotted(child.func)
                    if inner and inner.startswith("numpy.random."):
                        self._suppressed.add(id(child))
            if self._is_unseeded(node):
                self._add(
                    node, Severity.ERROR, "unseeded-rng",
                    f"{tail}() without a seed pulls OS entropy; thread "
                    f"a seed through repro.runtime.rng instead: "
                    f"`{self._snippet(node)}`",
                )
            else:
                self._add(
                    node, Severity.ERROR, "rng-construction",
                    f"direct {tail}(...) construction; use "
                    f"repro.runtime.rng.make_generator / spawn_seeds so "
                    f"the stream belongs to a seed domain: "
                    f"`{self._snippet(node)}`",
                )
        elif tail == "seed" or "." not in tail:
            self._add(
                node, Severity.ERROR, "unseeded-rng",
                f"numpy.random.{tail}() uses the global legacy RNG "
                f"state: `{self._snippet(node)}`",
            )

    @staticmethod
    def _is_unseeded(node: ast.Call) -> bool:
        if node.keywords:
            return False
        if not node.args:
            return True
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:
            self._check_iteration(comp.iter)
        self.generic_visit(node)

    def _check_iteration(self, iterable: ast.AST) -> None:
        if not self._is_bare_set(iterable):
            return
        severity = Severity.ERROR if self.hot_path else Severity.WARNING
        self._add(
            iterable, severity, "set-iteration",
            f"iteration over a bare set: ordering is hash-seed "
            f"dependent and leaks into trajectories; sort first: "
            f"`{self._snippet(iterable)}`",
        )

    @staticmethod
    def _is_bare_set(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return _Linter._is_bare_set(node.left) or _Linter._is_bare_set(
                node.right
            )
        return False


def _relative(path: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(_REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path) -> List[_Site]:
    """Raw (pre-allowlist) lint hits for one source file."""
    rel = _relative(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [_Site(
            finding=Finding(
                Severity.ERROR, "parse",
                f"{rel}:{exc.lineno or 0}", f"syntax error: {exc.msg}",
            ),
            path=rel,
            qualname="<module>",
        )]
    linter = _Linter(rel, source.splitlines())
    linter.visit(tree)
    return linter.sites


def _python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Sequence[Path],
    *,
    allowlist_path: Optional[Path] = None,
) -> List[Finding]:
    """Lint files/directories, apply the allowlist, report stale entries."""
    entries = (
        load_allowlist(allowlist_path)
        if allowlist_path is not None and allowlist_path.is_file()
        else []
    )
    used: Set[int] = set()
    findings: List[Finding] = []
    linted: Set[str] = set()
    for file in _python_files(paths):
        linted.add(_relative(file))
        for site in lint_file(file):
            matched = False
            for i, entry in enumerate(entries):
                if entry.matches(site.path, site.finding.rule, site.qualname):
                    used.add(i)
                    matched = True
            if not matched:
                findings.append(site.finding)
    for i, entry in enumerate(entries):
        if i not in used and entry.path in linted:
            findings.append(Finding(
                Severity.INFO, "stale-allowlist",
                f"{allowlist_path}:{entry.line}",
                f"allowlist entry matches nothing anymore "
                f"({entry.path}::{entry.rule}::{entry.qualname}); "
                f"remove it",
            ))
    return findings
