"""Symbolic message-complexity model derived from a protocol spec.

The engines charge messages by one law, shared by every code path
(planner full-probability charge, coin-group multinomial charge,
independent-coin fallback, naive engine): when an actor's coin falls
heads it sends ``width`` peer contacts, where ``width`` is
``len(required_states)`` for sample/tokenize, ``fanout`` for
any-of/push, and 0 for flip.  Charges are *unthinned* -- message loss
and match failure discard effects, never contacts, and oracle token
delivery is free.  Therefore, conditional on the period-start counts
``c``::

    E[messages in one period | c]  =  sum_a  width_a * p_a * c[actor_a]

which is linear in the counts with per-state coefficients readable
straight off the spec.  That is the whole model; this module exposes
it three ways:

* **symbolically** -- per-period expected total as a sympy expression
  in the population size ``N``, the state fractions ``x_s``, the coin
  biases ``p_i`` and fan-outs ``k_i`` (the paper's Section 3 cost
  discussion, now machine-derived);
* **numerically** -- ``expected_messages(fractions, n)`` for one
  period at a mean-field point;
* **as a cross-check** -- ``predict_total`` / ``zscore`` turn a
  recorded counts tensor into a prediction (with a conservative
  variance bound) for the engine's measured ``total_messages``.  The
  per-period prediction error is a martingale difference (zero mean
  conditional on the realized period-start counts), so the z-score of
  the summed error is well calibrated and tests can gate on it.

Runtime ``loss_rate`` deliberately does **not** appear: the planner
folds loss into *effect* thinning after charging, so the expected
charge is loss-independent.  Failure compensation baked into the coin
biases at synthesis time (the ``(1/(1-f))^(|T|-1)`` factor) *is*
visible, because it lives in ``action.probability``.

Variance bound: within a coin group the per-action head counts are
jointly multinomial, so their covariance is negative and
``sum_a width_a^2 * p_a * (1 - p_a) * c[actor_a]`` (independent
binomials) is a conservative upper bound on the true per-period
variance; probability-1 actions contribute zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..synthesis.actions import Action, AnyOfSampleAction, PushAction
from ..synthesis.protocol import ProtocolSpec


def action_width(action: Action) -> int:
    """Peer contacts per firing (the planner's ``_action_width`` law).

    Identical to ``Action.messages_per_period``: ``fanout`` for
    any-of/push, ``len(required_states)`` for sample/tokenize, 0 for
    flip.
    """
    return action.messages_per_period


@dataclass(frozen=True)
class MessageModel:
    """Per-period message cost of a spec, linear in the state counts.

    ``coefficients[s]`` is the expected number of messages one process
    in state ``states[s]`` sends per period; ``variances[s]`` the
    conservative per-process variance bound.  Both are exact
    consequences of the engines' charging law, not fits.
    """

    spec: ProtocolSpec
    states: Tuple[str, ...]
    coefficients: np.ndarray
    variances: np.ndarray

    def per_state_cost(self) -> Dict[str, float]:
        """Expected messages per process per period, by state."""
        return {s: float(c) for s, c in zip(self.states, self.coefficients)}

    def expected_messages(
        self, fractions: Mapping[str, float], n: float
    ) -> float:
        """Expected total messages in one period at a mean-field point.

        ``fractions`` maps states to population fractions (missing
        states count as 0); ``n`` is the population size.
        """
        return float(n) * sum(
            float(fractions.get(s, 0.0)) * float(c)
            for s, c in zip(self.states, self.coefficients)
        )

    # ------------------------------------------------------------------
    # Cross-check API against measured engine totals
    # ------------------------------------------------------------------
    def _column_order(
        self, states: Optional[Sequence[str]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if states is None:
            return self.coefficients, self.variances
        index = {s: i for i, s in enumerate(self.states)}
        coeff = np.zeros(len(states))
        var = np.zeros(len(states))
        for j, state in enumerate(states):
            i = index.get(str(state))
            if i is not None:
                coeff[j] = self.coefficients[i]
                var[j] = self.variances[i]
        return coeff, var

    def predict_total(
        self,
        counts: np.ndarray,
        periods: Optional[Sequence[int]] = None,
        *,
        states: Optional[Sequence[str]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Predict cumulative messages over a recorded trajectory.

        ``counts`` has shape ``(..., K, S)``: ``K`` recorded rows
        (row 0 is the initial configuration, row ``j`` the state after
        ``periods[j]`` periods) over ``S`` states.  ``periods``
        defaults to ``0..K-1`` (stride 1, where the prediction is
        exact in expectation); with a recording stride the intervening
        periods are weighted by the last recorded row (left-constant),
        which is an approximation.  ``states`` reorders/matches the
        count columns when they differ from the spec's state order.

        Returns ``(mean, variance_bound)`` with shape
        ``counts.shape[:-2]``.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.ndim < 2:
            raise ValueError("counts must have shape (..., K, S)")
        k = counts.shape[-2]
        if periods is None:
            labels = np.arange(k)
        else:
            labels = np.asarray(periods, dtype=float)
            if labels.shape != (k,):
                raise ValueError(
                    f"periods must have length {k}, got {labels.shape}"
                )
        weights = np.diff(labels)
        if k < 2 or np.any(weights < 0):
            raise ValueError("periods must be increasing with >= 2 rows")
        coeff, var = self._column_order(states)
        starts = counts[..., :-1, :]
        mean = np.einsum("...ks,s,k->...", starts, coeff, weights)
        bound = np.einsum("...ks,s,k->...", starts, var, weights)
        return mean, bound

    def zscore(
        self,
        measured: np.ndarray,
        counts: np.ndarray,
        periods: Optional[Sequence[int]] = None,
        *,
        states: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """z-score of measured totals against the model prediction.

        ``measured`` must broadcast against ``counts.shape[:-2]`` (one
        engine ``total_messages`` entry per trajectory).  Where the
        variance bound is zero (all charging deterministic) the score
        is 0 on exact agreement and ``inf`` otherwise.  Because the
        bound is conservative, gating ``|z| <= z_bound`` is
        conservative too.
        """
        mean, bound = self.predict_total(counts, periods, states=states)
        measured = np.asarray(measured, dtype=float)
        error = measured - mean
        with np.errstate(divide="ignore", invalid="ignore"):
            z = error / np.sqrt(bound)
        exact = bound == 0
        if np.ndim(z) == 0:
            if exact:
                return np.float64(0.0 if error == 0 else np.inf)
            return np.float64(z)
        z = np.asarray(z)
        z[exact & (error == 0)] = 0.0
        z[exact & (error != 0)] = np.inf
        return z


def message_model(spec: ProtocolSpec) -> MessageModel:
    """Build the numeric :class:`MessageModel` for a spec."""
    states = tuple(spec.states)
    coefficients = np.zeros(len(states))
    variances = np.zeros(len(states))
    index = {s: i for i, s in enumerate(states)}
    for action in spec.actions:
        width = action_width(action)
        if width == 0:
            continue
        i = index[action.actor_state]
        p = action.probability
        coefficients[i] += width * p
        variances[i] += width * width * p * (1.0 - p)
    return MessageModel(
        spec=spec,
        states=states,
        coefficients=coefficients,
        variances=variances,
    )


# ----------------------------------------------------------------------
# Symbolic form (sympy)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SymbolicMessageModel:
    """Sympy form of the message model.

    ``total`` is the expected messages per period as an expression in
    ``N``, the state fractions ``x_s``, the coin-bias symbols ``p_i``
    and fan-out symbols ``k_i``; ``per_state`` maps each state to its
    per-process cost expression; ``substitutions`` binds every symbol
    except ``N`` and the fractions to the spec's concrete values, so
    ``total.subs(substitutions)`` recovers the numeric model.
    ``legend`` explains which action each ``p_i`` / ``k_i`` belongs
    to.
    """

    total: "object"
    per_state: Dict[str, "object"]
    n_symbol: "object"
    fraction_symbols: Dict[str, "object"]
    substitutions: Dict["object", float]
    legend: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def render(self) -> str:
        lines = [f"E[messages/period] = {self.total}"]
        for state, expr in self.per_state.items():
            lines.append(f"  per {state}-process: {expr}")
        for symbol, meaning in self.legend:
            lines.append(f"  {symbol}: {meaning}")
        return "\n".join(lines)


def symbolic_message_model(spec: ProtocolSpec) -> SymbolicMessageModel:
    """Derive the sympy expression straight from the spec's actions."""
    import sympy

    n = sympy.Symbol("N", positive=True)
    fractions = {
        s: sympy.Symbol(f"x_{s}", nonnegative=True) for s in spec.states
    }
    per_state: Dict[str, "sympy.Expr"] = {
        s: sympy.Integer(0) for s in spec.states
    }
    substitutions: Dict["sympy.Symbol", float] = {}
    legend: List[Tuple[str, str]] = []
    for i, action in enumerate(spec.actions):
        structural_width = action_width(action)
        if structural_width == 0:
            continue
        bias = sympy.Symbol(f"p_{i}", nonnegative=True)
        substitutions[bias] = float(action.probability)
        legend.append((f"p_{i}", f"coin bias of {action.describe()}"))
        if isinstance(action, (AnyOfSampleAction, PushAction)):
            width: "sympy.Expr" = sympy.Symbol(f"k_{i}", positive=True)
            substitutions[width] = float(action.fanout)
            legend.append((f"k_{i}", f"fan-out of {action.describe()}"))
        else:
            width = sympy.Integer(structural_width)
        per_state[action.actor_state] += width * bias
    total = n * sum(
        fractions[s] * per_state[s] for s in spec.states
    )
    return SymbolicMessageModel(
        total=sympy.expand(total),
        per_state=dict(per_state),
        n_symbol=n,
        fraction_symbols=fractions,
        substitutions=substitutions,
        legend=tuple(legend),
    )
