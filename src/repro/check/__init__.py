"""Static analysis for the protocol framework.

Three coordinated, engine-free analyses:

* :mod:`repro.check.spec_checks` -- verify a :class:`ProtocolSpec` (or
  an equations file) against the paper's derivation preconditions:
  probability mass, conservation, reachability, mean-field
  consistency, and parameter-range certificates.
* :mod:`repro.check.complexity` -- the symbolic per-period message
  model derived from the spec, with a cross-check API against
  measured engine ``total_messages``.
* :mod:`repro.check.lint` -- the determinism linter enforcing the
  bitwise-reproducibility contract over ``src/repro``.

All three report through :class:`repro.check.Finding` records and are
surfaced by ``python -m repro check [spec|lint|complexity]``.
"""

from .findings import (
    Finding,
    ProtocolCheckWarning,
    Severity,
    SpecCheckError,
    error_findings,
    has_errors,
    render_findings,
)
from .complexity import (
    MessageModel,
    SymbolicMessageModel,
    action_width,
    message_model,
    symbolic_message_model,
)
from .spec_checks import (
    check_equations,
    check_spec,
    parse_declare_directives,
    parse_param_range_directives,
    self_moving_mass,
    verify_spec,
)
from .lint import (
    DEFAULT_ALLOWLIST,
    AllowlistEntry,
    lint_paths,
    load_allowlist,
)

__all__ = [
    "AllowlistEntry",
    "DEFAULT_ALLOWLIST",
    "Finding",
    "MessageModel",
    "ProtocolCheckWarning",
    "Severity",
    "SpecCheckError",
    "SymbolicMessageModel",
    "action_width",
    "check_equations",
    "check_spec",
    "error_findings",
    "has_errors",
    "lint_paths",
    "load_allowlist",
    "message_model",
    "parse_declare_directives",
    "parse_param_range_directives",
    "render_findings",
    "self_moving_mass",
    "symbolic_message_model",
    "verify_spec",
]
