"""Structured findings: the common currency of every static check.

The spec verifier, the determinism linter and the complexity
cross-checks all report through one record type so that callers (the
``python -m repro check`` CLI, the embedded warn-on-construction hook,
CI jobs, tests) can sort, filter and gate on severity uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence


class Severity(enum.IntEnum):
    """Ordered severities; ``ERROR`` findings gate (exit 1 / raise)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Finding:
    """One static-analysis result.

    Attributes
    ----------
    severity:
        :class:`Severity` of the finding.  Only ``ERROR`` findings fail
        a check run; ``WARNING`` marks suspicious-but-runnable
        constructs, ``INFO`` is advisory.
    rule:
        Stable machine-readable rule id (kebab-case), e.g. ``"mass"``,
        ``"unseeded-rng"``.  Tests and allowlists key on it.
    location:
        Where: ``"state y"`` / ``"action 3"`` for spec checks,
        ``"path:line"`` for lint findings.
    message:
        Human-readable explanation, including the offending values.
    """

    severity: Severity
    rule: str
    location: str
    message: str

    def render(self) -> str:
        return f"{self.severity.name:<7} [{self.rule}] {self.location}: {self.message}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


def error_findings(findings: Iterable[Finding]) -> List[Finding]:
    """The subset of findings that gate (``ERROR`` severity)."""
    return [f for f in findings if f.severity >= Severity.ERROR]


def has_errors(findings: Iterable[Finding]) -> bool:
    return bool(error_findings(findings))


def render_findings(findings: Sequence[Finding], label: str = "") -> str:
    """A printable report: findings sorted most severe first."""
    ordered = sorted(findings, key=lambda f: (-int(f.severity), f.rule, f.location))
    lines = [f.render() for f in ordered]
    counts = {s: 0 for s in Severity}
    for finding in findings:
        counts[finding.severity] += 1
    summary = ", ".join(
        f"{counts[s]} {s.name.lower()}{'s' if counts[s] != 1 else ''}"
        for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        if counts[s]
    ) or "no findings"
    prefix = f"{label}: " if label else ""
    lines.append(f"{prefix}{summary}")
    return "\n".join(lines)


class SpecCheckError(ValueError):
    """Raised in strict mode when a spec check produces ERROR findings."""

    def __init__(self, findings: Sequence[Finding], label: str = "spec"):
        self.findings = list(findings)
        errors = error_findings(findings)
        super().__init__(
            f"{label} failed static verification with {len(errors)} "
            f"error(s):\n" + "\n".join(f.render() for f in errors)
        )


class ProtocolCheckWarning(UserWarning):
    """Emitted in warn mode (the default) for ERROR-severity findings."""
