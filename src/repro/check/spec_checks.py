"""Static verification of protocol specifications.

The paper's equations-to-protocol mapping has correctness
preconditions that used to be discovered at runtime (or not at all):

* **mass** -- the per-state transition probability mass must not
  exceed 1: a process leaves its state at most once per period, so the
  coin biases of its *self-moving* actions must admit a single
  multinomial draw.  Push and tokenize actions move *other* processes
  and do not compete for the actor's own transition (they are summed
  separately as informational coin mass -- the engines run them on
  independent coins).
* **conservation** -- every action moves exactly one process from its
  edge source to its edge target, so the spec conserves population by
  construction; what can break is the *source system* (a ``+2xy``
  against a ``-xy``), which the spec then cannot realize faithfully.
  The check is the classifier's completeness test: all right-hand
  sides must sum to zero symbolically.
* **reachability** -- the action graph must touch every declared
  state: isolated states, states whose equations have dynamics but
  whose actions never move them, unintended absorbing states, and
  actions that cannot do anything (zero bias, self-loop edges).
* **mean-field consistency** -- for exact protocols, the spec's
  reconstructed :meth:`ProtocolSpec.mean_field_system` must match the
  source system scaled by the normalizer, term for term.  With
  ``symbolic=True`` the comparison runs through sympy (expand the
  polynomial difference, require every coefficient to vanish);
  otherwise the framework's own monomial-keyed comparison is used.

Everything here is pure and static: no engine runs, no RNG.
"""

from __future__ import annotations

import itertools
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union
import warnings

from ..odes import auto_rewrite, classify, parse_system
from ..odes.parser import ParseError
from ..odes.system import EquationSystem
from ..odes.term import Term
from ..synthesis import synthesize
from ..synthesis.actions import (
    Action,
    PushAction,
    SampleAction,
    TokenizeAction,
    transition_edges,
)
from ..synthesis.errors import SynthesisError
from ..synthesis.protocol import ProtocolSpec
from .findings import (
    Finding,
    ProtocolCheckWarning,
    Severity,
    SpecCheckError,
    error_findings,
)

#: Slack on probability-mass sums (floating-point accumulation).
MASS_TOLERANCE = 1e-9

#: Modes for the embedded verification hook.
CHECK_MODES = ("off", "warn", "strict")

#: ``# param-range: name = lo .. hi [name = lo .. hi ...]`` directives.
_RANGE_DIRECTIVE = re.compile(
    r"^\s*#\s*param-range(?P<colon>:)?\s+(?P<body>.+)$", re.IGNORECASE
)
_RANGE_BINDING = re.compile(
    r"(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*"
    r"(?P<lo>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)\s*"
    r"\.\.\s*"
    r"(?P<hi>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)"
)

#: Corner-sweep budget for the range analysis (2^8 ranged parameters).
MAX_RANGED_PARAMETERS = 8

#: ``# declare: name [name ...]`` -- states the protocol is *supposed*
#: to use; the verifier flags declared-but-unrealized ones.
_DECLARE_DIRECTIVE = re.compile(
    r"^\s*#\s*declare(?P<colon>:)?\s+(?P<body>.+)$", re.IGNORECASE
)
_STATE_NAME = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


def parse_declare_directives(text: str) -> List[str]:
    """Extract ``# declare: state ...`` names from equations text."""
    out: List[str] = []
    for line in text.splitlines():
        match = _DECLARE_DIRECTIVE.match(line)
        if not match:
            continue
        names = match.group("body").replace(",", " ").split()
        if not all(_STATE_NAME.match(n) for n in names):
            if match.group("colon"):
                raise ValueError(
                    f"malformed declare directive {line.strip()!r}; "
                    f"expected '# declare: state [state ...]'"
                )
            continue
        for name in names:
            if name not in out:
                out.append(name)
    return out


def parse_param_range_directives(text: str) -> Dict[str, Tuple[float, float]]:
    """Extract ``# param-range: name = lo .. hi`` bindings.

    Companion to ``# param:`` (which supplies the *default* binding):
    a range declares the box over which the spec verifier must certify
    the probability-mass precondition, not just at the defaults.
    """
    out: Dict[str, Tuple[float, float]] = {}
    for line in text.splitlines():
        match = _RANGE_DIRECTIVE.match(line)
        if not match:
            continue
        body = match.group("body")
        bindings = _RANGE_BINDING.findall(body)
        leftover = _RANGE_BINDING.sub("", body).replace(",", "").strip()
        if not bindings or leftover:
            if match.group("colon"):
                raise ValueError(
                    f"malformed param-range directive {line.strip()!r}; "
                    f"expected '# param-range: name = lo .. hi ...'"
                )
            continue
        for name, lo, hi in bindings:
            low, high = float(lo), float(hi)
            if not low <= high:
                raise ValueError(
                    f"param-range for {name}: empty interval "
                    f"[{low}, {high}]"
                )
            out[name] = (low, high)
    return out


def _moves_actor(action: Action) -> bool:
    """Does this action transition the actor itself (vs a peer)?"""
    return not isinstance(action, (PushAction, TokenizeAction))


def _referenced_states(action: Action) -> set:
    involved = {action.actor_state, action.target_state}
    if isinstance(action, (SampleAction, TokenizeAction)):
        involved.update(action.required_states)
    if isinstance(action, TokenizeAction):
        involved.add(action.token_state)
    match = getattr(action, "match_state", None)
    if match:
        involved.add(match)
    return involved


def self_moving_mass(spec: ProtocolSpec, state: str) -> float:
    """Total per-period probability that a member of ``state`` leaves it."""
    return sum(
        a.probability for a in spec.actions_of(state) if _moves_actor(a)
    )


# ----------------------------------------------------------------------
# Individual rule passes
# ----------------------------------------------------------------------
def _check_mass(spec: ProtocolSpec) -> List[Finding]:
    findings: List[Finding] = []
    for state in spec.states:
        moving = self_moving_mass(spec, state)
        if moving > 1.0 + MASS_TOLERANCE:
            findings.append(Finding(
                Severity.ERROR, "mass", f"state {state}",
                f"self-transition probability mass {moving:g} > 1: the "
                f"multinomial per-period transition model is violated "
                f"(an actor can leave its state at most once per period)",
            ))
        total = sum(a.probability for a in spec.actions_of(state))
        if moving <= 1.0 + MASS_TOLERANCE and total > 1.0 + MASS_TOLERANCE:
            findings.append(Finding(
                Severity.INFO, "coin-mass", f"state {state}",
                f"total coin mass {total:g} > 1 (self-moving part "
                f"{moving:g} is fine): push/tokenize coins run "
                f"independently, the planner uses its per-action "
                f"fallback path for this state",
            ))
    return findings


def _check_conservation(
    spec: ProtocolSpec, system: Optional[EquationSystem]
) -> List[Finding]:
    findings: List[Finding] = []
    if system is None:
        findings.append(Finding(
            Severity.INFO, "conservation", "spec",
            "no source system: action effects conserve population by "
            "construction (1-for-1 edge moves); nothing further to check",
        ))
        return findings
    residual = _divergence_residual(system)
    if residual:
        rendered = " ".join(
            f"{t.coefficient:+g}*{_monomial_str(t)}" for t in residual
        )
        findings.append(Finding(
            Severity.ERROR, "conservation", "source system",
            f"right-hand sides do not sum to zero (residual {rendered}): "
            f"the actions' 1-for-1 population moves cannot realize a "
            f"non-conserving system; apply make_complete (Section 7) "
            f"first",
        ))
    return findings


def _divergence_residual(system: EquationSystem) -> List[Term]:
    from ..odes.term import combine_like_terms

    everything: List[Term] = []
    for variable in system.variables:
        everything.extend(system.equations[variable])
    return list(combine_like_terms(everything))


def _monomial_str(term: Term) -> str:
    return "*".join(
        v if e == 1 else f"{v}^{e}" for v, e in term.exponents
    ) or "1"


def _check_graph(
    spec: ProtocolSpec, system: Optional[EquationSystem]
) -> List[Finding]:
    findings: List[Finding] = []
    edges = spec.edges()
    inbound = {s: [] for s in spec.states}
    outbound = {s: [] for s in spec.states}
    for src, dst in edges:
        if src != dst:
            outbound[src].append(dst)
            inbound[dst].append(src)
    referenced = set()
    for action in spec.actions:
        referenced |= _referenced_states(action)
    simplified = system.simplified() if system is not None else None

    for state in spec.states:
        has_in, has_out = bool(inbound[state]), bool(outbound[state])
        dynamic = bool(
            simplified is not None
            and simplified.equations.get(state, ())
        )
        if not has_in and not has_out:
            if dynamic:
                findings.append(Finding(
                    Severity.ERROR, "dead-state", f"state {state}",
                    f"the source equations give {state} nonzero dynamics "
                    f"but no action ever moves a process into or out of "
                    f"it",
                ))
            elif state in referenced:
                findings.append(Finding(
                    Severity.WARNING, "dead-state", f"state {state}",
                    f"{state} is only read by action conditions; no "
                    f"action ever moves a process into or out of it, so "
                    f"its population is frozen at the initial count",
                ))
            else:
                findings.append(Finding(
                    Severity.ERROR, "unreachable-state", f"state {state}",
                    f"{state} is declared but no action references it: "
                    f"it is unreachable dead weight in the state machine",
                ))
        elif has_in and not has_out:
            outflow = bool(
                simplified is not None
                and simplified.negative_terms_of(state)
            )
            if outflow:
                findings.append(Finding(
                    Severity.WARNING, "absorbing-state", f"state {state}",
                    f"{state} is absorbing in the action graph but the "
                    f"source equations predict outflow from it "
                    f"(negative terms of f_{state} are unrealized)",
                ))
            else:
                findings.append(Finding(
                    Severity.INFO, "absorbing-state", f"state {state}",
                    f"{state} is absorbing (in-edges, no out-edges); "
                    f"fine when intended (e.g. an epidemic's infected "
                    f"state)",
                ))
        elif has_out and not has_in:
            inflow = bool(
                simplified is not None
                and any(
                    t.coefficient > 0
                    for t in simplified.equations.get(state, ())
                )
            )
            severity = Severity.WARNING if inflow else Severity.INFO
            detail = (
                f"the source equations predict inflow into {state} "
                f"(positive terms of f_{state} are unrealized)"
                if inflow else
                f"fine when intended (e.g. an epidemic's susceptible "
                f"state)"
            )
            findings.append(Finding(
                severity, "transient-state", f"state {state}",
                f"{state} is never entered (out-edges, no in-edges); "
                + detail,
            ))

    for index, action in enumerate(spec.actions):
        location = f"action {index} ({action.kind})"
        if action.probability == 0.0:
            findings.append(Finding(
                Severity.WARNING, "dead-action", location,
                f"coin bias is 0, the action can never fire: "
                f"{action.describe()}",
            ))
        if all(src == dst for src, dst in transition_edges(action)):
            findings.append(Finding(
                Severity.WARNING, "dead-action", location,
                f"every edge is a self-loop, firing changes nothing: "
                f"{action.describe()}",
            ))
    return findings


def _check_mean_field(
    spec: ProtocolSpec,
    system: Optional[EquationSystem],
    symbolic: bool,
    rtol: float,
) -> List[Finding]:
    if system is None:
        return []
    if not spec.exact_mean_field:
        return [Finding(
            Severity.INFO, "mean-field", "spec",
            "fan-out variants (any-of / push) match the source "
            "equations to first order only; the term-for-term "
            "equivalence check does not apply",
        )]
    expected = system.simplified().scaled(spec.normalizer)
    derived = spec.mean_field_system()
    if symbolic:
        mismatches = _sympy_mismatches(derived, expected, rtol=rtol)
    else:
        mismatches = (
            [] if derived.equivalent_to(expected, rtol=rtol)
            else ["numeric monomial-keyed comparison failed"]
        )
    if not mismatches:
        return []
    return [Finding(
        Severity.ERROR, "mean-field", "spec",
        "the reconstructed mean-field system does not match "
        f"normalizer * source ({'; '.join(mismatches[:6])})",
    )]


def _sympy_mismatches(
    derived: EquationSystem, expected: EquationSystem, rtol: float
) -> List[str]:
    """Per-variable coefficient residuals of ``derived - expected``.

    Builds both right-hand sides as sympy polynomials, expands the
    difference, and requires every monomial coefficient to vanish
    within ``rtol`` of the expected system's coefficient scale.
    """
    import sympy

    symbols = {
        v: sympy.Symbol(v, nonnegative=True)
        for v in sorted(set(derived.variables) | set(expected.variables))
    }

    def as_expr(terms: Sequence[Term]) -> "sympy.Expr":
        total = sympy.Integer(0)
        for term in terms:
            monomial = sympy.Integer(1)
            for variable, exponent in term.exponents:
                monomial *= symbols[variable] ** exponent
            total += sympy.Float(term.coefficient) * monomial
        return total

    mismatches: List[str] = []
    for variable in expected.variables:
        lhs = as_expr(derived.equations.get(variable, ()))
        rhs = as_expr(expected.equations.get(variable, ()))
        difference = sympy.expand(lhs - rhs)
        if difference == 0:
            continue
        scale = max(
            [abs(t.coefficient) for t in expected.equations.get(variable, ())]
            or [1.0]
        )
        poly = sympy.Poly(difference, *sorted(symbols.values(), key=str))
        bad = [
            (monomial, coefficient)
            for monomial, coefficient in zip(poly.monoms(), poly.coeffs())
            if abs(float(coefficient)) > rtol * scale + 1e-12
        ]
        if bad:
            detail = ", ".join(
                f"{float(c):+g}*"
                + "*".join(
                    f"{s}^{e}" if e > 1 else str(s)
                    for s, e in zip(
                        sorted(symbols.values(), key=str), monomial
                    )
                    if e
                )
                for monomial, c in bad[:4]
            )
            mismatches.append(f"f_{variable}: residual {detail}")
    variables_only_derived = set(derived.variables) - set(expected.variables)
    for variable in sorted(variables_only_derived):
        if derived.equations.get(variable, ()):
            mismatches.append(f"f_{variable}: not in source system")
    return mismatches


# ----------------------------------------------------------------------
# The verifier entry points
# ----------------------------------------------------------------------
def check_spec(
    spec: ProtocolSpec,
    system: Optional[EquationSystem] = None,
    *,
    symbolic: bool = False,
    rtol: float = 1e-9,
) -> List[Finding]:
    """Run every static rule on one spec; return all findings.

    ``system`` overrides ``spec.source`` as the reference equation
    system (e.g. the pre-synthesis parse).  ``symbolic=True`` routes
    the mean-field equivalence through sympy (the CLI and test
    default); the embedded warn-on-construction hook keeps the cheap
    numeric path so ordinary runs never import sympy.
    """
    reference = system if system is not None else spec.source
    findings: List[Finding] = []
    findings.extend(_check_mass(spec))
    findings.extend(_check_conservation(spec, reference))
    findings.extend(_check_graph(spec, reference))
    findings.extend(_check_mean_field(spec, reference, symbolic, rtol))
    return findings


def verify_spec(
    spec: ProtocolSpec,
    system: Optional[EquationSystem] = None,
    *,
    mode: str = "warn",
    label: Optional[str] = None,
) -> List[Finding]:
    """The embedded hook: check and warn/raise according to ``mode``.

    ``"warn"`` (default) emits one :class:`ProtocolCheckWarning` when
    ERROR-severity findings exist; ``"strict"`` raises
    :class:`SpecCheckError`; ``"off"`` skips the check entirely.
    """
    if mode not in CHECK_MODES:
        raise ValueError(
            f"check mode must be one of {CHECK_MODES}, got {mode!r}"
        )
    if mode == "off":
        return []
    findings = check_spec(spec, system)
    errors = error_findings(findings)
    if errors:
        name = label or spec.name
        if mode == "strict":
            raise SpecCheckError(findings, label=name)
        warnings.warn(
            ProtocolCheckWarning(
                f"protocol {name!r} failed static verification "
                f"({len(errors)} error(s)):\n"
                + "\n".join(f.render() for f in errors)
                + "\n(run `python -m repro check spec` for the full "
                f"report, or pass check='strict'/'off')"
            ),
            stacklevel=3,
        )
    return findings


def check_equations(
    source: Union[str, Path],
    *,
    parameters: Optional[Mapping[str, float]] = None,
    p: Optional[float] = None,
    failure_rate: float = 0.0,
    tokenize: bool = True,
    rewrite: bool = True,
    symbolic: bool = True,
    name: Optional[str] = None,
) -> Tuple[Optional[ProtocolSpec], List[Finding]]:
    """Verify an equations text or file end to end.

    Parses (honoring ``# param:`` defaults), checks conservation of
    the *written* system, rewrites if needed, synthesizes, runs
    :func:`check_spec` on the result, and -- when the file declares
    ``# param-range:`` boxes -- certifies the probability-mass
    precondition over the whole declared parameter box, not just the
    defaults.  Parse and synthesis failures become ERROR findings
    instead of exceptions, so callers always get a report.
    """
    from ..experiment.protocol import parse_param_directives

    path: Optional[Path] = None
    if isinstance(source, Path):
        path = source
    elif "\n" not in source and "'" not in source:
        try:
            if Path(source).is_file():
                path = Path(source)
        except (OSError, ValueError):
            path = None
    text = path.read_text() if path is not None else str(source)
    label = name or (path.stem if path is not None else "equations")

    findings: List[Finding] = []
    try:
        bound = dict(parse_param_directives(text))
        ranges = parse_param_range_directives(text)
        declared = parse_declare_directives(text)
    except ValueError as exc:
        findings.append(Finding(
            Severity.ERROR, "parse", label, str(exc)
        ))
        return None, findings
    bound.update(parameters or {})

    try:
        system = parse_system(text, parameters=bound, name=label)
    except ParseError as exc:
        findings.append(Finding(
            Severity.ERROR, "parse", label, str(exc)
        ))
        return None, findings

    residual = _divergence_residual(system)
    if residual:
        rendered = " ".join(
            f"{t.coefficient:+g}*{_monomial_str(t)}" for t in residual
        )
        if rewrite:
            findings.append(Finding(
                Severity.WARNING, "conservation", label,
                f"equations as written do not conserve population "
                f"(residual {rendered}); a slack state absorbs the "
                f"imbalance via the completion rewrite",
            ))
        else:
            findings.append(Finding(
                Severity.ERROR, "conservation", label,
                f"equations do not conserve population (residual "
                f"{rendered}) and rewriting is disabled",
            ))
            return None, findings

    if rewrite and not classify(system).mappable:
        try:
            system = auto_rewrite(system)
        except (SynthesisError, ValueError) as exc:
            findings.append(Finding(
                Severity.ERROR, "rewrite", label,
                f"system is not mappable and auto_rewrite failed: {exc}",
            ))
            return None, findings

    try:
        spec = synthesize(
            system, p=p, failure_rate=failure_rate, tokenize=tokenize,
            name=label,
        )
    except SynthesisError as exc:
        rule = "mass" if "normaliz" in str(exc).lower() else "synthesis"
        findings.append(Finding(
            Severity.ERROR, rule, label, f"synthesis failed: {exc}"
        ))
        return None, findings

    missing = [s for s in declared if s not in spec.states]
    if missing:
        import dataclasses

        spec = dataclasses.replace(
            spec, states=spec.states + tuple(missing)
        )

    findings.extend(check_spec(spec, system, symbolic=symbolic))
    if ranges:
        findings.extend(_check_param_ranges(
            text, label=label, defaults=bound, ranges=ranges,
            pinned_p=p if p is not None else spec.normalizer,
            failure_rate=failure_rate, tokenize=tokenize, rewrite=rewrite,
            symbolic=symbolic,
        ))
    return spec, findings


# ----------------------------------------------------------------------
# Symbolic parameter-range analysis
# ----------------------------------------------------------------------
def _sympy_right_hand_sides(text: str) -> List["object"]:
    """Parse the equations text into sympy expressions (one per line).

    The grammar is the framework's polynomial subset, which sympy's
    parser accepts directly once ``^`` is treated as exponentiation.
    """
    import sympy
    from sympy.parsing.sympy_parser import (
        convert_xor,
        parse_expr,
        standard_transformations,
    )

    transformations = standard_transformations + (convert_xor,)
    expressions = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].strip()
        if not stripped or "=" not in stripped:
            continue
        _, _, rhs = stripped.partition("=")
        # Pin every identifier to a plain Symbol: rate names like
        # ``beta``/``gamma`` must not resolve to sympy's special
        # functions.
        local = {
            name: sympy.Symbol(name)
            for name in re.findall(r"[A-Za-z_][A-Za-z_0-9]*", rhs)
        }
        expressions.append(parse_expr(
            rhs, transformations=transformations, local_dict=local,
        ))
    return expressions


def _is_multilinear(text: str, ranged: Sequence[str]) -> bool:
    """True when every RHS is degree <= 1 in each ranged parameter.

    Multilinearity is what makes the corner sweep *exact*: a
    multilinear function on a box attains its extrema at the corners,
    so checking every corner certifies the whole box.
    """
    import sympy

    for rhs in _sympy_right_hand_sides(text):
        expanded = sympy.expand(rhs)
        for parameter in ranged:
            if sympy.degree(expanded, sympy.Symbol(parameter)) > 1:
                return False
    return True


def _check_param_ranges(
    text: str,
    *,
    label: str,
    defaults: Mapping[str, float],
    ranges: Mapping[str, Tuple[float, float]],
    pinned_p: float,
    failure_rate: float,
    tokenize: bool,
    rewrite: bool,
    symbolic: bool,
) -> List[Finding]:
    """Certify the mass precondition over the declared parameter box.

    Re-synthesizes at every corner of the box with the normalizer
    pinned to the default-point choice (the ``p`` the deployed
    protocol actually runs with), and checks per-state self-transition
    mass at each corner.  When the equations are multilinear in the
    ranged parameters -- verified with sympy -- the corners are the
    extrema, so a clean sweep certifies the whole box; otherwise the
    midpoint is probed too and only a WARNING-grade certificate is
    possible.
    """
    findings: List[Finding] = []
    ranged = sorted(ranges)
    if len(ranged) > MAX_RANGED_PARAMETERS:
        findings.append(Finding(
            Severity.WARNING, "mass-range", label,
            f"{len(ranged)} ranged parameters exceed the corner-sweep "
            f"budget ({MAX_RANGED_PARAMETERS}); only the first "
            f"{MAX_RANGED_PARAMETERS} are swept",
        ))
        ranged = ranged[:MAX_RANGED_PARAMETERS]

    multilinear = True
    if symbolic:
        try:
            multilinear = _is_multilinear(text, ranged)
        except Exception as exc:  # sympy missing or parse drift
            multilinear = False
            findings.append(Finding(
                Severity.WARNING, "mass-range", label,
                f"could not establish multilinearity symbolically "
                f"({exc}); treating the box as non-multilinear",
            ))

    corners = list(itertools.product(
        *[(ranges[name][0], ranges[name][1]) for name in ranged]
    ))
    probes = [dict(zip(ranged, corner)) for corner in corners]
    if not multilinear:
        probes.append({
            name: 0.5 * (ranges[name][0] + ranges[name][1])
            for name in ranged
        })

    violations = 0
    for probe in probes:
        bound = dict(defaults)
        bound.update(probe)
        where = ", ".join(f"{k}={bound[k]:g}" for k in ranged)
        try:
            system = parse_system(text, parameters=bound, name=label)
            if rewrite and not classify(system).mappable:
                system = auto_rewrite(system)
            spec = synthesize(
                system, p=pinned_p, failure_rate=failure_rate,
                tokenize=tokenize, name=label,
            )
        except (ParseError, SynthesisError, ValueError) as exc:
            violations += 1
            findings.append(Finding(
                Severity.ERROR, "mass-range", f"{label} at {where}",
                f"synthesis with the deployed normalizer p={pinned_p:g} "
                f"fails inside the declared parameter box: {exc}",
            ))
            continue
        for state in spec.states:
            moving = self_moving_mass(spec, state)
            if moving > 1.0 + MASS_TOLERANCE:
                violations += 1
                findings.append(Finding(
                    Severity.ERROR, "mass-range",
                    f"{label} at {where}",
                    f"state {state}: self-transition mass {moving:g} > 1 "
                    f"inside the declared parameter box",
                ))

    if violations == 0:
        box = ", ".join(
            f"{name} in [{ranges[name][0]:g}, {ranges[name][1]:g}]"
            for name in ranged
        )
        if multilinear:
            findings.append(Finding(
                Severity.INFO, "mass-range", label,
                f"probability mass <= 1 certified over {box} "
                f"(multilinear in the ranged parameters, so the "
                f"{len(corners)} corner extrema cover the whole box)",
            ))
        else:
            findings.append(Finding(
                Severity.WARNING, "mass-range", label,
                f"corners and midpoint of {box} pass, but the "
                f"equations are not multilinear in the ranged "
                f"parameters: interior maxima are not excluded",
            ))
    return findings
