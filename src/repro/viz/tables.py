"""Plain-text aligned tables (shared by the CLI and the bench harness)."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain-text aligned table with a dashed header separator."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
