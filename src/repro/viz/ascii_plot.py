"""Terminal plotting: ASCII renditions of the paper's figures.

No plotting library is available offline, so examples and benchmark
harnesses render time series and scatter plots (phase portraits, the
Figure 8 stasher scatter) directly to text.  Output is deliberately in
the spirit of the paper's gnuplot figures: axes, ticks, multiple
labeled series.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Characters used for successive series.
SERIES_MARKERS = "ox+*#@%&"


def _canvas(width: int, height: int) -> List[List[str]]:
    return [[" "] * width for _ in range(height)]


def _scale(
    values: np.ndarray, lo: float, hi: float, size: int
) -> np.ndarray:
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    scaled = (values - lo) / (hi - lo) * (size - 1)
    return np.clip(np.round(scaled).astype(int), 0, size - 1)


def render(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    x_range: Optional[Tuple[float, float]] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render labeled ``{name: (xs, ys)}`` series onto one ASCII plot."""
    if not series:
        raise ValueError("no series to plot")
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if x_range is None:
        x_range = (float(xs_all.min()), float(xs_all.max()))
    if y_range is None:
        lo, hi = float(ys_all.min()), float(ys_all.max())
        pad = 0.05 * (hi - lo or 1.0)
        y_range = (lo - pad, hi + pad)

    canvas = _canvas(width, height)
    legend = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        legend.append(f"{marker}={name}")
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        cols = _scale(xs, x_range[0], x_range[1], width)
        rows = _scale(ys, y_range[0], y_range[1], height)
        for col, row in zip(cols, rows):
            canvas[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_range[1]:.6g}"
    bottom_label = f"{y_range[0]:.6g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = top_label.rjust(gutter)
        elif row_index == height - 1:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = (
        f"{x_range[0]:.6g}".ljust(width // 2)
        + f"{x_range[1]:.6g}".rjust(width - width // 2)
    )
    lines.append(" " * (gutter + 1) + x_axis)
    footer = "  ".join(legend)
    if xlabel or ylabel:
        footer += f"   [{xlabel} vs {ylabel}]" if ylabel else f"   [{xlabel}]"
    lines.append(footer)
    return "\n".join(lines)


def render_series(
    times: Sequence[float],
    named_values: Mapping[str, Sequence[float]],
    **kwargs,
) -> str:
    """Convenience wrapper: several y-series over one shared x-axis."""
    return render(
        {name: (times, values) for name, values in named_values.items()},
        **kwargs,
    )


def render_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    name: str = "points",
    **kwargs,
) -> str:
    """Scatter plot of one point set (e.g. Figure 8's stasher log)."""
    return render({name: (xs, ys)}, **kwargs)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal ASCII histogram (load-balance visualizations)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("no values")
    counts, edges = np.histogram(array, bins=bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(
            f"[{edges[i]:>10.4g}, {edges[i+1]:>10.4g}) "
            f"{bar} {count}"
        )
    return "\n".join(lines)
