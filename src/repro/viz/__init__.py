"""Terminal visualization helpers (ASCII plots for examples/benches)."""

from .ascii_plot import histogram, render, render_scatter, render_series

__all__ = ["render", "render_series", "render_scatter", "histogram"]
