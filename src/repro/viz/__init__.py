"""Terminal visualization helpers (ASCII plots and tables)."""

from .ascii_plot import histogram, render, render_scatter, render_series
from .tables import format_table

__all__ = [
    "render", "render_series", "render_scatter", "histogram", "format_table",
]
