"""Synthesis layer: equation systems -> distributed protocols.

Implements the paper's core contribution: the term-to-action mapping of
Section 3 (Flipping, One-Time-Sampling), the Tokenizing extension of
Section 6, failure compensation, normalizing-constant selection, and
the resulting :class:`~repro.synthesis.protocol.ProtocolSpec` state
machines with their message-complexity accounting.
"""

from .actions import (
    Action,
    AnyOfSampleAction,
    FlipAction,
    PushAction,
    SampleAction,
    TokenizeAction,
    transition_edges,
)
from .errors import (
    ConstantTermError,
    NormalizationError,
    NotCompleteError,
    NotPartitionableError,
    NotRestrictedError,
    SynthesisError,
)
from .mapper import choose_normalizer, failure_compensation, synthesize, synthesis_report
from .protocol import ProtocolSpec

__all__ = [
    "Action",
    "FlipAction",
    "SampleAction",
    "AnyOfSampleAction",
    "PushAction",
    "TokenizeAction",
    "transition_edges",
    "ProtocolSpec",
    "synthesize",
    "synthesis_report",
    "choose_normalizer",
    "failure_compensation",
    "SynthesisError",
    "NotCompleteError",
    "NotPartitionableError",
    "NotRestrictedError",
    "ConstantTermError",
    "NormalizationError",
]
