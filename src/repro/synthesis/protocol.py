"""Protocol specifications: the synthesized state machines.

A :class:`ProtocolSpec` is the output of the framework: a set of states
(one per equation variable) plus periodic probabilistic actions.  It
knows its own provenance (the source equation system and the
normalizing constant ``p``), can compute the paper's message-complexity
bound (Section 3), reconstruct the mean-field ODE it models (the
equivalence self-check behind Theorems 1 and 5), and render itself as an
ASCII state machine in the spirit of the paper's Figures 1 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..odes.system import EquationSystem
from ..odes.term import Term, combine_like_terms
from .actions import (
    Action,
    AnyOfSampleAction,
    FlipAction,
    PushAction,
    SampleAction,
    TokenizeAction,
    transition_edges,
)
from .errors import SynthesisError


@dataclass(frozen=True)
class ProtocolSpec:
    """A synthesized distributed protocol.

    Attributes
    ----------
    name:
        Protocol label.
    states:
        Ordered state names (mirror the equation variables).
    actions:
        All periodic actions.
    normalizer:
        The paper's normalizing constant ``p``.  One protocol period
        corresponds to ``p`` time units of the source equations (coin
        biases are ``p * c``), so simulated period ``n`` maps to ODE
        time ``t = p * n``.
    source:
        The equation system the protocol was synthesized from (None for
        hand-written protocols).
    exact_mean_field:
        True when every action's mean rate matches its source term
        exactly (pure Flip/Sample/Tokenize); False when fan-out variants
        (any-of / push) make the match first-order only.
    failure_rate:
        The per-connection failure probability ``f`` the protocol was
        compensated for (Section 3): coin biases carry an extra
        ``(1/(1-f))^(|T|-1)`` factor, so that *on a network that loses
        contacts with probability f* the effective dynamics match the
        source equations.  Run engines with
        ``connection_failure_rate=failure_rate`` to realize this.
    """

    name: str
    states: Tuple[str, ...]
    actions: Tuple[Action, ...]
    normalizer: float = 1.0
    source: Optional[EquationSystem] = None
    exact_mean_field: bool = True
    failure_rate: float = 0.0

    def __post_init__(self):
        if len(set(self.states)) != len(self.states):
            raise SynthesisError(f"duplicate states in {self.states!r}")
        known = set(self.states)
        for action in self.actions:
            involved = {action.actor_state, action.target_state}
            if isinstance(action, (AnyOfSampleAction, PushAction)):
                involved.add(action.match_state)
            if isinstance(action, (SampleAction, TokenizeAction)):
                involved.update(action.required_states)
            if isinstance(action, TokenizeAction):
                involved.add(action.token_state)
            unknown = involved - known
            if unknown:
                raise SynthesisError(
                    f"action {action.describe()!r} references unknown states "
                    f"{sorted(unknown)}"
                )
        if not 0 < self.normalizer <= 1:
            raise SynthesisError(
                f"normalizer p must lie in (0, 1], got {self.normalizer}"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def time_scale(self) -> float:
        """ODE time units per protocol period (= ``p``)."""
        return self.normalizer

    def actions_of(self, state: str) -> Tuple[Action, ...]:
        """Actions executed by processes in ``state``."""
        return tuple(a for a in self.actions if a.actor_state == state)

    def edges(self) -> List[Tuple[str, str]]:
        """All distinct (from, to) transition edges."""
        seen = []
        for action in self.actions:
            for edge in transition_edges(action):
                if edge not in seen:
                    seen.append(edge)
        return seen

    def periods_for_time(self, t: float) -> int:
        """Number of protocol periods spanning ``t`` ODE time units."""
        return max(1, round(t / self.time_scale))

    def time_for_periods(self, periods: float) -> float:
        """ODE time corresponding to a number of protocol periods."""
        return periods * self.time_scale

    # ------------------------------------------------------------------
    # Message complexity (paper, Section 3)
    # ------------------------------------------------------------------
    def messages_per_period(self, state: str) -> int:
        """Sampling messages sent per period by a process in ``state``."""
        return sum(a.messages_per_period for a in self.actions_of(state))

    def message_complexity(self) -> Dict[str, int]:
        """Per-state message counts; the paper's bound says the count
        for state ``x`` equals ``sum_T (|T| - 1)`` over the negative
        terms ``T`` of ``f_x`` -- i.e. total variable occurrences minus
        the number of negative terms."""
        return {s: self.messages_per_period(s) for s in self.states}

    def paper_message_bound(self) -> Dict[str, int]:
        """The Section 3 bound computed from the source equations.

        Computed over the simplified source; exact when the simplified
        system partitions without term splitting (the paper's setting,
        where the written terms *are* the pairs).  When splitting is
        needed (a merged ``-2T`` pairing with two ``+T`` inflows), the
        realized message count can exceed this merged-form figure.

        Returns an empty mapping when the protocol has no source system.
        """
        if self.source is None:
            return {}
        bound = {}
        for state in self.states:
            negatives = self.source.simplified().negative_terms_of(state)
            bound[state] = sum(t.occurrences - 1 for t in negatives)
        return bound

    # ------------------------------------------------------------------
    # Mean-field reconstruction (equivalence self-check)
    # ------------------------------------------------------------------
    def mean_field_system(self, effective: bool = True) -> EquationSystem:
        """Reconstruct the ODE system the protocol models, from actions.

        With ``effective=True`` (default), sampling rates are discounted
        by the probability that all contacts survive the lossy network
        the protocol was compensated for (``(1-f)^k`` for ``k``
        contacts), i.e. the dynamics *as realized* on that network.  For
        pure Flip/Sample/Tokenize(oracle) protocols the effective system
        must equal ``p *`` the simplified source system -- the
        constructive content of Theorems 1 and 5.  Fan-out variants
        contribute their first-order rates.
        """
        flows: Dict[str, List[Term]] = {s: [] for s in self.states}
        for action in self.actions:
            term = _first_order_term(action)
            if effective and self.failure_rate > 0.0:
                contacts = 0
                if isinstance(action, (SampleAction, TokenizeAction)):
                    contacts = len(action.required_states)
                term = term.scaled((1.0 - self.failure_rate) ** contacts)
            for src, dst in transition_edges(action):
                flows[src].append(term.scaled(-1.0))
                flows[dst].append(term)
        equations = {s: combine_like_terms(flows[s]) for s in self.states}
        return EquationSystem(self.states, equations, name=f"{self.name}-mean-field")

    def verify_equivalence(self, rtol: float = 1e-9) -> bool:
        """Check mean-field reconstruction against the scaled source.

        Only meaningful for exact protocols with a source system.
        """
        if self.source is None:
            raise SynthesisError("protocol has no source system to verify against")
        if not self.exact_mean_field:
            raise SynthesisError(
                "protocol uses fan-out variants; equivalence is first-order only"
            )
        expected = self.source.simplified().scaled(self.normalizer)
        return self.mean_field_system().equivalent_to(expected, rtol=rtol)

    # ------------------------------------------------------------------
    # Rendering (Figures 1 and 3 style)
    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII state machine: states, then per-state action lists."""
        lines = [f"protocol {self.name!r}  (p = {self.normalizer:g})"]
        lines.append("states: " + "  ".join(f"[{s}]" for s in self.states))
        for state in self.states:
            actions = self.actions_of(state)
            if not actions:
                continue
            lines.append(f"  state {state}:")
            for action in actions:
                lines.append(f"    - {action.describe()}")
        orphaned = [
            s for s in self.states
            if not self.actions_of(s)
            and all(s not in edge for edge in self.edges())
        ]
        if orphaned:
            lines.append(f"  (absorbing states: {', '.join(orphaned)})")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


def _first_order_term(action: Action) -> Term:
    """The inflow term (positive) contributed by one action, first order."""
    exponents: Dict[str, int] = {}

    def bump(state: str, by: int = 1) -> None:
        exponents[state] = exponents.get(state, 0) + by

    coefficient = action.probability
    if isinstance(action, FlipAction):
        bump(action.actor_state)
    elif isinstance(action, TokenizeAction):
        bump(action.actor_state)
        for s in action.required_states:
            bump(s)
        # Oracle delivery moves a process of token_state; the rate does
        # not itself multiply by token_state's fraction (delivery is
        # certain while any target exists).
    elif isinstance(action, SampleAction):
        bump(action.actor_state)
        for s in action.required_states:
            bump(s)
    elif isinstance(action, AnyOfSampleAction):
        bump(action.actor_state)
        bump(action.match_state)
        coefficient *= action.fanout
    elif isinstance(action, PushAction):
        bump(action.actor_state)
        bump(action.match_state)
        coefficient *= action.fanout
    else:  # pragma: no cover - future action kinds
        raise SynthesisError(f"unknown action kind {action.kind}")
    return Term(coefficient, exponents)
