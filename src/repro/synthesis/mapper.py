"""The equation-to-protocol mapper (paper Sections 3 and 6).

:func:`synthesize` is the framework's entry point: given a complete,
completely partitionable polynomial equation system, it emits a
:class:`~repro.synthesis.protocol.ProtocolSpec` whose mean-field
behaviour equals the source equations (Theorem 1; Theorem 5 with
Tokenizing, per the errata).  The mapping is term-by-term:

* ``-c * x``            in ``f_x``  ->  Flipping.
* ``-c * x^i * ...``    in ``f_x`` (``i >= 1``)  ->  One-Time-Sampling.
* ``-c * T`` with no factor of ``x``  ->  Tokenizing hosted on some
  variable ``w`` with ``i_w >= 1`` (bare constants must have been
  expanded away first -- see
  :func:`repro.odes.rewrite.expand_constants`).

The *normalizing constant* ``p`` scales all coin biases so that
``p * c <= 1`` for every term; one protocol period then corresponds to
``p`` time units of the source equations.  Failure compensation
(Section 3, "The Effect of Failures") multiplies each sampling term's
coin bias by ``(1/(1-f))^(|T|-1)`` so the protocol models the original
equations despite a per-connection failure rate ``f``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..odes.classify import classify
from ..odes.partition import PartitionResult, TermPair, partition_terms
from ..odes.system import EquationSystem
from ..odes.term import Term
from .actions import Action, FlipAction, SampleAction, TokenizeAction
from .errors import (
    ConstantTermError,
    NormalizationError,
    NotCompleteError,
    NotPartitionableError,
    NotRestrictedError,
    SynthesisError,
)
from .protocol import ProtocolSpec

#: Default safety headroom: the largest coin bias is at most this value,
#: keeping same-period action conflicts (an O((pc)^2) effect) small.
DEFAULT_MAX_BIAS = 1.0


def failure_compensation(term: Term, failure_rate: float) -> float:
    """The multiplicative bias factor ``(1/(1-f))^(|T|-1)``.

    ``|T|`` is the total number of variable occurrences in the term; a
    flipping term (``|T| = 1``) involves no connections and needs no
    compensation.
    """
    if not 0.0 <= failure_rate < 1.0:
        raise SynthesisError(f"failure rate must lie in [0, 1), got {failure_rate}")
    exponent = max(0, term.occurrences - 1)
    return (1.0 / (1.0 - failure_rate)) ** exponent


def _required_pattern(term: Term, source: str) -> Tuple[str, ...]:
    """Sample pattern for One-Time-Sampling of ``-T`` in ``f_source``.

    First ``i_source - 1`` entries are ``source`` itself; the rest are
    the lexicographic expansion of the remaining variables (the paper's
    condition (b): the j-th sampled process must be in the state of the
    j-th variable of ``prod(y^{i_y})`` ordered lexicographically).
    """
    own = term.exponent_of(source)
    pattern: List[str] = [source] * (own - 1)
    for name, power in term.exponents:  # exponents are pre-sorted by name
        if name != source:
            pattern.extend([name] * power)
    return tuple(pattern)


def _token_host(term: Term) -> str:
    """The host variable ``w`` for a tokenized term (first with i_w >= 1)."""
    if term.is_constant():
        raise ConstantTermError(
            f"term {term.render()} is a bare constant; apply expand_constants first"
        )
    return term.exponents[0][0]


def choose_normalizer(
    adjusted_magnitudes: List[float], max_bias: float = DEFAULT_MAX_BIAS
) -> float:
    """Largest ``p <= 1`` such that ``p * c <= max_bias`` for all terms."""
    if not 0 < max_bias <= 1.0:
        raise NormalizationError(f"max_bias must lie in (0, 1], got {max_bias}")
    largest = max(adjusted_magnitudes, default=0.0)
    if largest <= 0:
        return 1.0
    return min(1.0, max_bias / largest)


def synthesize(
    system: EquationSystem,
    *,
    p: Optional[float] = None,
    failure_rate: float = 0.0,
    tokenize: bool = True,
    token_ttl: Optional[int] = None,
    allow_splitting: bool = True,
    max_bias: float = DEFAULT_MAX_BIAS,
    name: Optional[str] = None,
) -> ProtocolSpec:
    """Translate an equation system into a distributed protocol.

    Parameters
    ----------
    system:
        A complete, completely partitionable polynomial system (apply
        the :mod:`repro.odes.rewrite` pipeline first if needed).
    p:
        Normalizing constant override; by default the largest value
        keeping every (compensated) coin bias at most ``max_bias``.
    failure_rate:
        Group-wide per-connection failure probability ``f``; sampling
        biases are scaled by ``(1/(1-f))^(|T|-1)`` so the protocol still
        models the source equations (Section 3).
    tokenize:
        Allow Tokenizing for non-restricted terms.  With ``False``, a
        non-restricted system raises :class:`NotRestrictedError`.
    token_ttl:
        TTL for random-walk token routing (None = membership oracle).
    allow_splitting:
        Permit the term-splitting rewrite during pairing.

    Raises
    ------
    NotCompleteError, NotPartitionableError, NotRestrictedError,
    ConstantTermError, NormalizationError
    """
    system = system.simplified()
    report = classify(system)
    if not report.complete:
        raise NotCompleteError(
            f"{system.name!r} is not complete; apply make_complete first "
            f"(sum of right-hand sides is not identically zero)"
        )
    partition = partition_terms(system, allow_splitting=False)
    if not partition.is_partitionable:
        if not allow_splitting:
            raise NotPartitionableError(
                f"{system.name!r} is not completely partitionable:\n"
                + partition.render()
            )
        partition = partition_terms(system, allow_splitting=True)
        if not partition.is_partitionable:
            raise NotPartitionableError(
                f"{system.name!r} cannot be partitioned even with term "
                f"splitting:\n" + partition.render()
            )

    # Pass 1: compensated magnitudes decide the normalizer p.
    compensated: List[Tuple[TermPair, float]] = []
    for pair in partition.pairs:
        factor = failure_compensation(pair.term, failure_rate)
        compensated.append((pair, pair.magnitude * factor))
    if p is None:
        p = choose_normalizer([mag for _, mag in compensated], max_bias=max_bias)
    else:
        if not 0 < p <= 1:
            raise NormalizationError(f"p must lie in (0, 1], got {p}")
        too_big = [mag for _, mag in compensated if p * mag > 1.0 + 1e-12]
        if too_big:
            raise NormalizationError(
                f"p={p} makes coin biases exceed 1 for magnitudes {too_big}"
            )

    # Pass 2: emit one action per pair.
    actions: List[Action] = []
    for pair, magnitude in compensated:
        bias = min(1.0, p * magnitude)
        term, source, target = pair.term, pair.source, pair.target
        own_power = term.exponent_of(source)
        if own_power >= 1:
            if term.is_linear_in(source):
                actions.append(
                    FlipAction(
                        actor_state=source,
                        probability=bias,
                        target_state=target,
                        source_term=term,
                    )
                )
            else:
                actions.append(
                    SampleAction(
                        actor_state=source,
                        probability=bias,
                        target_state=target,
                        source_term=term,
                        required_states=_required_pattern(term, source),
                    )
                )
        else:
            if not tokenize:
                raise NotRestrictedError(
                    f"term {term.render()} in {source}' has no factor of "
                    f"{source}; enable tokenize=True or rewrite with "
                    f"to_restricted"
                )
            host = _token_host(term)
            actions.append(
                TokenizeAction(
                    actor_state=host,
                    probability=bias,
                    target_state=target,
                    source_term=term,
                    required_states=_required_pattern(term, host),
                    token_state=source,
                    ttl=token_ttl,
                )
            )

    spec = ProtocolSpec(
        name=name or f"{system.name}-protocol",
        states=tuple(system.variables),
        actions=tuple(actions),
        normalizer=p,
        source=system,
        exact_mean_field=token_ttl is None,
        failure_rate=failure_rate,
    )
    # Constructive self-check of Theorem 1/5: the reconstructed mean
    # field must equal p * (source).  Oracle tokens are exact; TTL
    # routing intentionally deviates (Section 6 "Limitations").
    if spec.exact_mean_field and not spec.verify_equivalence():
        raise SynthesisError(
            f"internal error: mean-field reconstruction mismatch for "
            f"{system.name!r}"
        )
    return spec


def synthesis_report(system: EquationSystem, **kwargs) -> str:
    """Classification plus rendered protocol (or the failure reason)."""
    report = classify(system.simplified())
    lines = [report.render(), ""]
    try:
        spec = synthesize(system, **kwargs)
    except SynthesisError as exc:
        lines.append(f"synthesis failed: {exc}")
    else:
        lines.append(spec.render())
    return "\n".join(lines)
