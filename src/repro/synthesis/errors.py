"""Errors raised by the protocol synthesizer."""

from __future__ import annotations


class SynthesisError(ValueError):
    """Base class for all synthesis failures."""


class NotCompleteError(SynthesisError):
    """The equation system does not conserve total mass.

    Fix: apply :func:`repro.odes.rewrite.make_complete` first (the
    paper's completion rewrite, Section 7).
    """


class NotPartitionableError(SynthesisError):
    """Terms cannot be grouped into ``(+T, -T)`` pairs.

    Fix: try :func:`repro.odes.rewrite.split_for_partition` (term
    splitting), or rewrite the equations (Section 7).
    """


class NotRestrictedError(SynthesisError):
    """A negative term of ``f_x`` has no factor of ``x``.

    Such terms need Tokenizing (Section 6); synthesize with
    ``tokenize=True`` or rewrite with
    :func:`repro.odes.rewrite.to_restricted` first.
    """


class ConstantTermError(SynthesisError):
    """A bare constant term cannot be mapped directly.

    Fix: apply :func:`repro.odes.rewrite.expand_constants`, which
    rewrites ``+/- c`` as ``+/- c * sum(v)`` (Section 6).
    """


class NormalizationError(SynthesisError):
    """No normalizing constant ``p`` can make all coin biases <= 1."""
