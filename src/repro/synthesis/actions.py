"""Protocol actions: the building blocks of synthesized state machines.

Section 3.1 of the paper maps equation terms onto two kinds of periodic
probabilistic actions -- *Flipping* and *One-Time-Sampling* -- and
Section 6 adds *Tokenizing*.  The endemic case study (Figure 1) uses two
additional hand-optimized variants, *any-of sampling* (a receptive
contacts ``b`` targets and reacts if any is a stasher) and *push*
(a stasher converts sampled receptives), which the errata notes is "a
variant of that obtained through the methodology".  All five are modeled
here as frozen dataclasses; engines compile them to vectorized kernels.

Every action is executed once per protocol period by each process that
is currently in ``actor_state``.  The common semantics:

1. flip a local biased coin (``probability`` heads chance);
2. optionally sample processes uniformly at random from the maximal
   membership (crashed targets make the contact fail);
3. if the action's condition holds, perform the transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..odes.term import Term


@dataclass(frozen=True)
class Action:
    """Base class for protocol actions.

    Attributes
    ----------
    actor_state:
        State whose processes execute the action each period.
    probability:
        Heads probability of the local biased coin (``p * c`` in the
        paper's notation, after any failure compensation).
    target_state:
        State the actor (or, for push/tokenize, the affected process)
        transitions into when the action fires.
    source_term:
        The equation term this action realizes (None for hand-written
        actions).
    """

    actor_state: str
    probability: float
    target_state: str
    source_term: Optional[Term] = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"action probability must lie in [0, 1], got {self.probability}"
            )

    @property
    def kind(self) -> str:
        return type(self).__name__

    @property
    def messages_per_period(self) -> int:
        """Sampling messages the actor sends out per period."""
        return 0

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def mean_rate(self, fractions: Mapping[str, float]) -> float:
        """Expected fraction of processes firing this action per period.

        This is the mean-field contribution used to reconstruct the
        modeled ODE from the protocol (the equivalence self-check).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FlipAction(Action):
    """Flipping (Section 3.1): realize a ``-c*x`` term of ``f_x``.

    A process in ``actor_state`` tosses a coin with heads probability
    ``p*c`` each period and transitions to ``target_state`` on heads.
    """

    def describe(self) -> str:
        return (
            f"[{self.actor_state}] flip coin (heads prob {self.probability:g}); "
            f"on heads -> {self.target_state}"
        )

    def mean_rate(self, fractions: Mapping[str, float]) -> float:
        return self.probability * fractions[self.actor_state]


@dataclass(frozen=True)
class SampleAction(Action):
    """One-Time-Sampling (Section 3.1).

    Realizes ``-c * x^{i_x} * prod(y^{i_y})`` in ``f_x`` with
    ``i_x >= 1``.  The actor samples ``len(required_states)`` processes
    uniformly at random; the j-th sampled process must currently be in
    ``required_states[j]`` (first ``i_x - 1`` entries are the actor's
    own state, the rest the lexicographic expansion of the other
    variables), and the local coin must fall heads.
    """

    required_states: Tuple[str, ...] = ()

    def describe(self) -> str:
        if not self.required_states:
            return FlipAction.describe(self)  # degenerate: no sampling
        targets = ", ".join(self.required_states)
        return (
            f"[{self.actor_state}] sample {len(self.required_states)} target(s); "
            f"if states match ({targets}) and coin heads "
            f"(prob {self.probability:g}) -> {self.target_state}"
        )

    @property
    def messages_per_period(self) -> int:
        return len(self.required_states)

    def mean_rate(self, fractions: Mapping[str, float]) -> float:
        rate = self.probability * fractions[self.actor_state]
        for state in self.required_states:
            rate *= fractions[state]
        return rate


@dataclass(frozen=True)
class AnyOfSampleAction(Action):
    """Endemic variant (Figure 1, action (iii)): pull with fan-out.

    The actor samples ``fanout`` targets; if *any* of them is in
    ``match_state`` (and the coin falls heads), the actor transitions.
    Mean-field rate: ``x * (1 - (1 - y)^fanout) ~= fanout * x * y`` for
    small ``y`` -- the paper's ``beta = N(1 - (1 - b/N)^2) ~= 2b``
    argument is the two-sided version of this approximation.
    """

    match_state: str = ""
    fanout: int = 1

    def __post_init__(self):
        super().__post_init__()
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if not self.match_state:
            raise ValueError("match_state is required")

    def describe(self) -> str:
        return (
            f"[{self.actor_state}] sample {self.fanout} target(s); if any is in "
            f"state {self.match_state} (coin prob {self.probability:g}) "
            f"-> {self.target_state}"
        )

    @property
    def messages_per_period(self) -> int:
        return self.fanout

    def mean_rate(self, fractions: Mapping[str, float]) -> float:
        miss = (1.0 - fractions[self.match_state]) ** self.fanout
        return self.probability * fractions[self.actor_state] * (1.0 - miss)


@dataclass(frozen=True)
class PushAction(Action):
    """Endemic variant (Figure 1, action (iv)): push with fan-out.

    The actor samples ``fanout`` targets; every sampled process that is
    currently in ``match_state`` transitions to ``target_state`` (the
    actor itself does not change state).  Used by stashers to hand out
    replicas; doubling the effective contact rate lets the protocol run
    with ``b = beta / 2``.
    """

    match_state: str = ""
    fanout: int = 1

    def __post_init__(self):
        super().__post_init__()
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if not self.match_state:
            raise ValueError("match_state is required")

    def describe(self) -> str:
        return (
            f"[{self.actor_state}] sample {self.fanout} target(s); any target in "
            f"state {self.match_state} transitions -> {self.target_state} "
            f"(coin prob {self.probability:g})"
        )

    @property
    def messages_per_period(self) -> int:
        return self.fanout

    def mean_rate(self, fractions: Mapping[str, float]) -> float:
        # Expected converted targets per period, as a fraction of N:
        # actors * fanout * P(target in match_state), first order.
        return (
            self.probability
            * fractions[self.actor_state]
            * self.fanout
            * fractions[self.match_state]
        )


@dataclass(frozen=True)
class TokenizeAction(Action):
    """Tokenizing (Section 6): realize ``-c*T`` in ``f_x`` with ``i_x = 0``.

    A process in ``actor_state`` (the chosen host variable ``w`` with
    ``i_w >= 1``) runs a one-time-sampling check; when it fires, instead
    of transitioning itself it creates a token and forwards it to a
    process in ``token_state`` (= ``x``), which then transitions to
    ``target_state``.  If no process is in ``token_state`` the token is
    dropped.

    ``ttl`` models the random-walk delivery alternative: a token
    survives ``ttl`` forwarding hops looking for a target, so delivery
    succeeds with probability ``1 - (1 - x)^ttl``; ``ttl=None`` models
    the membership-oracle variant (delivery always succeeds while a
    target exists).
    """

    required_states: Tuple[str, ...] = ()
    token_state: str = ""
    ttl: Optional[int] = None

    def __post_init__(self):
        super().__post_init__()
        if not self.token_state:
            raise ValueError("token_state is required")
        if self.ttl is not None and self.ttl < 1:
            raise ValueError(f"ttl must be >= 1 or None, got {self.ttl}")

    def describe(self) -> str:
        targets = ", ".join(self.required_states) or "none"
        route = "membership oracle" if self.ttl is None else f"random walk (TTL {self.ttl})"
        return (
            f"[{self.actor_state}] sample ({targets}); on match + heads "
            f"(prob {self.probability:g}) send token via {route} to a process in "
            f"{self.token_state}, which -> {self.target_state}"
        )

    @property
    def messages_per_period(self) -> int:
        # Sampling messages; token forwarding counted separately by engines.
        return len(self.required_states)

    def mean_rate(self, fractions: Mapping[str, float]) -> float:
        rate = self.probability * fractions[self.actor_state]
        for state in self.required_states:
            rate *= fractions[state]
        if self.ttl is not None:
            rate *= 1.0 - (1.0 - fractions[self.token_state]) ** self.ttl
        # Oracle delivery: succeeds whenever any target exists; in mean
        # field (fractions > 0) that is probability ~1.
        return rate


def transition_edges(action: Action) -> Tuple[Tuple[str, str], ...]:
    """The (from_state, to_state) edges an action can cause."""
    if isinstance(action, PushAction):
        return ((action.match_state, action.target_state),)
    if isinstance(action, TokenizeAction):
        return ((action.token_state, action.target_state),)
    return ((action.actor_state, action.target_state),)
