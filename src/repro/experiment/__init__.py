"""repro.experiment: the declarative equations-to-results facade.

The paper's promise is *equations in, protocol out*.  This package is
the single public API that delivers it end to end, over every engine
tier the runtime provides:

* :class:`~repro.experiment.protocol.Protocol` -- one handle for the
  three ways protocols come into existence: parsed+synthesized from
  equations (:meth:`Protocol.from_equations`), resolved from the
  campaign registry (:meth:`Protocol.named`), or wrapped around a
  hand-built spec (:meth:`Protocol.from_spec`).
* :class:`~repro.experiment.scenario.Scenario` -- one fault-injection
  contract normalized across the engines' divergent hook conventions.
* :class:`~repro.experiment.experiment.Experiment` -- the runner:
  selects the engine tier (serial for ``trials == 1``, batch
  otherwise, lockstep on demand) and executes.
* :class:`~repro.experiment.result.ExperimentResult` -- one result
  surface subsuming ``RunResult`` / ``BatchRunResult`` /
  ``BatchMetricsRecorder`` access: count tensors, reducers, transition
  tensors, and the equilibrium comparison against the source ODE.

Quickstart::

    from repro.experiment import Experiment, Protocol

    protocol = Protocol.from_equations("examples/endemic.txt")
    result = Experiment(protocol, n=10_000, trials=16, periods=200,
                        seed=7).run()
    print(result.render_summary())
    print(result.equilibrium_check().render())

Command line::

    python -m repro run examples/endemic.txt --n 10000 --trials 16
    python -m repro run endemic --n 10000 --trials 16 \
        --scenario massive-failure
"""

from .experiment import ENGINES, Experiment
from .protocol import Protocol, ResolvedProtocol, parse_param_directives
from .result import EquilibriumCheck, EquilibriumCheckRow, ExperimentResult
from .scenario import RunContext, Scenario

__all__ = [
    "Experiment",
    "ExperimentResult",
    "Protocol",
    "ResolvedProtocol",
    "Scenario",
    "RunContext",
    "EquilibriumCheck",
    "EquilibriumCheckRow",
    "ENGINES",
    "parse_param_directives",
]
