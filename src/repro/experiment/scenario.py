"""One scenario contract over every engine tier.

The runtime grew two hook conventions: :class:`~repro.runtime.round_engine.RoundEngine`
takes a flat list of per-period hooks (``hook(engine)``), while
:class:`~repro.runtime.batch_engine.BatchRoundEngine` takes *hook
factories* (``factory(trial) -> hook(view)``), and the campaign
registry adds a third (``builder(point, trial, seed) -> hooks``).  A
:class:`Scenario` normalizes all of them: it produces the per-trial
hook list for a run context, with scenario randomness drawn from a
seed family domain-separated from the engines' protocol streams (the
same family the campaign runner uses, so an
:class:`~repro.experiment.experiment.Experiment` and a campaign point
with identical parameters inject identical faults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

#: A per-trial hook list builder: ``(context, trial, seed) -> hooks``.
#: ``context`` duck-types a campaign point (``n``, ``trials``,
#: ``periods``, ``seed``, ``loss_rate``, ``scenario``...).
TrialHooksBuilder = Callable[[object, int, int], List[Callable]]


@dataclass(frozen=True)
class RunContext:
    """The campaign-point-shaped description of one experiment run.

    Scenario builders (including every registry scenario) receive this
    as their ``point`` argument; it carries exactly the fields they
    read.  ``protocol`` and ``scenario`` are labels, not objects, so a
    context is plain data.
    """

    protocol: str
    n: int
    loss_rate: float
    scenario: str
    trials: int
    periods: int
    seed: int
    stride: int = 1
    mode: str = "batch"

    @property
    def label(self) -> str:
        return (
            f"{self.protocol}/n={self.n}/f={self.loss_rate:g}/{self.scenario}"
        )


class Scenario:
    """A named or custom failure scenario, engine-agnostic.

    Use :meth:`named` for registry scenarios (``massive-failure``,
    ``crash-recovery``, ``churn``, ...), :meth:`from_trial_hooks` for a
    quick per-trial factory, or construct directly with a full
    ``(context, trial, seed) -> hooks`` builder.
    """

    def __init__(self, label: str, builder: TrialHooksBuilder):
        self.label = label
        self._builder = builder

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Scenario({self.label!r})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def named(cls, name: str) -> "Scenario":
        """A scenario from the campaign registry, by name."""
        # Lazy import: the campaign package imports repro.experiment.
        from ..campaign.registry import scenario_builder

        return cls(name, scenario_builder(name))

    @classmethod
    def from_trial_hooks(
        cls,
        factory: Callable[[int], Union[Callable, Sequence[Callable]]],
        label: str = "custom",
    ) -> "Scenario":
        """Wrap a plain per-trial hook factory (the batch-engine idiom).

        ``factory(trial)`` returns one hook or a sequence of hooks;
        stateful stock hooks must be constructed fresh per call, as for
        :meth:`BatchRoundEngine.run`'s ``hook_factories``.
        """

        def builder(context, trial, seed):
            hooks = factory(trial)
            if callable(hooks):
                return [hooks]
            return list(hooks)

        return cls(label, builder)

    @classmethod
    def normalize(
        cls, scenario: Union[None, str, "Scenario", Callable]
    ) -> Optional["Scenario"]:
        """Coerce the ``Experiment(scenario=...)`` argument.

        Accepts None (no faults), a registry name, a ready
        :class:`Scenario`, or a per-trial hook factory.
        """
        if scenario is None:
            return None
        if isinstance(scenario, Scenario):
            return scenario
        if isinstance(scenario, str):
            return cls.named(scenario)
        if callable(scenario):
            return cls.from_trial_hooks(scenario)
        raise TypeError(
            f"scenario must be None, a name, a Scenario or a per-trial "
            f"hook factory, got {type(scenario).__name__}"
        )

    # ------------------------------------------------------------------
    # Hook production
    # ------------------------------------------------------------------
    def trial_seeds(self, context: RunContext) -> List[int]:
        """The domain-separated scenario seed family for a context."""
        from ..campaign.registry import scenario_seeds

        return scenario_seeds(context.seed, context.trials)

    def hooks_for(self, context: RunContext, trial: int, seed: int) -> List[Callable]:
        """Fresh hooks for one trial (hooks are stateful; never reuse)."""
        return list(self._builder(context, trial, seed))

    def hook_factory(self, context: RunContext) -> Callable[[int], Callable]:
        """A batch-engine ``hook_factories`` entry for this scenario.

        Returns one composite hook per trial, so multi-hook scenarios
        fit the single-factory slot.  The factory is a plain object
        (not a closure), so named scenarios can cross process
        boundaries -- :class:`~repro.runtime.parallel.ShardedBatchExecutor`
        ships it to pool workers whenever the underlying builder
        pickles (registry builders are module-level functions and do).
        """
        return ScenarioHookFactory(self, context)


class _CompositeHook:
    """One per-trial hook running a scenario's hook list in order."""

    def __init__(self, hooks: List[Callable]):
        self._hooks = hooks

    def __call__(self, view) -> None:
        for hook in self._hooks:
            hook(view)


class ScenarioHookFactory:
    """Picklable per-trial hook factory for one scenario + context.

    Trial indices are *global* (0..trials-1): the scenario seed family
    is derived once from the context, so the hooks a trial receives are
    identical whether the ensemble runs in one engine or sharded
    across processes.
    """

    def __init__(self, scenario: Scenario, context: RunContext):
        self._scenario = scenario
        self._context = context
        self._seeds = scenario.trial_seeds(context)

    def __call__(self, trial: int) -> Callable:
        return _CompositeHook(
            self._scenario.hooks_for(
                self._context, trial, self._seeds[trial]
            )
        )
