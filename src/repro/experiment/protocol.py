"""Protocol handles: one way to hold "a protocol plus how to start it".

Before this module existed a protocol could come into existence three
ways, each with its own calling convention:

* parse an equations file and run it through ``odes.parser`` ->
  ``odes.rewrite`` -> ``synthesis.synthesize`` by hand;
* look a name up in the campaign registry and call the builder, getting
  a raw ``(spec, initial)`` tuple back;
* construct a :class:`~repro.synthesis.protocol.ProtocolSpec` directly
  (the ``repro.protocols`` case studies) and carry the initial
  distribution around separately.

A :class:`Protocol` unifies them: however it was created, it resolves
to a ``(spec, initial counts)`` pair for a concrete group size via
:meth:`Protocol.resolve`, and knows the analytic equilibrium the
source equations predict (the reference for
:meth:`~repro.experiment.result.ExperimentResult.equilibrium_check`).

Equations files may embed default parameter bindings as directives::

    # param: beta = 4  gamma = 0.5
    x' = -beta*x*y + ...

so that ``python -m repro run equations.txt`` works with no flags;
explicit ``parameters`` (CLI ``--param``) override file directives.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Union

from ..odes import auto_rewrite, classify, find_equilibria, parse_system
from ..odes.system import EquationSystem
from ..synthesis import synthesize
from ..synthesis.protocol import ProtocolSpec

#: ``# param: name = value [name = value ...]`` directive lines in an
#: equations file.  The colon is optional, but only the explicit
#: ``# param:`` form is *required* to parse -- a colon-less line whose
#: body is not a clean binding list is an ordinary comment that merely
#: starts with the word "param", not a malformed directive.
_PARAM_DIRECTIVE = re.compile(
    r"^\s*#\s*param(?P<colon>:)?\s+(?P<body>.+)$", re.IGNORECASE
)
_BINDING = re.compile(
    r"(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*"
    r"(?P<value>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)"
)


def parse_param_directives(text: str) -> Dict[str, float]:
    """Extract ``# param: name=value`` bindings from equations text."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        match = _PARAM_DIRECTIVE.match(line)
        if not match:
            continue
        body = match.group("body")
        bindings = _BINDING.findall(body)
        leftover = _BINDING.sub("", body).replace(",", "").strip()
        if not bindings or leftover:
            if match.group("colon"):
                raise ValueError(
                    f"malformed param directive {line.strip()!r}; expected "
                    f"'# param: name = value [name = value ...]'"
                )
            continue
        for name, value in bindings:
            out[name] = float(value)
    return out


@dataclass(frozen=True)
class ResolvedProtocol:
    """A protocol pinned to a concrete group size: ready to run."""

    spec: ProtocolSpec
    #: Initial distribution as counts summing to ``n`` (or fractions
    #: summing to 1 -- both forms are accepted by every engine).
    initial: Mapping[str, float]
    n: int


class Protocol:
    """A handle on a protocol, however it came into existence.

    Construct with one of the three classmethods --
    :meth:`from_equations`, :meth:`named`, :meth:`from_spec` -- then
    hand it to :class:`~repro.experiment.experiment.Experiment` (or
    call :meth:`resolve` yourself to get the raw ``(spec, initial)``).
    """

    def __init__(
        self,
        label: str,
        resolver: Callable[[int], ResolvedProtocol],
        *,
        source: str,
        system: Optional[EquationSystem] = None,
    ):
        self.label = label
        #: How the handle was made: ``"equations"``, ``"named"`` or
        #: ``"spec"``.
        self.source = source
        self._resolver = resolver
        self._system = system
        self._resolved: Dict[int, ResolvedProtocol] = {}
        self._verified: Dict[int, list] = {}
        self._equilibrium: Optional[Dict[str, float]] = None
        self._equilibrium_known = False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Protocol({self.label!r}, source={self.source!r})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_equations(
        cls,
        source: Union[str, Path],
        *,
        parameters: Optional[Mapping[str, float]] = None,
        p: Optional[float] = None,
        failure_rate: float = 0.0,
        tokenize: bool = True,
        rewrite: bool = True,
        initial: Optional[Mapping[str, float]] = None,
        name: Optional[str] = None,
        check: str = "warn",
    ) -> "Protocol":
        """Parse + (auto-rewrite) + synthesize an equations text or file.

        ``source`` is either equation text or a path to an equations
        file (one equation per line; ``# param:`` directives supply
        default rate bindings, overridden by ``parameters``).  When the
        parsed system is not directly mappable and ``rewrite`` is true,
        the Section 7 ``auto_rewrite`` pipeline is applied first.

        ``initial`` fixes the starting distribution (counts or
        fractions over the *synthesized* states).  Without it the
        protocol starts at the system's stable equilibrium when one
        exists (the paper's experimental convention), else with the
        whole group in the first state and one process in the second.

        ``check`` runs the :mod:`repro.check` spec verifier on the
        synthesized result: ``"warn"`` (default) emits a
        ``ProtocolCheckWarning`` on ERROR-severity findings,
        ``"strict"`` raises ``SpecCheckError``, ``"off"`` skips it.
        """
        path: Optional[Path] = None
        if isinstance(source, Path):
            path = source
        elif "\n" not in source and "'" not in source:
            try:
                if Path(source).is_file():
                    path = Path(source)
            except (OSError, ValueError):
                path = None
        text = path.read_text() if path is not None else str(source)
        bound = parse_param_directives(text)
        bound.update(parameters or {})
        label = name or (path.stem if path is not None else "equations")
        system = parse_system(text, parameters=bound, name=label)
        if rewrite and not classify(system).mappable:
            system = auto_rewrite(system)
        spec = synthesize(
            system, p=p, failure_rate=failure_rate, tokenize=tokenize,
            name=label,
        )
        if check != "off":
            from ..check import verify_spec

            verify_spec(spec, system, mode=check, label=label)
        explicit = dict(initial) if initial is not None else None

        def resolver(n: int) -> ResolvedProtocol:
            if explicit is not None:
                return ResolvedProtocol(spec=spec, initial=explicit, n=n)
            handle_initial = handle.equilibrium_fractions()
            if handle_initial is None:
                first, second = spec.states[0], spec.states[1]
                handle_initial = {first: n - 1, second: 1}
            return ResolvedProtocol(spec=spec, initial=handle_initial, n=n)

        handle = cls(label, resolver, source="equations", system=system)
        return handle

    @classmethod
    def named(cls, name: str) -> "Protocol":
        """Resolve a campaign-registry protocol name to a handle.

        The registry's builders take the group size, so resolution is
        deferred until :meth:`resolve` is called with a concrete ``n``.
        """
        # Imported lazily: repro.campaign imports this module's
        # Protocol for its own resolution path.
        from ..campaign.registry import protocol_builder

        builder = protocol_builder(name)  # fail fast on unknown names

        def resolver(n: int) -> ResolvedProtocol:
            spec, initial = builder(n)
            return ResolvedProtocol(spec=spec, initial=initial, n=n)

        return cls(name, resolver, source="named")

    @classmethod
    def from_spec(
        cls,
        spec: ProtocolSpec,
        initial: Mapping[str, float],
        *,
        name: Optional[str] = None,
    ) -> "Protocol":
        """Wrap a hand-built spec plus its initial distribution."""
        fixed = dict(initial)

        def resolver(n: int) -> ResolvedProtocol:
            return ResolvedProtocol(spec=spec, initial=fixed, n=n)

        return cls(
            name or spec.name, resolver, source="spec", system=spec.source
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, n: int) -> ResolvedProtocol:
        """The ``(spec, initial counts)`` pair for a group of size ``n``."""
        got = self._resolved.get(n)
        if got is None:
            got = self._resolver(n)
            self._resolved[n] = got
        return got

    def verify(self, n: int, *, mode: str = "warn") -> list:
        """Statically verify the resolved spec (``repro.check`` rules).

        ``mode`` is ``"warn"`` (emit one ``ProtocolCheckWarning`` on
        ERROR findings), ``"strict"`` (raise
        :class:`repro.check.SpecCheckError`) or ``"off"``.  Findings
        are cached per group size, so repeated experiments on one
        handle check once.
        """
        if mode == "off":
            return []
        cached = self._verified.get(n)
        if cached is None:
            from ..check import verify_spec

            cached = verify_spec(
                self.resolve(n).spec, mode=mode, label=self.label,
            )
            self._verified[n] = cached
        elif mode == "strict":
            from ..check import SpecCheckError, error_findings

            if error_findings(cached):
                raise SpecCheckError(cached, label=self.label)
        return cached

    def system(self, n: int = 2) -> Optional[EquationSystem]:
        """The mean-field ODE behind the protocol.

        The source equations when the handle was built from them (or
        the spec carries them); otherwise the spec's reconstructed
        mean-field system.  ``n`` is only used to resolve the spec for
        registry-named handles.
        """
        if self._system is not None:
            return self._system
        spec = self.resolve(n).spec
        if spec.source is not None:
            return spec.source
        try:
            return spec.mean_field_system(effective=False)
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Analytic equilibrium (the closed-form reference)
    # ------------------------------------------------------------------
    def equilibrium_fractions(self, n: int = 2) -> Optional[Dict[str, float]]:
        """Stable-equilibrium fractions of the source ODE, if any.

        When the system has several stable equilibria the one closest
        to the simplex barycenter is returned (``find_equilibria``
        order).  None when no stable equilibrium exists on the simplex
        or no mean-field system is recoverable.
        """
        if self._equilibrium_known:
            return self._equilibrium
        self._equilibrium_known = True
        system = self.system(n)
        if system is not None:
            try:
                stable = [e for e in find_equilibria(system) if e.is_stable]
            except Exception:
                stable = []
            if stable:
                self._equilibrium = {
                    k: float(v) for k, v in stable[0].point.items()
                }
        return self._equilibrium

    def equilibrium_counts(self, n: int) -> Optional[Dict[str, float]]:
        """Stable-equilibrium state counts for a group of size ``n``.

        Only states of the resolved spec are reported (a rewrite can
        introduce slack variables; those are included -- they are real
        protocol states -- but equation variables dropped by a rewrite
        are not).
        """
        fractions = self.equilibrium_fractions(n)
        if fractions is None:
            return None
        states = self.resolve(n).spec.states
        return {s: fractions.get(s, 0.0) * n for s in states}
