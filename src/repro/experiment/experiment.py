"""The declarative equations-to-results runner.

:class:`Experiment` is the canonical way to run a protocol: give it a
:class:`~repro.experiment.protocol.Protocol` handle (or a registry
name), a group size, a trial count and a horizon, and it picks the
right engine tier, wires the scenario hooks into that tier's
convention, and returns one
:class:`~repro.experiment.result.ExperimentResult` whatever ran
underneath.

Engine auto-selection (``engine="auto"``):

* ``trials == 1`` -> the **serial** :class:`RoundEngine` (single-run
  studies, and anything whose hooks must see a real engine);
* ``trials > 1`` -> the **batch** :class:`BatchRoundEngine` in its
  vectorized mode (ensembles: means, quantile bands, frequencies).

Explicit tiers: ``engine="serial"`` runs ``trials`` seeded
:class:`RoundEngine` instances (seeds from
:func:`~repro.runtime.rng.spawn_seeds`); ``engine="lockstep"`` runs
the batch engine's lockstep mode, which is *bit-identical* to the
serial tier trial for trial (the validation bridge);
``engine="batch"`` forces the vectorized mode (statistically
equivalent, not draw-for-draw); ``engine="agent"`` runs ``trials``
seeded :class:`AgentSimulation` instances -- the asynchronous DES tier
(arbitrary period phases, latency, drift), as an ensemble with the
*same* spawned trial-seed family as the serial tier, pooled across
``workers`` processes via
:class:`~repro.runtime.parallel.AgentEnsemble`.
"""

from __future__ import annotations

import secrets
import time
from typing import Mapping, Optional, Union

from ..runtime.batch_engine import BatchMetricsRecorder, BatchRoundEngine
from ..runtime.exec import BACKENDS, FaultPolicy
from ..runtime.metrics import MetricsRecorder
from ..runtime.parallel import AgentEnsemble, ShardedBatchExecutor
from ..runtime.round_engine import RoundEngine
from ..runtime.rng import spawn_seeds
from .protocol import Protocol
from .result import ExperimentResult
from .scenario import RunContext, Scenario

ENGINES = ("auto", "serial", "batch", "lockstep", "agent")


class Experiment:
    """A fully-specified protocol run: who, how large, how long, under what.

    Parameters
    ----------
    protocol:
        A :class:`Protocol` handle or a campaign-registry name.
    n:
        Group size per trial.
    trials:
        Ensemble width M (default 1).
    periods:
        Protocol periods per trial.
    scenario:
        Fault injection: ``None``, a registry scenario name, a
        :class:`Scenario`, or a per-trial hook factory.
    seed:
        Root seed.  Serial and lockstep engines spawn per-trial seeds
        from it, so their trials agree bit for bit; scenario seeds come
        from a domain-separated family (campaign-compatible).  ``None``
        draws a fresh root seed, recorded on :attr:`seed`, so every
        run -- including its fault injection -- remains reproducible
        after the fact.
    engine:
        ``"auto"`` (default), ``"serial"``, ``"batch"`` or
        ``"lockstep"``; see the module docstring.
    loss_rate:
        Per-connection failure probability (Section 3's ``f``).
    stride:
        Record every ``stride``-th period.
    record_transitions:
        Keep per-edge transition tensors (default True).
    member_log_state:
        Record per-period member ids of one state (the Figure 8 log).
    initial:
        Override the protocol handle's initial distribution (counts
        summing to ``n`` or fractions summing to 1).
    workers:
        Processes to fan the trial axis across (default 1).  With
        ``workers > 1`` the batch/lockstep tiers run through
        :class:`~repro.runtime.parallel.ShardedBatchExecutor`: the
        trials split into ``min(workers, trials)`` campaign-style
        shards (seed family spawned from ``(seed, SHARD_DOMAIN)``) and
        the recorders merge integer-exactly, so a sharded run is
        bitwise reproducible for a fixed ``(seed, workers)`` and
        identical whether the shards actually ran pooled or serially.
        Note the *shard count* is part of the stream identity: results
        differ from the unsharded ``workers=1`` run (exactly as
        campaign ``--shards`` documents).  The agent tier fans whole
        trials across the pool (each trial owns its RNG stream, so the
        result is bitwise independent of ``workers``, clamped to
        ``trials``).  The serial tier ignores it.
    on_error, retries, unit_timeout:
        The execution layer's fault policy
        (:class:`~repro.runtime.exec.FaultPolicy`), applied wherever
        the run decomposes into work units (the agent tier, and the
        batch/lockstep tiers with ``workers > 1``).  ``on_error``:
        ``"raise"`` (default) aborts on the first unit failure,
        ``"retry"`` re-runs a failed unit's exact payload up to
        ``retries`` times with capped backoff (retries cannot perturb
        seeds or merge order, so a retried run is bitwise identical to
        a clean one), ``"skip"`` keeps the surviving units and records
        the losses on :attr:`ExperimentResult.failures`.
        ``unit_timeout`` bounds each attempt's wall clock in seconds.
    fault_policy:
        A fully-built :class:`~repro.runtime.exec.FaultPolicy`
        overriding the three convenience knobs above -- the way to
        reach the cluster backend's heartbeat interval/miss-threshold
        and re-dispatch budget.
    backend:
        Executor backend for every work-unit fan-out
        (:data:`~repro.runtime.exec.BACKENDS`): ``"pool"`` (default)
        keeps the local process pool; ``"cluster"`` runs socket-
        connected worker processes with heartbeats, dead-worker
        re-dispatch and elastic worker counts -- results are bitwise
        identical either way (plan contract clause 5).  With
        ``backend="cluster"`` the batch/lockstep tiers route through
        the sharded executor even at ``workers=1`` (a single shard
        keeps the root seed, so results still match the unsharded
        run bit for bit).
    """

    def __init__(
        self,
        protocol: Union[Protocol, str],
        n: int,
        *,
        trials: int = 1,
        periods: int = 100,
        scenario: Union[None, str, Scenario] = None,
        seed: Optional[int] = None,
        engine: str = "auto",
        loss_rate: float = 0.0,
        stride: int = 1,
        record_transitions: bool = True,
        member_log_state: Optional[str] = None,
        initial: Optional[Mapping[str, float]] = None,
        workers: int = 1,
        on_error: str = "raise",
        retries: int = 2,
        unit_timeout: Optional[float] = None,
        fault_policy: Optional[FaultPolicy] = None,
        backend: str = "pool",
        check: str = "warn",
    ):
        if isinstance(protocol, str):
            protocol = Protocol.named(protocol)
        if not isinstance(protocol, Protocol):
            raise TypeError(
                f"protocol must be a Protocol handle or a registry name, "
                f"got {type(protocol).__name__}; wrap raw specs with "
                f"Protocol.from_spec(spec, initial)"
            )
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if periods < 1:
            raise ValueError(f"periods must be >= 1, got {periods}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self.protocol = protocol
        self.n = n
        self.trials = trials
        self.periods = periods
        self.scenario = Scenario.normalize(scenario)
        # An unseeded run still gets a *concrete* root seed: protocol
        # and scenario streams must derive from the same root (the
        # scenario family is spawned from it), and recording it is the
        # only way an unseeded run can be replayed afterwards.
        self.seed = seed if seed is not None else secrets.randbits(63)
        self.engine = engine
        self.loss_rate = loss_rate
        self.stride = stride
        self.record_transitions = record_transitions
        self.member_log_state = member_log_state
        self.initial = dict(initial) if initial is not None else None
        self.workers = workers
        if check not in ("off", "warn", "strict"):
            raise ValueError(
                f"check must be 'off', 'warn' or 'strict', got {check!r}"
            )
        #: Static spec verification mode applied at :meth:`run` time
        #: (``repro.check``): warn on ERROR findings by default,
        #: ``"strict"`` raises, ``"off"`` skips.
        self.check = check
        # Constructing the policy up front validates on_error/retries/
        # unit_timeout with FaultPolicy's own error messages; a
        # fully-built policy (heartbeat tuning, dispatch budget) wins
        # over the convenience knobs.
        self.fault_policy = (
            fault_policy if fault_policy is not None else FaultPolicy(
                on_error=on_error,
                retries=retries,
                timeout_seconds=unit_timeout,
            )
        )

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------
    @property
    def chosen_engine(self) -> str:
        """The tier that will run: auto resolves to serial or batch."""
        if self.engine != "auto":
            return self.engine
        return "serial" if self.trials == 1 else "batch"

    def context(self) -> RunContext:
        """The campaign-point-shaped description of this run."""
        return RunContext(
            protocol=self.protocol.label,
            n=self.n,
            loss_rate=self.loss_rate,
            scenario=self.scenario.label if self.scenario else "none",
            trials=self.trials,
            periods=self.periods,
            seed=self.seed,
            stride=self.stride,
            mode=self.chosen_engine,
        )

    # ------------------------------------------------------------------
    # Forking off a live population (the service tier's what-if hook)
    # ------------------------------------------------------------------
    @classmethod
    def from_live(
        cls,
        live,
        *,
        trials: int,
        periods: int,
        seed: Optional[int] = None,
        **kwargs,
    ) -> "Experiment":
        """Fork a batch what-if ensemble off a live population.

        ``live`` is anything with a ``fork_state()`` returning the
        :class:`repro.service.live.LiveEngine` fork recipe (protocol
        name, alive count, current census, loss rate) -- duck-typed so
        the experiment layer stays import-independent of the service
        tier.  The ensemble asks "starting from the population as it
        stands *right now*, what do ``trials`` independent futures look
        like?", using the ordinary batch fan-out underneath.
        """
        fork = live.fork_state()
        if fork["n"] < 2:
            raise ValueError(
                f"live population too small to fork "
                f"(alive={fork['n']}, need >= 2)"
            )
        return cls(
            fork["protocol"],
            fork["n"],
            trials=trials,
            periods=periods,
            seed=seed,
            loss_rate=fork["loss_rate"],
            initial=fork["initial"],
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the experiment on the selected engine tier."""
        resolved = self.protocol.resolve(self.n)
        self.protocol.verify(self.n, mode=self.check)
        initial = self.initial if self.initial is not None else resolved.initial
        engine_name = self.chosen_engine
        started = time.perf_counter()
        if engine_name == "serial":
            result = self._run_serial(resolved.spec, initial)
        elif engine_name == "agent":
            result = self._run_agent(resolved.spec, initial)
        else:
            result = self._run_batched(resolved.spec, initial, engine_name)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _run_serial(self, spec, initial) -> ExperimentResult:
        context = self.context()
        seeds = spawn_seeds(self.seed, self.trials)
        scenario_seeds = (
            self.scenario.trial_seeds(context) if self.scenario else None
        )
        recorders = []
        for trial, trial_seed in enumerate(seeds):
            engine = RoundEngine(
                spec, n=self.n, initial=initial, seed=trial_seed,
                connection_failure_rate=self.loss_rate,
            )
            recorder = MetricsRecorder(
                spec.states,
                track_transitions=self.record_transitions,
                member_log_state=self.member_log_state,
                stride=self.stride,
            )
            hooks = (
                self.scenario.hooks_for(context, trial, scenario_seeds[trial])
                if self.scenario else ()
            )
            engine.run(self.periods, recorder=recorder, hooks=hooks)
            recorders.append(recorder)
        return ExperimentResult(
            spec=spec, n=self.n, trials=self.trials, periods=self.periods,
            engine="serial", trial_seeds=list(seeds), elapsed_seconds=0.0,
            protocol=self.protocol,
            scenario=self.scenario.label if self.scenario else None,
            trial_recorders=recorders,
        )

    def _run_agent(self, spec, initial) -> ExperimentResult:
        """The asynchronous DES tier, as a (possibly pooled) ensemble.

        Trial seeds are ``spawn_seeds(seed, trials)`` -- the serial
        tier's own family -- and scenario hooks are indexed by global
        trial through the same domain-separated
        :class:`~repro.experiment.scenario.Scenario` contract, so an
        asynchrony check of a batch result keeps the batch run's fault
        schedule.  The tier exposes the round engines' fault surface
        (period, crash/recover, read-only alive/states snapshots), so
        the stock registry scenarios apply; hooks that write engine
        arrays directly do not (see :meth:`AgentSimulation.run`).
        """
        if self.member_log_state is not None:
            raise ValueError(
                "member_log_state is not supported on the agent tier"
            )
        context = self.context()
        hook_factories = (
            [self.scenario.hook_factory(context)] if self.scenario else ()
        )
        ensemble = AgentEnsemble(
            spec, n=self.n, trials=self.trials, initial=initial,
            seed=self.seed, loss_rate=self.loss_rate,
            workers=self.workers, backend=self.backend,
        )
        outcome = ensemble.run(
            self.periods,
            stride=self.stride,
            track_transitions=self.record_transitions,
            hook_factories=hook_factories,
            fault_policy=self.fault_policy,
        )
        return ExperimentResult(
            spec=spec, n=self.n, trials=len(outcome.trial_seeds),
            periods=self.periods,
            engine="agent", trial_seeds=list(outcome.trial_seeds),
            elapsed_seconds=0.0,
            protocol=self.protocol,
            scenario=self.scenario.label if self.scenario else None,
            trial_recorders=outcome.recorders,
            failures=outcome.failures,
        )

    def _run_batched(self, spec, initial, engine_name: str) -> ExperimentResult:
        context = self.context()
        mode = engine_name if engine_name == "lockstep" else "batch"
        hook_factories = (
            [self.scenario.hook_factory(context)] if self.scenario else ()
        )
        shards = min(self.workers, self.trials)
        # The cluster backend always routes through the sharded
        # executor (even at shards == 1, which keeps the root seed and
        # is bitwise-equal to the unsharded engine), so process
        # isolation and re-dispatch apply at any worker count.
        if shards > 1 or self.backend != "pool":
            executor = ShardedBatchExecutor(
                spec, n=self.n, trials=self.trials, initial=initial,
                seed=self.seed,
                connection_failure_rate=self.loss_rate,
                mode=mode, shards=shards, workers=self.workers,
                backend=self.backend,
            )
            outcome = executor.run(
                self.periods,
                stride=self.stride,
                track_transitions=self.record_transitions,
                member_log_state=self.member_log_state,
                hook_factories=hook_factories,
                fault_policy=self.fault_policy,
            )
            return ExperimentResult(
                spec=spec, n=self.n, trials=len(outcome.trial_seeds),
                periods=self.periods,
                engine=engine_name, trial_seeds=list(outcome.trial_seeds),
                elapsed_seconds=0.0,
                protocol=self.protocol,
                scenario=self.scenario.label if self.scenario else None,
                recorder=outcome.recorder,
                shards=shards,
                failures=outcome.failures,
            )
        engine = BatchRoundEngine(
            spec, n=self.n, trials=self.trials, initial=initial,
            seed=self.seed, connection_failure_rate=self.loss_rate,
            mode=mode,
        )
        recorder = BatchMetricsRecorder(
            spec.states, self.trials,
            track_transitions=self.record_transitions,
            member_log_state=self.member_log_state,
            stride=self.stride,
        )
        engine.run(
            self.periods, recorder=recorder, hook_factories=hook_factories
        )
        return ExperimentResult(
            spec=spec, n=self.n, trials=self.trials, periods=self.periods,
            engine=engine_name, trial_seeds=list(engine.trial_seeds),
            elapsed_seconds=0.0,
            protocol=self.protocol,
            scenario=self.scenario.label if self.scenario else None,
            recorder=recorder,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Experiment({self.protocol.label!r}, n={self.n}, "
            f"trials={self.trials}, periods={self.periods}, "
            f"engine={self.engine!r})"
        )
