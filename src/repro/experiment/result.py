"""One result type for every engine tier.

An :class:`ExperimentResult` subsumes the three result surfaces the
engines expose (:class:`~repro.runtime.round_engine.RunResult`,
:class:`~repro.runtime.batch_engine.BatchRunResult` and direct
:class:`~repro.runtime.batch_engine.BatchMetricsRecorder` access):
whatever engine ran, the result is an ``(M, periods, states)`` count
tensor with the usual reducers, per-trial final counts, transition
tensors, and an equilibrium comparison against the protocol's source
ODE (via :mod:`repro.analysis.mean_field`'s window statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.exec import UnitFailure
from ..runtime.metrics import MetricsRecorder, WindowStats
from ..runtime.batch_engine import BatchMetricsRecorder
from ..synthesis.protocol import ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .protocol import Protocol

Edge = Tuple[str, str]

#: Default equilibrium-check tolerances on the pooled window median:
#: relative error below PASS_TOL passes, below WARN_TOL warns, above
#: fails.  Gated states must hold at least GATE_FRACTION of the group
#: at equilibrium (tiny populations are reported but not gated -- a
#: 5-host state's median is shot noise, not a verdict).
PASS_TOL = 0.10
WARN_TOL = 0.25
GATE_FRACTION = 0.01


@dataclass(frozen=True)
class EquilibriumCheckRow:
    """One state's analytic-vs-measured equilibrium comparison."""

    state: str
    analytic: float
    stats: WindowStats
    gated: bool

    @property
    def relative_error(self) -> float:
        if self.analytic == 0:
            return float("nan")
        return abs(self.stats.median - self.analytic) / self.analytic


def _worst_gated(rows) -> Optional["EquilibriumCheckRow"]:
    """The gated row with the largest relative error (None if none gated).

    The single definition behind both the check's verdict and its
    rendering, so the printed worst error always matches the status.
    """
    gated = [r for r in rows if r.gated]
    if not gated:
        return None
    return max(gated, key=lambda r: r.relative_error)


@dataclass(frozen=True)
class EquilibriumCheck:
    """Ensemble window statistics vs the closed-form ODE equilibrium.

    ``status`` is ``"PASS"``/``"WARN"``/``"FAIL"`` on the worst gated
    state's relative error, or ``"SKIP"`` when the source system has no
    stable equilibrium to compare against (or none was recoverable).
    """

    status: str
    rows: Tuple[EquilibriumCheckRow, ...]
    window_periods: int
    trials: int
    pass_tol: float = PASS_TOL
    warn_tol: float = WARN_TOL

    @property
    def worst(self) -> Optional[EquilibriumCheckRow]:
        return _worst_gated(self.rows)

    def render(self) -> str:
        from ..viz import format_table

        if self.status == "SKIP":
            return ("equilibrium check: SKIP "
                    "(no stable closed-form equilibrium to compare against)")
        lines = [
            f"equilibrium check vs closed-form ODE equilibrium "
            f"(window: last {self.window_periods} recorded periods "
            f"x {self.trials} trials, pooled):",
            format_table(
                ["state", "analytic", "median", "min", "max", "rel. error",
                 "gated"],
                [
                    (
                        row.state,
                        f"{row.analytic:.1f}",
                        f"{row.stats.median:g}",
                        f"{row.stats.minimum:g}",
                        f"{row.stats.maximum:g}",
                        "-" if np.isnan(row.relative_error)
                        else f"{row.relative_error:.1%}",
                        "yes" if row.gated else "no",
                    )
                    for row in self.rows
                ],
            ),
        ]
        worst = self.worst
        if worst is None:
            lines.append(
                f"equilibrium check: {self.status} (no state large enough "
                f"to gate on)")
        else:
            lines.append(
                f"equilibrium check: {self.status} (worst gated relative "
                f"error {worst.relative_error:.1%} on {worst.state!r}; "
                f"PASS <= {self.pass_tol:.0%}, WARN <= {self.warn_tol:.0%})"
            )
        return "\n".join(lines)


class ExperimentResult:
    """Unified outcome of an :class:`~repro.experiment.experiment.Experiment`.

    Whatever engine tier ran, the accessors are those of the batched
    recorder: ``(M, periods)`` per-state count series, ``(M, periods,
    S)`` tensors, trial-axis reducers, per-trial final counts and
    transition tensors.  ``recorder`` exposes the underlying
    :class:`BatchMetricsRecorder` (batch/lockstep engines) and
    ``trial_recorders`` the per-trial :class:`MetricsRecorder` list
    (serial engine); both remain available for code written against the
    old surfaces.
    """

    def __init__(
        self,
        *,
        spec: ProtocolSpec,
        n: int,
        trials: int,
        periods: int,
        engine: str,
        trial_seeds: Sequence[int],
        elapsed_seconds: float,
        protocol: Optional["Protocol"] = None,
        scenario: Optional[str] = None,
        recorder: Optional[BatchMetricsRecorder] = None,
        trial_recorders: Optional[List[MetricsRecorder]] = None,
        shards: int = 1,
        failures: Optional[Sequence[UnitFailure]] = None,
    ):
        if (recorder is None) == (trial_recorders is None):
            raise ValueError(
                "exactly one of recorder / trial_recorders is required"
            )
        self.spec = spec
        self.n = n
        self.trials = trials
        self.periods = periods
        self.engine = engine
        self.trial_seeds = list(trial_seeds)
        self.elapsed_seconds = elapsed_seconds
        self.protocol = protocol
        self.scenario = scenario
        self.recorder = recorder
        self.trial_recorders = trial_recorders
        #: Trial-axis shard count the run executed with (1 = unsharded).
        #: Part of the batch stream's identity: replaying a sharded run
        #: bit for bit requires the same shard count (see
        #: :class:`repro.runtime.parallel.ShardedBatchExecutor`).
        self.shards = shards
        #: Work units lost to a skipping fault policy
        #: (``Experiment(..., on_error="skip")``); empty on clean runs.
        #: When non-empty, ``trials``/``trial_seeds`` and every tensor
        #: cover only the surviving trials.
        self.failures: List[UnitFailure] = list(failures or [])
        if trial_recorders is not None:
            first = trial_recorders[0].times
            for other in trial_recorders[1:]:
                if not np.array_equal(other.times, first):
                    raise ValueError(
                        "trial recorders disagree on the recording schedule"
                    )

    # ------------------------------------------------------------------
    # Tensors
    # ------------------------------------------------------------------
    @property
    def states(self) -> Tuple[str, ...]:
        return tuple(self.spec.states)

    @property
    def times(self) -> np.ndarray:
        """Recorded periods, shape ``(periods,)``."""
        if self.recorder is not None:
            return self.recorder.times
        return self.trial_recorders[0].times

    def count_tensor(self) -> np.ndarray:
        """All counts as one ``(M, periods, S)`` tensor."""
        if self.recorder is not None:
            return self.recorder.count_tensor()
        return np.stack([
            np.stack([r.counts(s) for s in self.states], axis=1)
            for r in self.trial_recorders
        ])

    def counts(self, state: str) -> np.ndarray:
        """Count series of one state, shape ``(M, periods)``."""
        if self.recorder is not None:
            return self.recorder.counts(state)
        return np.stack([r.counts(state) for r in self.trial_recorders])

    def alive_tensor(self) -> np.ndarray:
        """Alive population per trial and period, shape ``(M, periods)``."""
        if self.recorder is not None:
            return self.recorder.alive_tensor()
        return np.stack([r.alive_series() for r in self.trial_recorders])

    def transition_tensor(self, edge: Edge) -> np.ndarray:
        """Per-trial transition series along one edge, ``(M, periods)``."""
        if self.recorder is not None:
            return self.recorder.transition_tensor(edge)
        return np.stack([
            r.transition_series(edge) for r in self.trial_recorders
        ])

    def edges_seen(self) -> List[Edge]:
        """Every edge that carried at least one transition in any trial."""
        if self.recorder is not None:
            return self.recorder.edges_seen()
        seen = set()
        for r in self.trial_recorders:
            seen.update(r.edges_seen())
        return sorted(seen)

    # ------------------------------------------------------------------
    # Reducers
    # ------------------------------------------------------------------
    def mean_counts(self, state: str) -> np.ndarray:
        return self.counts(state).mean(axis=0)

    def std_counts(self, state: str) -> np.ndarray:
        return self.counts(state).std(axis=0)

    def quantile_counts(self, state: str, q) -> np.ndarray:
        return np.quantile(self.counts(state), q, axis=0)

    def mean_alive(self) -> np.ndarray:
        return self.alive_tensor().mean(axis=0)

    def final_counts(self) -> Dict[str, np.ndarray]:
        """Per-state final counts, each an ``(M,)`` array.

        Reads only the last recorded period (the recorders expose it
        directly) instead of materializing the full count tensor.
        """
        if self.recorder is not None:
            last = self.recorder.last_counts()  # (M, S)
            return {
                s: last[:, i].copy() for i, s in enumerate(self.states)
            }
        per_trial = [r.last_counts() for r in self.trial_recorders]
        return {
            s: np.array([counts[s] for counts in per_trial], dtype=np.int64)
            for s in self.states
        }

    def mean_final_counts(self) -> Dict[str, float]:
        return {s: float(v.mean()) for s, v in self.final_counts().items()}

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Final-count summary per state (the campaign-point reducers).

        Keys match :class:`repro.campaign.PointResult.summary` -- the
        quantile set is the campaign's ``SUMMARY_QUANTILES``, imported
        so the two surfaces cannot desynchronize.
        """
        from ..campaign.runner import SUMMARY_QUANTILES

        out: Dict[str, Dict[str, float]] = {}
        for state, series in self.final_counts().items():
            stats = {
                "mean": float(series.mean()),
                "std": float(series.std()),
                "min": float(series.min()),
                "max": float(series.max()),
            }
            for q, value in zip(
                SUMMARY_QUANTILES, np.quantile(series, SUMMARY_QUANTILES)
            ):
                stats[f"q{int(q * 100)}"] = float(value)
            out[state] = stats
        return out

    # ------------------------------------------------------------------
    # Equilibrium comparison (the paper's Figure 7 idiom)
    # ------------------------------------------------------------------
    def window_stats(
        self, state: str, window_periods: Optional[int] = None
    ) -> WindowStats:
        """Pooled window statistics of one state's count series.

        The window is the last ``window_periods`` recorded periods of
        every trial, pooled (``M * window`` samples); default is the
        last quarter of the recording.
        """
        series = self.counts(state)
        window = self._window(window_periods)
        return WindowStats.of(series[:, -window:].ravel())

    def _window(self, window_periods: Optional[int]) -> int:
        recorded = len(self.times)
        if window_periods is None:
            return max(1, recorded // 4)
        return max(1, min(int(window_periods), recorded))

    def equilibrium_check(
        self,
        analytic: Optional[Dict[str, float]] = None,
        *,
        window_periods: Optional[int] = None,
        pass_tol: float = PASS_TOL,
        warn_tol: float = WARN_TOL,
    ) -> EquilibriumCheck:
        """Compare the ensemble's stationary window to the ODE equilibrium.

        ``analytic`` maps state names to predicted equilibrium *counts*;
        by default it comes from the protocol handle's stable source-ODE
        equilibrium (:meth:`Protocol.equilibrium_counts`).  States whose
        analytic population is below ``max(GATE_FRACTION * n, 30)``
        hosts are reported but not gated.
        """
        if analytic is None and self.protocol is not None:
            analytic = self.protocol.equilibrium_counts(self.n)
        if not analytic:
            return EquilibriumCheck(
                status="SKIP", rows=(), window_periods=0, trials=self.trials,
                pass_tol=pass_tol, warn_tol=warn_tol,
            )
        window = self._window(window_periods)
        gate_floor = max(GATE_FRACTION * self.n, 30.0)
        rows = []
        for state in self.states:
            target = float(analytic.get(state, 0.0))
            rows.append(EquilibriumCheckRow(
                state=state,
                analytic=target,
                stats=self.window_stats(state, window),
                gated=target >= gate_floor,
            ))
        worst = _worst_gated(rows)
        if worst is None:
            status = "WARN"
        elif worst.relative_error <= pass_tol:
            status = "PASS"
        elif worst.relative_error <= warn_tol:
            status = "WARN"
        else:
            status = "FAIL"
        return EquilibriumCheck(
            status=status, rows=tuple(rows), window_periods=window,
            trials=self.trials, pass_tol=pass_tol, warn_tol=warn_tol,
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_summary(self) -> str:
        """The ensemble trajectory summary table, as printable text."""
        from ..viz import format_table

        # One tensor materialization serves both the initial and the
        # final rows (count_tensor() copies the whole recording).
        tensor = self.count_tensor()
        initial, final = tensor[:, 0, :], tensor[:, -1, :]
        rows = []
        for i, state in enumerate(self.states):
            series = final[:, i]
            rows.append((
                state,
                f"{initial[:, i].mean():.1f}",
                f"{series.mean():.1f}",
                f"{series.std():.1f}",
                f"{series.min():g}",
                f"{np.median(series):g}",
                f"{series.max():g}",
            ))
        return format_table(
            ["state", "initial", "final mean", "std", "min", "median", "max"],
            rows,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ExperimentResult({self.spec.name!r}, n={self.n}, "
            f"trials={self.trials}, periods={self.periods}, "
            f"engine={self.engine!r})"
        )
