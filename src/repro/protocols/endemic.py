"""Endemic replication: Case Study I (paper Section 4.1).

The endemic protocol solves the *responsibility migration* problem --
keeping a small, constantly moving subgroup of processes responsible
for an object (e.g. storing a file replica).  It is derived from the
endemic equations (1), an SIRS-style system:

    x' = -beta*x*y + alpha*z      (receptive)
    y' =  beta*x*y - gamma*y      (stash: holds a replica)
    z' =  gamma*y  - alpha*z      (averse: recently deleted, refuses)

Two protocol realizations are provided:

* :func:`figure1_protocol` -- the paper's Figure 1 variant: stash
  processes flip out at rate ``gamma``, averse at rate ``alpha``;
  receptives pull from ``b`` random targets (any stasher infects), and
  stashers push to ``b`` random targets (action (iv)); with
  ``b = beta/2`` the effective contact rate is
  ``beta = N(1-(1-b/N)^2) ~= 2b``.
* :func:`pure_protocol` -- the unmodified Section 3 mapping (One-Time-
  Sampling with a normalizing constant), exact in mean field.

:class:`EndemicParams` carries the closed-form equilibrium (2), the
perturbation quantities (sigma, tau, Delta) of the Theorem 3 proof, and
parameter-selection helpers (e.g. choosing ``alpha`` for a target
stasher population ``y_inf = c*log2(N)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..odes import library
from ..odes.system import EquationSystem
from ..synthesis import (
    AnyOfSampleAction,
    FlipAction,
    ProtocolSpec,
    PushAction,
    synthesize,
)

#: State names, in the paper's order.
RECEPTIVE, STASH, AVERSE = "x", "y", "z"


@dataclass(frozen=True)
class EndemicParams:
    """Endemic protocol parameters and their closed-form consequences.

    ``alpha`` and ``gamma`` are per-period probabilities in (0, 1];
    ``b`` is the per-period contact fan-out, so the effective contact
    rate is ``beta = 2b`` (fraction notation; the errata's count
    notation is ``beta = 2b/N``).
    """

    alpha: float
    gamma: float
    b: int

    def __post_init__(self):
        if not 0 < self.alpha <= 1:
            raise ValueError(f"alpha must lie in (0, 1], got {self.alpha}")
        if not 0 < self.gamma <= 1:
            raise ValueError(f"gamma must lie in (0, 1], got {self.gamma}")
        if self.b < 1:
            raise ValueError(f"b must be >= 1, got {self.b}")
        if self.beta <= self.gamma:
            raise ValueError(
                f"need beta > gamma (beta=2b={self.beta}, gamma={self.gamma})"
            )

    @property
    def beta(self) -> float:
        """Effective contact rate ``2b`` (pull + push, fraction form)."""
        return 2.0 * self.b

    # ------------------------------------------------------------------
    # Equilibria (paper equation (2), fraction notation)
    # ------------------------------------------------------------------
    def equilibrium(self) -> Dict[str, float]:
        """The non-trivial (safe) equilibrium fractions."""
        x = self.gamma / self.beta
        y = (1.0 - x) / (1.0 + self.gamma / self.alpha)
        z = (1.0 - x) / (1.0 + self.alpha / self.gamma)
        return {RECEPTIVE: x, STASH: y, AVERSE: z}

    def trivial_equilibrium(self) -> Dict[str, float]:
        """The all-receptive equilibrium (object lost)."""
        return {RECEPTIVE: 1.0, STASH: 0.0, AVERSE: 0.0}

    def equilibrium_counts(self, n: int) -> Dict[str, float]:
        """Equilibrium in process counts for a group of size ``n``."""
        return {k: v * n for k, v in self.equilibrium().items()}

    def exists(self) -> bool:
        """Non-trivial equilibrium exists iff ``gamma/beta < 1``.

        (Count notation: ``N > gamma/beta``, Theorem 3's condition.)
        """
        return self.gamma / self.beta < 1.0

    # ------------------------------------------------------------------
    # Perturbation analysis (paper equations (3)-(5))
    # ------------------------------------------------------------------
    def sigma(self) -> float:
        """``sigma = beta*y_inf = (beta - gamma) / (1 + gamma/alpha)``."""
        return (self.beta - self.gamma) / (1.0 + self.gamma / self.alpha)

    def trace(self) -> float:
        """``tau = -(sigma + alpha)`` -- always negative (Theorem 3)."""
        return -(self.sigma() + self.alpha)

    def determinant(self) -> float:
        """``Delta = sigma*(gamma + alpha)`` -- always positive."""
        return self.sigma() * (self.gamma + self.alpha)

    def discriminant(self) -> float:
        """``tau^2 - 4*Delta = (sigma - alpha)^2 - 4*sigma*gamma``.

        Negative: stable spiral (damped oscillation).  Positive: stable
        node.  Zero: degenerate node.
        """
        sigma = self.sigma()
        return (sigma - self.alpha) ** 2 - 4.0 * sigma * self.gamma

    def eigenvalues(self) -> Tuple[complex, complex]:
        """Eigenvalues of the matrix A of equation (4)."""
        tau, delta = self.trace(), self.determinant()
        disc = complex(tau * tau - 4.0 * delta)
        root = disc ** 0.5
        return ((tau + root) / 2.0, (tau - root) / 2.0)

    def perturbation_matrix(self) -> np.ndarray:
        """The 2x2 matrix A of equation (4)."""
        sigma = self.sigma()
        return np.array(
            [[-(sigma + self.alpha), -sigma * (self.gamma + self.alpha)],
             [1.0, 0.0]]
        )

    def spiral(self) -> bool:
        """True when the safe equilibrium is a stable spiral."""
        return self.discriminant() < 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def system(self) -> EquationSystem:
        """The endemic equation system (1) with these rates."""
        return library.endemic(alpha=self.alpha, gamma=self.gamma, b=self.b)


def figure1_protocol(params: EndemicParams) -> ProtocolSpec:
    """The paper's Figure 1 endemic protocol (with action (iv)).

    One protocol period = one time unit of equations (1) with
    ``beta = 2b`` (the errata notes this protocol is a variant of the
    §3 mapping; its mean field matches to first order in ``y``).
    """
    actions = (
        # (i) gamma*y: stash -> averse (delete the replica).
        FlipAction(
            actor_state=STASH, probability=params.gamma, target_state=AVERSE
        ),
        # (ii) alpha*z: averse -> receptive.
        FlipAction(
            actor_state=AVERSE, probability=params.alpha, target_state=RECEPTIVE
        ),
        # (iii) beta*x*y pull: receptive contacts b targets; any stasher
        # among them infects it (object transfer).
        AnyOfSampleAction(
            actor_state=RECEPTIVE,
            probability=1.0,
            target_state=STASH,
            match_state=STASH,
            fanout=params.b,
        ),
        # (iv) beta*x*y push: stasher contacts b targets; receptive
        # targets immediately turn stashers (object transfer).
        PushAction(
            actor_state=STASH,
            probability=1.0,
            target_state=STASH,
            match_state=RECEPTIVE,
            fanout=params.b,
        ),
    )
    return ProtocolSpec(
        name="endemic-replication",
        states=(RECEPTIVE, STASH, AVERSE),
        actions=actions,
        normalizer=1.0,
        source=params.system(),
        exact_mean_field=False,
    )


def pure_protocol(params: EndemicParams, p: Optional[float] = None) -> ProtocolSpec:
    """The unmodified Section 3 mapping of equations (1).

    Exact in mean field; the normalizing constant slows the protocol
    down by a factor ``p`` relative to :func:`figure1_protocol`.
    """
    return synthesize(params.system(), p=p, name="endemic-pure")


# ----------------------------------------------------------------------
# Parameter selection helpers (Section 4.1.3, "Probabilistic Safety")
# ----------------------------------------------------------------------
def alpha_for_target_stashers(
    n: int, target_stashers: float, gamma: float, b: int
) -> float:
    """Choose ``alpha`` so the equilibrium stasher count hits a target.

    From ``y_inf = (1 - gamma/(2b)) / (1 + gamma/alpha)`` (fractions):
    solve for ``alpha`` given ``y_inf = target_stashers / n``.
    """
    x_inf = gamma / (2.0 * b)
    y_frac = target_stashers / n
    if not 0 < y_frac < 1.0 - x_inf:
        raise ValueError(
            f"target {target_stashers} infeasible for n={n}, gamma={gamma}, b={b}"
        )
    ratio = (1.0 - x_inf) / y_frac - 1.0  # = gamma / alpha
    if ratio <= 0:
        raise ValueError("target too large; would need alpha < 0")
    alpha = gamma / ratio
    if alpha > 1.0:
        raise ValueError(f"required alpha={alpha} exceeds 1; lower the target")
    return alpha


def params_for_log_replicas(
    n: int, c: float, gamma: float, b: int
) -> EndemicParams:
    """Parameters giving ``y_inf = c * log2(n)`` equilibrium stashers.

    With this choice the probability that all stashers die before
    creating any new replica is ``(1/2)^{y_inf} = n^{-c}``
    (Section 4.1.3).
    """
    target = c * math.log2(n)
    alpha = alpha_for_target_stashers(n, target, gamma, b)
    return EndemicParams(alpha=alpha, gamma=gamma, b=b)


def stasher_birth_rate(params: EndemicParams, n: int) -> float:
    """New stashers per period at equilibrium (= ``gamma * Y_inf``).

    At equilibrium each stasher creates new stashers at rate
    ``beta * x_inf = gamma``, so births balance deaths.  With the
    Figure 8 configuration this is the "one stasher created every
    40.6 seconds" quantity.
    """
    return params.gamma * params.equilibrium_counts(n)[STASH]
