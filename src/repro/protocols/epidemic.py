"""Epidemic protocols (the paper's motivating example, Section 1).

Equation (0) synthesizes to the canonical *pull* epidemic: every
susceptible process periodically contacts one uniformly random peer and
becomes infected if the peer is infected.  The analysis predicts
``x(t) -> 0`` with convergence in ``O(log N)`` rounds -- the shape the
EPID bench verifies.

Also provided: the *push* variant (infectives contact peers and infect
them) and push-pull, which are not derived in the paper but are the
classic Demers et al. family the paper situates itself against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..odes import library
from ..synthesis import ProtocolSpec, PushAction, SampleAction, synthesize
from ..runtime import MetricsRecorder, RoundEngine


def pull_protocol(rate: float = 1.0) -> ProtocolSpec:
    """The canonical pull epidemic synthesized from equation (0)."""
    return synthesize(library.epidemic(rate), name="epidemic-pull")


def push_protocol() -> ProtocolSpec:
    """Push epidemic: infectives convert one random peer per period.

    Hand-built variant (not a pure output of the mapping): mean-field
    rate matches ``x' = -xy`` to first order.
    """
    return ProtocolSpec(
        name="epidemic-push",
        states=("x", "y"),
        actions=(
            PushAction(
                actor_state="y",
                probability=1.0,
                target_state="y",
                match_state="x",
                fanout=1,
            ),
        ),
        source=library.push_epidemic(),
        exact_mean_field=False,
    )


def push_pull_protocol() -> ProtocolSpec:
    """Push-pull epidemic: both directions each period (rate ~2xy)."""
    pull = pull_protocol()
    push = push_protocol()
    return ProtocolSpec(
        name="epidemic-push-pull",
        states=("x", "y"),
        actions=pull.actions + push.actions,
        source=library.epidemic(2.0),
        exact_mean_field=False,
    )


@dataclass
class SpreadResult:
    """Outcome of one epidemic spread measurement."""

    n: int
    rounds_to_threshold: Optional[int]
    final_susceptible: int
    recorder: MetricsRecorder

    @property
    def completed(self) -> bool:
        return self.rounds_to_threshold is not None


def measure_spread(
    protocol: ProtocolSpec,
    n: int,
    *,
    initial_infected: int = 1,
    threshold: int = 1,
    max_rounds: Optional[int] = None,
    seed: Optional[int] = None,
) -> SpreadResult:
    """Run an epidemic until susceptibles drop to ``threshold``.

    Returns the number of protocol periods taken (the paper:
    ``O(log N)`` rounds to ``x ~= O(1)``).
    """
    if max_rounds is None:
        max_rounds = max(50, 10 * int(math.ceil(math.log2(max(2, n)))))
    engine = RoundEngine(
        protocol,
        n=n,
        initial={"x": n - initial_infected, "y": initial_infected},
        seed=seed,
    )
    recorder = MetricsRecorder(protocol.states)
    rounds_to_threshold = None
    for _ in range(max_rounds):
        engine.step()
        counts = engine.counts()
        recorder.record(engine.period, counts, engine.alive_count(),
                        transitions=engine.last_transitions)
        if rounds_to_threshold is None and counts["x"] <= threshold:
            rounds_to_threshold = engine.period
            break
    return SpreadResult(
        n=n,
        rounds_to_threshold=rounds_to_threshold,
        final_susceptible=engine.counts()["x"],
        recorder=recorder,
    )


def theoretical_rounds(n: int, rate: float = 1.0) -> float:
    """Mean-field prediction of rounds until one susceptible remains.

    Integrating ``x' = -rate*x*(1-x)`` from ``x0 = 1 - 1/n`` down to
    ``1/n`` gives ``t = 2*ln(n-1)/rate`` -- logarithmic in ``n``, the
    paper's ``O(log N)`` claim with an explicit constant.
    """
    if n < 3:
        return 0.0
    return 2.0 * math.log(n - 1) / rate
