"""The paper's case-study protocols and comparison baselines.

* :mod:`~repro.protocols.epidemic` -- the motivating pull epidemic
  (equation 0) plus push / push-pull variants.
* :mod:`~repro.protocols.endemic` -- endemic migratory replication
  (Case Study I, Figure 1), equilibrium and perturbation formulas,
  parameter selection.
* :mod:`~repro.protocols.lv` -- the LV majority-selection protocol
  (Case Study II, Figure 3), convergence detection and accuracy
  measurement.
* :mod:`~repro.protocols.baselines` -- static/reactive replication and
  the simple hand-off strawman (Section 4.1) for comparison benches.
"""

from .baselines import PlacementResult, SimpleHandoff, StaticReplication
from .endemic import (
    AVERSE,
    RECEPTIVE,
    STASH,
    EndemicParams,
    alpha_for_target_stashers,
    figure1_protocol,
    params_for_log_replicas,
    pure_protocol,
    stasher_birth_rate,
)
from .epidemic import (
    SpreadResult,
    measure_spread,
    pull_protocol,
    push_protocol,
    push_pull_protocol,
    theoretical_rounds,
)
from .lv import (
    ONE,
    UNDECIDED,
    ZERO,
    LVEnsemble,
    LVMajority,
    MajorityEnsembleOutcome,
    MajorityOutcome,
    expected_convergence_periods,
    lv_protocol,
    majority_accuracy,
    majority_accuracy_serial,
)

__all__ = [
    "pull_protocol",
    "push_protocol",
    "push_pull_protocol",
    "measure_spread",
    "theoretical_rounds",
    "SpreadResult",
    "EndemicParams",
    "figure1_protocol",
    "pure_protocol",
    "alpha_for_target_stashers",
    "params_for_log_replicas",
    "stasher_birth_rate",
    "RECEPTIVE",
    "STASH",
    "AVERSE",
    "LVMajority",
    "LVEnsemble",
    "MajorityOutcome",
    "MajorityEnsembleOutcome",
    "lv_protocol",
    "majority_accuracy",
    "majority_accuracy_serial",
    "expected_convergence_periods",
    "ZERO",
    "ONE",
    "UNDECIDED",
    "StaticReplication",
    "SimpleHandoff",
    "PlacementResult",
]
