"""The LV protocol: probabilistic majority selection (Section 4.2).

Derived from a Lotka-Volterra competition system ("two species
competing for the same limited resource typically cannot coexist"):
states ``x`` and ``y`` are the two proposal camps and ``z`` the
undecided processes.  Equation (7) maps through the Section 3 rules to
the Figure 3 state machine: every process samples one random peer per
period and, with coin bias ``3p``, moves as follows --

* ``x`` meeting a ``y`` -> ``z``         (the camps erode each other)
* ``y`` meeting an ``x`` -> ``z``
* ``z`` meeting an ``x`` -> ``x``        (undecideds join a camp)
* ``z`` meeting a ``y`` -> ``y``

Theorem 4: ``(1,0)`` and ``(0,1)`` are stable, ``(0,0)`` unstable,
``(1/3,1/3)`` a saddle; trajectories starting with ``x0 > y0`` converge
to ``(1,0)`` (and symmetrically), so w.h.p. the group agrees on the
initial majority.  Majority selection *cannot* be solved exactly in an
asynchronous system (it would solve consensus), hence the probabilistic
specification: the running decision variable eventually agrees
everywhere and w.h.p. equals the initial majority.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from ..odes import library
from ..runtime import (
    BatchMetricsRecorder,
    BatchRoundEngine,
    MetricsRecorder,
    RoundEngine,
)
from ..runtime.batch_engine import HookFactory
from ..runtime.round_engine import Hook
from ..synthesis import ProtocolSpec, synthesize

#: Decision values.
ZERO, ONE, UNDECIDED = "x", "y", "z"


def lv_protocol(p: float = 0.01, rate: float = 3.0) -> ProtocolSpec:
    """The Figure 3 LV protocol (coin bias ``rate * p`` per action).

    ``p = 0.01`` is the paper's experimental setting; one protocol
    period then corresponds to ``p`` time units of equations (6)/(7).
    """
    return synthesize(library.lv(rate), p=p, name="lv-majority")


@dataclass
class MajorityOutcome:
    """Result of one majority-selection run."""

    n: int
    initial_zero: int
    initial_one: int
    winner: Optional[str]
    correct: Optional[bool]
    convergence_period: Optional[int]
    recorder: MetricsRecorder

    @property
    def converged(self) -> bool:
        return self.winner is not None


class LVMajority:
    """A majority-selection instance over a process group.

    Each process proposes 0 or 1 (states ``x`` / ``y``).  The protocol
    runs forever; :meth:`run` advances it and detects *convergence* --
    the period when every alive process sits in a single camp.  The
    running decision variable of a process is its camp (``b`` /
    undecided while in state ``z``).
    """

    def __init__(
        self,
        n: int,
        zeros: int,
        ones: int,
        *,
        p: float = 0.01,
        seed: Optional[int] = None,
        undecided: int = 0,
    ):
        if zeros + ones + undecided != n:
            raise ValueError(
                f"zeros+ones+undecided = {zeros + ones + undecided} != n = {n}"
            )
        self.n = n
        self.initial_zero = zeros
        self.initial_one = ones
        self.spec = lv_protocol(p=p)
        self.engine = RoundEngine(
            self.spec,
            n=n,
            initial={ZERO: zeros, ONE: ones, UNDECIDED: undecided},
            seed=seed,
        )

    def decisions(self) -> Dict[str, int]:
        """Current decision variables: counts of 0 / 1 / undecided."""
        counts = self.engine.counts()
        return {"0": counts[ZERO], "1": counts[ONE], "b": counts[UNDECIDED]}

    def converged_winner(self) -> Optional[str]:
        """The winning camp if all alive processes agree, else None."""
        counts = self.engine.counts()
        alive = self.engine.alive_count()
        if alive == 0:
            return None
        if counts[ZERO] == alive:
            return ZERO
        if counts[ONE] == alive:
            return ONE
        return None

    def run(
        self,
        max_periods: int,
        hooks: tuple = (),
        recorder: Optional[MetricsRecorder] = None,
        stop_on_convergence: bool = True,
    ) -> MajorityOutcome:
        """Advance up to ``max_periods``, recording counts per period."""
        if recorder is None:
            recorder = MetricsRecorder(self.spec.states)
        hooks_list = list(hooks)
        engine = self.engine
        if engine.period == 0:
            recorder.record(0, engine.counts(), engine.alive_count())
        convergence_period = None
        for _ in range(max_periods):
            for hook in hooks_list:
                hook(engine)
            engine.step()
            recorder.record(
                engine.period,
                engine.counts(),
                engine.alive_count(),
                transitions=engine.last_transitions,
            )
            if convergence_period is None:
                winner = self.converged_winner()
                if winner is not None:
                    convergence_period = engine.period
                    if stop_on_convergence:
                        break
        winner = self.converged_winner()
        correct = None
        if winner is not None and self.initial_zero != self.initial_one:
            majority = ZERO if self.initial_zero > self.initial_one else ONE
            correct = winner == majority
        return MajorityOutcome(
            n=self.n,
            initial_zero=self.initial_zero,
            initial_one=self.initial_one,
            winner=winner,
            correct=correct,
            convergence_period=convergence_period,
            recorder=recorder,
        )


@dataclass
class MajorityEnsembleOutcome:
    """Per-trial decision tensors of an :class:`LVEnsemble` run.

    All arrays have shape ``(M,)`` and line up with
    :attr:`LVEnsemble.trial_seeds`.
    """

    n: int
    trials: int
    initial_zero: int
    initial_one: int
    #: Winning camp per trial: ``"x"``, ``"y"`` or ``""`` (undecided).
    winners: np.ndarray
    #: First period at which a trial's alive processes all agreed
    #: (-1 if it never converged within the horizon).
    convergence_periods: np.ndarray
    recorder: BatchMetricsRecorder = field(repr=False)

    @property
    def converged(self) -> np.ndarray:
        """Boolean mask of trials whose alive processes all agree."""
        return self.winners != ""

    @property
    def correct(self) -> np.ndarray:
        """Per-trial correctness mask (meaningless where undecided).

        Combine with :attr:`decided`: a trial counts as decided when it
        converged and the initial split was not a tie.
        """
        if self.initial_zero == self.initial_one:
            return np.zeros(self.trials, dtype=bool)
        majority = ZERO if self.initial_zero > self.initial_one else ONE
        return self.winners == majority

    @property
    def decided(self) -> np.ndarray:
        """Trials that produced a gradable decision."""
        if self.initial_zero == self.initial_one:
            return np.zeros(self.trials, dtype=bool)
        return self.converged

    def accuracy(self) -> float:
        """Fraction of decided trials won by the initial majority."""
        decided = self.decided
        if not decided.any():
            return float("nan")
        return float(self.correct[decided].sum() / decided.sum())


class LVEnsemble:
    """M majority-selection trials in one ``(M, N)`` batched engine.

    The ensemble sibling of :class:`LVMajority`: the accuracy and
    untraceability claims of the paper's Section 4.2 experiments are
    ensemble frequencies, so the M trials run as one
    :class:`~repro.runtime.batch_engine.BatchRoundEngine` tensor
    instead of a Python loop over seeded engines.  ``mode="lockstep"``
    makes trial ``m`` bit-identical to
    ``LVMajority(..., seed=trial_seeds[m])``, which is the regression
    anchor for the vectorized path (see ``tests/test_lv.py``).
    """

    def __init__(
        self,
        n: int,
        zeros: int,
        ones: int,
        *,
        trials: int,
        p: float = 0.01,
        seed: Optional[int] = None,
        undecided: int = 0,
        mode: str = "batch",
    ):
        if zeros + ones + undecided != n:
            raise ValueError(
                f"zeros+ones+undecided = {zeros + ones + undecided} != n = {n}"
            )
        self.n = n
        self.trials = trials
        self.initial_zero = zeros
        self.initial_one = ones
        self.spec = lv_protocol(p=p)
        self.engine = BatchRoundEngine(
            self.spec,
            n=n,
            trials=trials,
            initial={ZERO: zeros, ONE: ones, UNDECIDED: undecided},
            seed=seed,
            mode=mode,
        )
        self.trial_seeds = self.engine.trial_seeds

    def converged_winners(self) -> np.ndarray:
        """Per-trial winning camp (``""`` where camps still disagree)."""
        counts = self.engine.counts_matrix()
        alive = self.engine.alive_counts()
        winners = np.full(self.trials, "", dtype="<U1")
        live = alive > 0
        winners[live & (counts[:, self.engine.state_id(ZERO)] == alive)] = ZERO
        winners[live & (counts[:, self.engine.state_id(ONE)] == alive)] = ONE
        return winners

    def run(
        self,
        max_periods: int,
        recorder: Optional[BatchMetricsRecorder] = None,
        hook_factories: Iterable[HookFactory] = (),
        stop_when_all_converged: bool = True,
    ) -> MajorityEnsembleOutcome:
        """Advance up to ``max_periods``, tracking per-trial convergence.

        Convergence is absorbing (an unanimous group has nobody left to
        meet a dissenter), so converged trials keep stepping at no
        statistical cost while stragglers finish; with
        ``stop_when_all_converged`` the run ends as soon as every trial
        has converged.
        """
        engine = self.engine
        if recorder is None:
            recorder = BatchMetricsRecorder(
                self.spec.states, self.trials, track_transitions=False
            )
        convergence = np.full(self.trials, -1, dtype=np.int64)
        done = self.converged_winners() != ""
        convergence[done] = engine.period

        def note_convergence(running: BatchRoundEngine) -> bool:
            newly = (self.converged_winners() != "") & ~done
            convergence[newly] = running.period
            done[newly] = True
            return stop_when_all_converged and bool(done.all())

        if stop_when_all_converged and done.all():
            engine.run(0, recorder=recorder)  # record the initial state
        else:
            engine.run(
                max_periods,
                recorder=recorder,
                hook_factories=hook_factories,
                stop=note_convergence,
            )
        winners = self.converged_winners()
        # A trial that decayed out of unanimity (e.g. a recovery hook
        # reviving hosts into camp x) reports its current state, exactly
        # like LVMajority's end-of-run winner check.
        convergence[winners == ""] = -1
        return MajorityEnsembleOutcome(
            n=self.n,
            trials=self.trials,
            initial_zero=self.initial_zero,
            initial_one=self.initial_one,
            winners=winners,
            convergence_periods=convergence,
            recorder=recorder,
        )


def majority_accuracy(
    n: int,
    zeros: int,
    trials: int,
    *,
    p: float = 0.01,
    max_periods: int = 4000,
    seed: int = 0,
    mode: str = "batch",
) -> float:
    """Empirical probability that the initial majority wins.

    The w.h.p. guarantee weakens as the initial split approaches 50/50
    (the saddle at ``x = y``); this measures it.  The M trials run as
    one batched :class:`LVEnsemble`; :func:`majority_accuracy_serial`
    keeps the pre-batch-engine trial loop alive as the throughput and
    equivalence baseline.
    """
    outcome = LVEnsemble(
        n, zeros, n - zeros, trials=trials, p=p, seed=seed, mode=mode
    ).run(max_periods)
    return outcome.accuracy()


def majority_accuracy_serial(
    n: int,
    zeros: int,
    trials: int,
    *,
    p: float = 0.01,
    max_periods: int = 4000,
    seed: int = 0,
) -> float:
    """Reference implementation: a Python loop over M serial runs.

    The pre-batch-engine idiom (one seeded :class:`LVMajority` per
    trial).  Kept as the baseline for
    ``benchmarks/bench_lv_accuracy_throughput.py`` and the
    distributional-equivalence tests.
    """
    wins = 0
    decided = 0
    for trial in range(trials):
        outcome = LVMajority(
            n, zeros, n - zeros, p=p, seed=seed + trial
        ).run(max_periods)
        if outcome.correct is not None:
            decided += 1
            wins += int(outcome.correct)
    if decided == 0:
        return float("nan")
    return wins / decided


def expected_convergence_periods(n: int, p: float = 0.01, u0: float = 0.25) -> float:
    """Mean-field periods until the minority camp is O(1) in size.

    Near the stable point the minority decays as ``u0 * e^{-3t}``
    (Section 4.2.2), so reaching ``1/n`` takes ``t = ln(u0*n)/3`` time
    units = ``ln(u0*n)/(3p)`` protocol periods -- O(log N) periods.
    """
    if n < 2:
        return 0.0
    return math.log(max(math.e, u0 * n)) / (3.0 * p)
