"""Baseline replica-placement strategies the paper argues against.

Section 4.1 motivates migratory replication by the drawbacks of the
alternatives; both are implemented here so the BASE bench can measure
the comparison instead of asserting it:

* :class:`StaticReplication` -- the static/reactive strategy of
  [20, 21]: replicas sit on a fixed host subset and are re-placed only
  when a holder is detected crashed.  Drawback (2): an attacker can
  snapshot the (stable) replica locations and destroy every copy; the
  strategy also satisfies neither liveness nor fairness.
* :class:`SimpleHandoff` -- the strawman of Section 4.1.1: a holder
  hands the object to another process "after a while" and immediately
  deletes it.  A crash-stop failure of the holder before the transfer
  destroys a replica, so without a refresh mechanism the replica count
  drifts to zero.

Both expose the same duck-typed surface as
:class:`~repro.runtime.round_engine.RoundEngine` (``period``, ``alive``,
``states``, ``crash``, ``members_in``, ``state_id``), so the failure
hooks in :mod:`repro.runtime.failures` -- in particular
:class:`~repro.runtime.failures.DirectedAttack` -- apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..runtime.metrics import MetricsRecorder
from ..runtime.rng import make_generator

#: State names shared by both baselines.
OTHER, REPLICA = "other", "replica"
_STATE_NAMES = (OTHER, REPLICA)


class _PlacementSim:
    """Shared machinery: alive tracking, states array, hook protocol."""

    def __init__(self, n: int, seed: Optional[int]):
        if n < 2:
            raise ValueError(f"need at least 2 hosts, got {n}")
        self.n = n
        self.state_names = _STATE_NAMES
        self.states = np.zeros(n, dtype=np.int8)
        self.alive = np.ones(n, dtype=bool)
        self.period = 0
        self._rng = make_generator(seed)
        self.last_transitions: Dict[Tuple[str, str], int] = {}

    # Duck-typed interface shared with RoundEngine ----------------------
    def state_id(self, name: str) -> int:
        return _STATE_NAMES.index(name)

    def members_in(self, state: str) -> np.ndarray:
        sid = self.state_id(state)
        return np.nonzero((self.states == sid) & self.alive)[0]

    def counts(self) -> Dict[str, int]:
        raw = np.bincount(self.states[self.alive], minlength=2)
        return {s: int(raw[i]) for i, s in enumerate(_STATE_NAMES)}

    def alive_count(self) -> int:
        return int(self.alive.sum())

    def crash(self, hosts) -> None:
        self.alive[np.asarray(hosts, dtype=np.int64)] = False

    def crash_fraction(self, fraction: float) -> np.ndarray:
        alive_ids = np.nonzero(self.alive)[0]
        count = int(round(fraction * len(alive_ids)))
        victims = self._rng.choice(alive_ids, size=count, replace=False)
        self.crash(victims)
        return victims

    def recover(self, hosts, state: Optional[str] = None) -> None:
        hosts = np.asarray(hosts, dtype=np.int64)
        self.alive[hosts] = True
        self.states[hosts] = 0  # recovered hosts hold no replicas

    def replica_count(self) -> int:
        return int(np.count_nonzero(self.states[self.alive] == 1))

    def object_lost(self) -> bool:
        return self.replica_count() == 0

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def run(
        self,
        periods: int,
        hooks: Iterable = (),
        recorder: Optional[MetricsRecorder] = None,
        stop_when_lost: bool = True,
    ) -> "PlacementResult":
        """Advance the baseline, applying hooks before each period."""
        if recorder is None:
            recorder = MetricsRecorder(_STATE_NAMES)
        hooks_list = list(hooks)
        lost_at = None
        for _ in range(periods):
            for hook in hooks_list:
                hook(self)
            self.step()
            self.period += 1
            recorder.record(
                self.period, self.counts(), self.alive_count(),
                transitions=self.last_transitions,
            )
            if lost_at is None and self.object_lost():
                lost_at = self.period
                if stop_when_lost:
                    break
        return PlacementResult(sim=self, recorder=recorder, lost_at_period=lost_at)


@dataclass
class PlacementResult:
    """Outcome of a baseline run."""

    sim: _PlacementSim
    recorder: MetricsRecorder
    lost_at_period: Optional[int]

    @property
    def survived(self) -> bool:
        return self.lost_at_period is None


class StaticReplication(_PlacementSim):
    """Static placement with reactive repair.

    ``k`` replicas are placed on random hosts at start.  Each period,
    crashed holders are *detected* and, after ``repair_delay`` periods,
    replaced by copying from any surviving replica onto a random alive
    non-holder.  If no replica survives, repair is impossible: the
    object is lost -- static placement provides no safety against an
    attacker (or correlated failure) that takes out all holders inside
    the repair window.
    """

    def __init__(
        self,
        n: int,
        k: int,
        repair_delay: int = 5,
        seed: Optional[int] = None,
    ):
        super().__init__(n, seed)
        if not 1 <= k <= n:
            raise ValueError(f"k must lie in [1, {n}], got {k}")
        self.k = k
        self.repair_delay = repair_delay
        self._pending_repairs: List[int] = []  # due periods
        initial = self._rng.choice(n, size=k, replace=False)
        self.states[initial] = 1
        self.repairs_done = 0

    def step(self) -> None:
        self.last_transitions = {}
        # Detect newly dead holders: their replicas are gone; queue repairs.
        dead_holders = np.nonzero((self.states == 1) & ~self.alive)[0]
        for _ in range(len(dead_holders)):
            self._pending_repairs.append(self.period + self.repair_delay)
        self.states[dead_holders] = 0
        # Execute due repairs, if a source replica still exists.
        due = [t for t in self._pending_repairs if t <= self.period]
        self._pending_repairs = [t for t in self._pending_repairs if t > self.period]
        for _ in due:
            if self.replica_count() == 0:
                break  # no source copy: object is lost, repair impossible
            candidates = np.nonzero(self.alive & (self.states == 0))[0]
            if len(candidates) == 0:
                break
            chosen = int(self._rng.choice(candidates))
            self.states[chosen] = 1
            self.repairs_done += 1
            self.last_transitions[(OTHER, REPLICA)] = (
                self.last_transitions.get((OTHER, REPLICA), 0) + 1
            )


class SimpleHandoff(_PlacementSim):
    """The Section 4.1.1 strawman: hand off, then delete immediately.

    Every ``handoff_interval`` periods each holder transfers the object
    to a uniformly random host and deletes its own copy.  If the chosen
    target is crashed (or the transfer connection fails, probability
    ``transfer_failure_rate``), that replica is destroyed -- the exact
    failure mode the paper describes.  With any background crash noise
    the replica population decays to zero absent a periodic refresh.
    """

    def __init__(
        self,
        n: int,
        k: int,
        handoff_interval: int = 1,
        transfer_failure_rate: float = 0.0,
        seed: Optional[int] = None,
    ):
        super().__init__(n, seed)
        if not 1 <= k <= n:
            raise ValueError(f"k must lie in [1, {n}], got {k}")
        if not 0.0 <= transfer_failure_rate < 1.0:
            raise ValueError("transfer failure rate must lie in [0, 1)")
        if handoff_interval < 1:
            raise ValueError("handoff interval must be >= 1")
        self.handoff_interval = handoff_interval
        self.transfer_failure_rate = transfer_failure_rate
        initial = self._rng.choice(n, size=k, replace=False)
        self.states[initial] = 1
        self.transfers = 0
        self.losses = 0

    def step(self) -> None:
        self.last_transitions = {}
        # Replicas on crashed hosts die silently (crash before handoff).
        dead_holders = np.nonzero((self.states == 1) & ~self.alive)[0]
        if len(dead_holders):
            self.losses += len(dead_holders)
            self.states[dead_holders] = 0
        if (self.period + 1) % self.handoff_interval != 0:
            return
        holders = self.members_in(REPLICA)
        moved = 0
        for holder in holders:
            self.states[holder] = 0  # delete immediately (the flaw)
            # Hand off to a host not already holding a copy (a transfer
            # to an existing holder would silently merge two replicas,
            # which is a storage-dedup artifact, not the hand-off race
            # the strawman is about).
            target = holder
            for _ in range(64):
                candidate = int(self._rng.integers(0, self.n - 1))
                candidate += candidate >= holder
                if self.states[candidate] == 0:
                    target = candidate
                    break
            failed = (
                target == holder
                or not self.alive[target]
                or self._rng.random() < self.transfer_failure_rate
            )
            if failed:
                self.losses += 1
                continue
            self.states[target] = 1
            self.transfers += 1
            moved += 1
        if moved:
            self.last_transitions[(REPLICA, REPLICA)] = moved
