"""Command-line interface: classify, synthesize and simulate equations.

Usage::

    python -m repro run       equations.txt|protocol-name --n 10000
                               --trials 16 [--periods 200] [--param ...]
                               [--scenario massive-failure]
                               [--engine auto|serial|batch|lockstep|agent]
                               [--workers 4]
                               [--seed 42] [--loss-rate 0.05] [--plot]
    python -m repro classify  equations.txt [--param beta=4 ...]
    python -m repro synthesize equations.txt [--param ...] [--p 0.01]
                               [--failure-rate 0.1] [--no-rewrite]
    python -m repro simulate  equations.txt --n 10000 --periods 200
                               [--initial x=9999 --initial y=1]
                               [--seed 42] [--plot]
    python -m repro campaign  [--config spec.json | --protocol lv --n 1000
                               --loss-rate 0.05 --scenario massive-failure]
                               [--trials 16] [--periods 200] [--workers 4]
                               [--shards 4] [--save-tensors DIR]
                               [--out results.json] [--dry-run]
                               [--replay results.json]
    python -m repro serve     --protocol endemic --n 1000 --dir state/
                               [--seed 42] [--port 7341 | --no-listen]
                               [--tick-seconds 1.0] [--periods-per-tick 1]
                               [--snapshot-every 100] [--max-periods 0]
                               [--events script.jsonl] [--virtual-clock]
    python -m repro replay    state/ [--from-snapshot] [--quiet]
    python -m repro worker    --connect HOST:PORT

``run`` and ``campaign`` accept ``--backend cluster`` to fan work
units across process-isolated socket workers with heartbeats,
dead-worker re-dispatch and elastic worker counts (results bitwise
identical to the default pool backend); ``worker`` starts a standalone
worker that dials in to such a run's coordinator (pin its port with
``REPRO_CLUSTER_PORT``) and can join mid-plan.

``equations.txt`` holds one equation per line, e.g.::

    x' = -beta*x*y + alpha*z
    y' =  beta*x*y - gamma*y
    z' =  gamma*y  - alpha*z

Symbols that are not variables must be bound with ``--param``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .campaign import (
    CampaignResult,
    CampaignSpec,
    available_protocols,
    available_scenarios,
    load_manifest,
    run_campaign,
    verify_replay,
)
from .experiment import ENGINES, Experiment, Protocol, parse_param_directives
from .runtime.exec import BACKENDS, ON_ERROR_MODES, FaultPolicy
from .odes import ParseError, auto_rewrite, classify, find_equilibria, integrate, parse_system
from .runtime import MetricsRecorder, RoundEngine, spawn_seeds
from .synthesis import SynthesisError, synthesize
from .viz import format_table, render_series


def _parse_bindings(pairs: List[str], kind: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--{kind} expects name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        try:
            out[name.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"--{kind} {name}: {value!r} is not a number")
    return out


def _load_system(args) -> "EquationSystem":
    text = Path(args.equations).read_text()
    # ``# param:`` directives in the file supply defaults; explicit
    # --param flags override them (same rule as ``python -m repro run``).
    try:
        parameters = parse_param_directives(text)
    except ValueError as exc:
        raise SystemExit(f"{args.equations}: {exc}")
    parameters.update(_parse_bindings(args.param, "param"))
    system = parse_system(
        text,
        parameters=parameters,
        name=Path(args.equations).stem,
    )
    return system


def cmd_classify(args) -> int:
    system = _load_system(args)
    print(system.render())
    print()
    print(classify(system).render())
    return 0


def cmd_synthesize(args) -> int:
    system = _load_system(args)
    if not args.no_rewrite and not classify(system).mappable:
        print("# system not directly mappable; applying auto_rewrite "
              "(Section 7)", file=sys.stderr)
        system = auto_rewrite(system)
        print(system.render())
        print()
    try:
        spec = synthesize(
            system,
            p=args.p,
            failure_rate=args.failure_rate,
            tokenize=not args.no_tokenize,
        )
    except SynthesisError as exc:
        print(f"synthesis failed: {exc}", file=sys.stderr)
        return 1
    print(spec.render())
    print()
    print(f"message complexity: {spec.message_complexity()}")
    print(f"one period = {spec.time_scale:g} time units of the equations")
    return 0


def cmd_simulate(args) -> int:
    system = _load_system(args)
    if not classify(system).mappable:
        system = auto_rewrite(system)
    try:
        spec = synthesize(system, p=args.p, failure_rate=args.failure_rate)
    except SynthesisError as exc:
        print(f"synthesis failed: {exc}", file=sys.stderr)
        return 1
    initial = _parse_bindings(args.initial, "initial")
    if not initial:
        # Default: everyone in the first state, one process in the second.
        first, second = spec.states[0], spec.states[1]
        initial = {first: args.n - 1, second: 1}
    engine = RoundEngine(
        spec, n=args.n, initial=initial, seed=args.seed,
        connection_failure_rate=args.failure_rate,
    )
    recorder = MetricsRecorder(spec.states, stride=max(1, args.periods // 200))
    engine.run(args.periods, recorder=recorder)
    counts = engine.counts()
    print(f"after {args.periods} periods "
          f"(= {spec.time_for_periods(args.periods):g} time units):")
    for state in spec.states:
        print(f"  {state}: {counts[state]}")
    if args.plot:
        print()
        print(render_series(
            recorder.times,
            {s: recorder.counts(s) for s in spec.states},
            width=70, height=16,
            title=f"{spec.name} (N={args.n})",
        ))
    return 0


def cmd_analyze(args) -> int:
    """Equilibria, stability and (optionally) a trajectory preview."""
    system = _load_system(args)
    print(system.render())
    print()
    equilibria = find_equilibria(system)
    if not equilibria:
        print("no equilibria found on the simplex")
    for equilibrium in equilibria:
        print("equilibrium:", equilibrium.render())
    stable = [e for e in equilibria if e.is_stable]
    print()
    print(f"{len(stable)} stable of {len(equilibria)} equilibria "
          f"(stable points become self-stabilizing protocol operating "
          f"points)")
    if args.trajectory:
        initial = _parse_bindings(args.initial, "initial")
        if not initial:
            dim = system.dimension
            initial = {v: 1.0 / dim for v in system.variables}
        trajectory = integrate(system, initial, t_end=args.t_end)
        print()
        print(render_series(
            trajectory.times,
            {v: trajectory.series(v) for v in system.variables},
            width=70, height=14,
            title=f"trajectory from {initial}",
        ))
    return 0


def cmd_run(args) -> int:
    """The zero-to-aha path: equations (or a name) -> ensemble results.

    Resolves the target to a :class:`repro.experiment.Protocol` handle
    (an equations file -- with ``# param:`` directives and ``--param``
    overrides -- or a campaign-registry name), runs an
    :class:`repro.experiment.Experiment` on the auto-selected engine
    tier, and prints the ensemble trajectory summary plus the
    equilibrium-vs-closed-form check.  Exit status 1 when the check
    FAILs (PASS/WARN/SKIP exit 0) -- except under ``--scenario``,
    where injected faults legitimately hold the group away from the
    unperturbed equilibrium, so the check is informational only (a
    printed note says so) and never fails the run.
    """
    target = args.target
    params = _parse_bindings(args.param, "param")
    initial = _parse_bindings(args.initial, "initial") or None
    is_file = Path(target).is_file()
    if is_file:
        try:
            protocol = Protocol.from_equations(
                Path(target), parameters=params, p=args.p,
                failure_rate=args.loss_rate,
            )
        except (ParseError, SynthesisError, ValueError) as exc:
            print(f"cannot build a protocol from {target}: {exc}",
                  file=sys.stderr)
            return 1
        origin = target
    else:
        if params or args.p is not None:
            print("--param/--p only apply to equations files, not to "
                  "registry protocol names", file=sys.stderr)
            return 1
        try:
            protocol = Protocol.named(target)
        except KeyError:
            print(f"{target!r} is neither an equations file nor a "
                  f"registered protocol; "
                  f"available: {', '.join(available_protocols())}",
                  file=sys.stderr)
            return 1
        origin = "registry"
    try:
        experiment = Experiment(
            protocol, n=args.n, trials=args.trials, periods=args.periods,
            scenario=None if args.scenario in (None, "none")
            else args.scenario,
            seed=args.seed, engine=args.engine, loss_rate=args.loss_rate,
            stride=args.stride, initial=initial, workers=args.workers,
            fault_policy=_fault_policy_from_args(args),
            backend=args.backend,
        )
        result = experiment.run()
    except (KeyError, ValueError, TypeError) as exc:
        print(f"invalid experiment: {exc}", file=sys.stderr)
        return 1
    spec = result.spec
    engine_note = (
        f"{result.engine} (auto-selected)" if args.engine == "auto"
        else result.engine
    )
    print(f"protocol {protocol.label!r} ({origin}): "
          f"states {', '.join(spec.states)}")
    # experiment.seed is concrete even when --seed was omitted (a fresh
    # root seed is drawn and recorded), so the printed value always
    # reproduces the run.
    print(f"engine: {engine_note}  n={args.n}  trials={args.trials}  "
          f"periods={args.periods}  seed={experiment.seed}"
          + ((f"  workers={args.workers}"
              + (f" (shards={result.shards})"
                 if result.engine in ("batch", "lockstep") else ""))
             if args.workers > 1 else "")
          + (f"  scenario={args.scenario}"
             if args.scenario not in (None, "none") else "")
          + (f"  loss rate={args.loss_rate:g}" if args.loss_rate else ""))
    print(f"one period = {spec.time_scale:g} time units of the source "
          f"equations (horizon t = {spec.time_for_periods(args.periods):g})")
    if args.show_protocol:
        print()
        print(spec.render())
    print()
    if result.failures:
        print(f"warning: {len(result.failures)} work unit(s) failed "
              f"terminally and were skipped (on-error=skip); the "
              f"summary covers the {result.trials} surviving trial(s)")
        for failure in result.failures:
            print(f"  {_render_failure_provenance(failure.to_dict())}")
    print(f"ensemble trajectory summary over {result.trials} trial(s) "
          f"({result.elapsed_seconds:.2f}s):")
    print(result.render_summary())
    print()
    check = result.equilibrium_check()
    print(check.render())
    scenario_active = args.scenario not in (None, "none")
    if scenario_active:
        print(f"note: scenario {args.scenario!r} perturbs the group, so "
              f"the closed-form comparison is informational only")
    if args.plot:
        print()
        print(render_series(
            result.times,
            {s: result.mean_counts(s) for s in spec.states},
            width=70, height=16,
            title=f"{spec.name} (N={args.n}, ensemble mean of "
                  f"{args.trials} trial(s))",
        ))
    return 1 if (check.status == "FAIL" and not scenario_active) else 0


def _print_message_check(point_json, counts, periods, states, measured):
    """Predicted-vs-measured message line for one campaign point.

    Uses the static complexity model (:mod:`repro.check.complexity`)
    when the producing protocol is resolvable in this process; custom
    runtime-registered builders that are absent here are skipped
    quietly.
    """
    import numpy as np

    if point_json is None:
        return
    try:
        point = json.loads(point_json)
        protocol, n = point.get("protocol"), point.get("n")
        if not protocol or not n:
            return
        from .campaign.registry import resolve_protocol
        from .check import message_model

        spec = resolve_protocol(str(protocol)).resolve(int(n)).spec
        model = message_model(spec)
        mean, bound = model.predict_total(counts, periods, states=states)
    except Exception:
        return
    predicted = float(np.sum(mean))
    approx = " (approx: recording stride > 1)" if np.any(
        np.diff(np.asarray(periods)) > 1
    ) else ""
    if measured is None:
        print(f"messages: predicted {predicted:,.0f} total"
              f"{approx}; measured n/a (tensor predates "
              f"total_messages recording)")
        return
    total = float(np.sum(np.asarray(measured)))
    variance = float(np.sum(bound))
    if variance > 0:
        z = (total - predicted) / variance ** 0.5
        calibration = f"z = {z:+.2f}"
    else:
        calibration = (
            "exact" if total == predicted else "MISMATCH (deterministic "
            "charging predicted a different total)"
        )
    print(f"messages: predicted {predicted:,.0f} vs measured "
          f"{total:,.0f} over all trials ({calibration}){approx}")


def _render_failure_provenance(record: Dict) -> str:
    """One line per persisted UnitFailure, naming who lost the unit.

    Cluster-backend failures carry provenance (which worker died, how
    many re-dispatches the unit survived, how many heartbeat intervals
    were missed); pool/serial failures leave those fields empty and
    render without them -- legacy manifests predating the fields parse
    the same way.
    """
    label = record.get("label") or f"unit {record.get('index', '?')}"
    parts = [f"{label}: {record.get('error', 'unknown error')}"]
    attempts = record.get("attempts")
    if attempts:
        parts.append(f"after {attempts} attempt(s)")
    worker = record.get("worker", "")
    if worker:
        detail = [f"last worker {worker}"]
        redispatches = record.get("redispatches", 0)
        if redispatches:
            detail.append(f"re-dispatched {redispatches}x")
        misses = record.get("heartbeat_misses", 0)
        if misses:
            detail.append(f"{misses} heartbeat miss(es)")
        parts.append(f"[{', '.join(detail)}]")
    return " ".join(parts)


def cmd_analyze_campaign(args) -> int:
    """Offline summary tables from a campaign's saved tensors.

    Loads ``manifest.json`` plus each point's compressed ``.npz``
    (written by ``campaign --save-tensors``) and prints a per-point
    final-count summary table -- mean / std / min / quartiles / max
    over the trial axis -- without re-running anything.
    """
    directory = Path(args.tensors_dir)
    if not directory.is_dir():
        print(f"no such directory: {directory}", file=sys.stderr)
        return 1
    try:
        manifest = load_manifest(directory)
    except FileNotFoundError:
        print(f"{directory} has no manifest.json (was the campaign run "
              f"with --save-tensors?)", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        print(f"invalid manifest: {exc}", file=sys.stderr)
        return 1
    points = manifest.get("points", [])
    provenance = manifest.get("provenance", {})
    print(f"campaign {manifest.get('campaign', '?')!r}: "
          f"{len(points)} point(s)"
          + (f", created {provenance['created']}"
             if "created" in provenance else ""))
    if manifest.get("complete") is False:
        print(f"note: campaign is incomplete; finish it with "
              f"`python -m repro campaign --resume {directory}`")
    import numpy as np

    failures = 0
    for entry in points:
        tensor_name = entry.get("tensor")
        label = entry.get("label", f"point {entry.get('index', '?')}")
        status = entry.get("status", "done")
        print()
        if status != "done":
            print(f"{label}: not completed (status {status!r})")
            for record in entry.get("failures", []):
                print(f"  {_render_failure_provenance(record)}")
            failures += 1
            continue
        if not tensor_name:
            print(f"{label}: no tensor recorded")
            failures += 1
            continue
        path = directory / tensor_name
        if not path.is_file():
            print(f"{label}: missing tensor file {tensor_name}")
            failures += 1
            continue
        with np.load(path) as data:
            counts = data["counts"]          # (M, periods, S)
            states = [str(state) for state in data["states"]]
            periods = data["periods"]
            measured_messages = (
                data["total_messages"]
                if "total_messages" in data.files else None
            )
            point_json = (
                str(data["point_json"])
                if "point_json" in data.files else None
            )
        trials = counts.shape[0]
        print(f"{label}: {trials} trials x {counts.shape[1]} recorded "
              f"periods (last period {int(periods[-1])}), "
              f"tensor {tensor_name}")
        final = counts[:, -1, :]
        rows = []
        for index, state in enumerate(states):
            series = final[:, index]
            q25, q50, q75 = np.quantile(series, (0.25, 0.5, 0.75))
            rows.append((
                state,
                f"{series.mean():.1f}",
                f"{series.std():.1f}",
                f"{series.min():g}",
                f"{q25:g}", f"{q50:g}", f"{q75:g}",
                f"{series.max():g}",
            ))
        print(format_table(
            ["state", "mean", "std", "min", "q25", "median", "q75",
             "max"],
            rows,
        ))
        _print_message_check(
            point_json, counts, periods, states, measured_messages,
        )
    referenced = {entry.get("tensor") for entry in points
                  if entry.get("tensor")}
    orphans = sorted(path.name for path in directory.glob("*.npz")
                     if path.name not in referenced)
    if orphans:
        print()
        print(f"{len(orphans)} orphaned tensor file(s) not referenced "
              f"by the manifest (stale or from an interrupted run):")
        for name in orphans:
            print(f"  {name}")
        print(f"`python -m repro campaign --resume {directory}` "
              f"completes an interrupted campaign; orphans can be "
              f"deleted safely.")
    return 1 if failures else 0


def _campaign_spec_from_args(args) -> CampaignSpec:
    if args.config:
        # Grid axes come from the config file alone; rejecting axis
        # flags beats silently running with parameters the user thinks
        # they overrode.
        ignored = [
            flag for flag, values in (
                ("--protocol", args.protocol),
                ("--equations", args.equations),
                ("--n", args.n),
                ("--loss-rate", args.loss_rate),
                ("--scenario", args.scenario),
            ) if values
        ]
        if ignored:
            raise ValueError(
                f"{', '.join(ignored)} cannot be combined with --config; "
                f"edit the grid axes in the config file instead"
            )
        spec = CampaignSpec.from_json(Path(args.config).read_text())
        # Explicit flags override the config file's scalar settings.
        if args.name is not None:
            spec.name = args.name
        if args.trials is not None:
            spec.trials = args.trials
        if args.periods is not None:
            spec.periods = args.periods
        if args.seed is not None:
            spec.base_seed = args.seed
        if args.stride is not None:
            spec.stride = args.stride
        if args.mode is not None:
            spec.mode = args.mode
        if args.shards is not None:
            spec.shards = args.shards
        return spec
    protocols = list(args.protocol) + list(args.equations)
    return CampaignSpec(
        name=args.name if args.name is not None else "campaign",
        protocols=protocols or ["epidemic-pull"],
        group_sizes=args.n or [1000],
        loss_rates=args.loss_rate or [0.0],
        scenarios=args.scenario or ["none"],
        trials=args.trials if args.trials is not None else 8,
        periods=args.periods if args.periods is not None else 100,
        base_seed=args.seed if args.seed is not None else 0,
        stride=args.stride if args.stride is not None else 1,
        mode=args.mode if args.mode is not None else "batch",
        shards=args.shards if args.shards is not None else 1,
    )


def _fault_policy_from_args(args) -> Optional[FaultPolicy]:
    overrides = {}
    if getattr(args, "heartbeat", None) is not None:
        overrides["heartbeat_seconds"] = args.heartbeat
    if getattr(args, "heartbeat_misses", None) is not None:
        overrides["heartbeat_misses"] = args.heartbeat_misses
    if getattr(args, "max_dispatches", None) is not None:
        overrides["max_dispatches"] = args.max_dispatches
    try:
        return FaultPolicy(
            on_error=args.on_error,
            retries=args.retries,
            timeout_seconds=args.unit_timeout,
            **overrides,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid fault policy: {exc}")


def _add_backend_arguments(parser) -> None:
    """The executor-backend flags shared by ``run`` and ``campaign``."""
    parser.add_argument("--backend", choices=BACKENDS, default="pool",
                        help="work-unit executor: pool (default) is the "
                             "local process pool; cluster fans units "
                             "across process-isolated socket workers "
                             "with heartbeats, dead-worker re-dispatch "
                             "and elastic join (python -m repro worker) "
                             "-- results are bitwise identical either "
                             "way")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="SECONDS",
                        help="cluster backend: expected interval "
                             "between worker heartbeats (default 0.5)")
    parser.add_argument("--heartbeat-misses", type=int, default=None,
                        metavar="COUNT",
                        help="cluster backend: silent heartbeat "
                             "intervals before a worker is declared "
                             "dead and its unit re-dispatched "
                             "(default 4)")
    parser.add_argument("--max-dispatches", type=int, default=None,
                        metavar="COUNT",
                        help="cluster backend: workers a unit may be "
                             "dispatched to before its loss counts as "
                             "the unit's own terminal failure "
                             "(default 3)")


def cmd_worker(args) -> int:
    """Run one standalone cluster worker process (dials in over TCP)."""
    from .runtime.cluster import worker_main

    return worker_main(args.connect)


def cmd_campaign(args) -> int:
    if args.workers < 1:
        print(f"invalid campaign: workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 1
    for label, path in (("--replay", args.replay), ("--config", args.config)):
        if path and not Path(path).is_file():
            print(f"{label}: no such file: {path}", file=sys.stderr)
            return 1
    if args.replay:
        # A replay re-runs the stored points exactly as recorded;
        # rejecting other flags beats silently replaying with
        # parameters the user thinks they overrode.
        conflicting = [
            flag for flag, present in (
                ("--config", bool(args.config)),
                ("--protocol", bool(args.protocol)),
                ("--equations", bool(args.equations)),
                ("--n", bool(args.n)),
                ("--loss-rate", bool(args.loss_rate)),
                ("--scenario", bool(args.scenario)),
                ("--name", args.name is not None),
                ("--trials", args.trials is not None),
                ("--periods", args.periods is not None),
                ("--seed", args.seed is not None),
                ("--stride", args.stride is not None),
                ("--mode", args.mode is not None),
                ("--shards", args.shards is not None),
                ("--workers", args.workers != 1),
                ("--out", bool(args.out)),
                ("--save-tensors", bool(args.save_tensors)),
                ("--dry-run", args.dry_run),
                ("--resume", bool(args.resume)),
                ("--on-error", args.on_error != "raise"),
                ("--unit-timeout", args.unit_timeout is not None),
            ) if present
        ]
        if conflicting:
            print(
                f"invalid campaign: {', '.join(conflicting)} cannot be "
                f"combined with --replay; a replay re-runs the stored "
                f"points exactly as recorded",
                file=sys.stderr,
            )
            return 1
        try:
            stored = CampaignResult.from_json(Path(args.replay).read_text())
        except (ValueError, KeyError, TypeError) as exc:
            print(f"invalid results file: {exc}", file=sys.stderr)
            return 1
        failures = 0
        for result in stored.results:
            try:
                ok = verify_replay(result)
            except (ValueError, KeyError) as exc:
                # e.g. a protocol/scenario registered at record time
                # but unknown in this process.
                print(f"cannot replay {result.point.label}: {exc}",
                      file=sys.stderr)
                return 1
            status = "reproduced" if ok else "MISMATCH"
            print(f"{result.point.label}: {status}")
            failures += int(not ok)
        if failures:
            print(f"{failures} of {len(stored.results)} points failed to replay")
            return 1
        print(f"all {len(stored.results)} points reproduced bit-for-bit")
        return 0

    def progress(result):
        top = max(result.summary, key=lambda s: result.summary[s]["mean"])
        print(f"  {result.point.label}: {result.elapsed_seconds:.2f}s, "
              f"dominant state {top} "
              f"(mean {result.summary[top]['mean']:.1f})")

    if args.resume:
        # A resume continues the checkpointed campaign exactly as its
        # manifest records it; rejecting grid/axis flags beats silently
        # resuming with parameters the user thinks they overrode.
        conflicting = [
            flag for flag, present in (
                ("--config", bool(args.config)),
                ("--protocol", bool(args.protocol)),
                ("--equations", bool(args.equations)),
                ("--n", bool(args.n)),
                ("--loss-rate", bool(args.loss_rate)),
                ("--scenario", bool(args.scenario)),
                ("--name", args.name is not None),
                ("--trials", args.trials is not None),
                ("--periods", args.periods is not None),
                ("--seed", args.seed is not None),
                ("--stride", args.stride is not None),
                ("--mode", args.mode is not None),
                ("--shards", args.shards is not None),
                ("--save-tensors", bool(args.save_tensors)),
                ("--dry-run", args.dry_run),
            ) if present
        ]
        if conflicting:
            print(
                f"invalid campaign: {', '.join(conflicting)} cannot be "
                f"combined with --resume; the campaign's parameters come "
                f"from the checkpointed manifest (only --workers, "
                f"--backend, --out and the fault-policy flags apply)",
                file=sys.stderr,
            )
            return 1
        directory = Path(args.resume)
        try:
            manifest = load_manifest(directory)
        except FileNotFoundError:
            print(f"{directory} has no manifest.json; only campaigns run "
                  f"with --save-tensors are resumable", file=sys.stderr)
            return 1
        except (ValueError, KeyError) as exc:
            print(f"invalid manifest: {exc}", file=sys.stderr)
            return 1
        try:
            spec = CampaignSpec.from_dict(manifest["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            print(f"invalid manifest spec: {exc}", file=sys.stderr)
            return 1
        entries = manifest.get("points", [])
        done = sum(1 for e in entries if e.get("status") == "done")
        print(f"resuming campaign {spec.name!r} from {directory}: "
              f"{done} of {len(entries)} point(s) already complete")
        try:
            result = run_campaign(
                spec, workers=args.workers, progress=progress,
                resume=args.resume,
                fault_policy=_fault_policy_from_args(args),
                backend=args.backend,
            )
        except (ValueError, KeyError, RuntimeError) as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 1
        print(f"campaign complete: {len(result.results)} point result(s) "
              f"in {directory}")
        if result.failures:
            print(f"{len(result.failures)} work unit(s) failed terminally "
                  f"and were skipped; re-run with --resume to retry them",
                  file=sys.stderr)
        if args.out:
            Path(args.out).write_text(result.to_json())
            print(f"wrote {len(result.results)} point results to {args.out}")
        return 1 if result.failures else 0

    try:
        spec = _campaign_spec_from_args(args)
        points = spec.expand()
    except (ValueError, KeyError, TypeError) as exc:
        print(f"invalid campaign: {exc}", file=sys.stderr)
        return 1
    print(f"campaign {spec.name!r}: {len(points)} points x "
          f"{spec.trials} trials x {spec.periods} periods "
          f"(engine mode: {spec.mode})")
    if args.dry_run:
        print()
        print(format_table(
            ["protocol", "n", "loss", "scenario", "seed"],
            [(p.protocol, p.n, f"{p.loss_rate:g}", p.scenario, p.seed)
             for p in points],
        ))
        print()
        print(f"protocols available: {', '.join(available_protocols())}")
        print(f"scenarios available: {', '.join(available_scenarios())}")
        print("dry run: nothing executed")
        return 0

    result = run_campaign(
        spec, workers=args.workers, progress=progress,
        save_tensors=args.save_tensors,
        fault_policy=_fault_policy_from_args(args),
        backend=args.backend,
    )
    if args.out:
        Path(args.out).write_text(result.to_json())
        print(f"wrote {len(result.results)} point results to {args.out}")
    if args.save_tensors:
        print(f"wrote {len(result.results)} count tensors and "
              f"manifest.json to {args.save_tensors}")
    if result.failures:
        print(f"{len(result.failures)} work unit(s) failed terminally and "
              f"were skipped"
              + ("; re-run with --resume to retry them"
                 if args.save_tensors else ""),
              file=sys.stderr)
        return 1
    return 0


def _load_event_script(path: Path) -> List["ScriptedEvent"]:
    from .service.service import ScriptedEvent

    text = path.read_text()
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, list):
        records = payload
    else:
        records = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
    return [ScriptedEvent.from_dict(record) for record in records]


def cmd_serve(args) -> int:
    """Run a protocol population as a live service (see docs/service.md)."""
    import asyncio
    import signal

    import numpy as np

    from .service import (
        LiveConfig,
        LiveEngine,
        ProtocolService,
        ServiceCore,
        VirtualClock,
        WallClock,
        serve_tcp,
    )

    if args.virtual_clock and not args.max_periods:
        print("--virtual-clock needs --max-periods (virtual time has no "
              "external clients to wait for)", file=sys.stderr)
        return 1
    initial = _parse_bindings(args.initial, "initial") or None
    # An unseeded service still gets a concrete recorded seed -- the
    # event log must reconstruct the exact engine (same rule as
    # Experiment's root seed).
    seed = args.seed if args.seed is not None else spawn_seeds(None, 1)[0]
    try:
        config = LiveConfig(
            protocol=args.protocol, n=args.n, seed=seed,
            loss_rate=args.loss_rate, initial=initial,
        )
        live = LiveEngine(config)
    except KeyError:
        print(f"{args.protocol!r} is not a registered protocol; "
              f"available: {', '.join(available_protocols())}",
              file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid service config: {exc}", file=sys.stderr)
        return 1
    script = []
    if args.events:
        try:
            script = _load_event_script(Path(args.events))
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load event script {args.events}: {exc}",
                  file=sys.stderr)
            return 1
    try:
        core = ServiceCore(
            live, directory=Path(args.dir),
            snapshot_every=args.snapshot_every,
        )
    except FileExistsError as exc:
        print(f"{exc}", file=sys.stderr)
        return 1
    clock = VirtualClock() if args.virtual_clock else WallClock()
    service = ProtocolService(
        core, clock=clock, tick_seconds=args.tick_seconds,
        periods_per_tick=args.periods_per_tick, script=script,
        max_periods=args.max_periods or None,
    )

    async def amain() -> None:
        await service.start()
        server = None
        if not args.no_listen:
            server = await serve_tcp(service, args.host, args.port)
            port = server.sockets[0].getsockname()[1]
            print(f"serving {config.protocol!r} (n={config.n}, "
                  f"seed={config.seed}) on {args.host}:{port}", flush=True)
        else:
            print(f"running {config.protocol!r} (n={config.n}, "
                  f"seed={config.seed}), no listener", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(service.stop())
            )
        if isinstance(clock, VirtualClock):
            while not service.finished.is_set():
                await clock.advance(service.tick_seconds)
        else:
            await service.finished.wait()
        await service.stop()
        if server is not None:
            server.close()
            await server.wait_closed()

    asyncio.run(amain())
    print(f"stopped at period {core.live.period} after "
          f"{core.log.next_seq} logged event(s), "
          f"{core.snapshots_written} snapshot(s); replay with "
          f"`python -m repro replay {args.dir}`")
    return 0


def cmd_replay(args) -> int:
    """Replay a service directory and verify the logged state stream."""
    from .service import replay_directory
    from .store.eventlog import EventLogError
    from .store.snapshots import SnapshotError

    try:
        report = replay_directory(
            args.directory, from_snapshot=args.from_snapshot,
        )
    except FileNotFoundError as exc:
        print(f"not a service directory: {exc}", file=sys.stderr)
        return 1
    except (EventLogError, SnapshotError) as exc:
        print(f"cannot replay: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        anchor = (
            f"snapshot {report.from_snapshot}" if report.from_snapshot
            else "genesis (init record)"
        )
        print(f"replayed {report.replayed} event(s) from {anchor}")
        if report.torn_tail:
            print("note: dropped a torn final log line (crash-time write)")
    if report.mismatches:
        print(f"REPLAY MISMATCH: {len(report.mismatches)} divergence(s):",
              file=sys.stderr)
        for mismatch in report.mismatches[:10]:
            print(f"  {mismatch}", file=sys.stderr)
        return 1
    if not args.quiet:
        counts = report.final_counts()
        period = report.core.live.period if report.core else "?"
        print(f"final counts at period {period}: {counts}")
        print("replay verified: state stream is bit-identical to the log")
    return 0


# ----------------------------------------------------------------------
# Static analysis (repro.check)
# ----------------------------------------------------------------------
def _resolve_check_target(target: str, n: int):
    """A ``(spec, label)`` pair for a registry name or equations file.

    Registry names resolve through the campaign registry; anything
    else is treated as an equations file path.
    """
    from .campaign.registry import resolve_protocol

    if target in available_protocols():
        return resolve_protocol(target).resolve(n).spec, target
    return None, target


def cmd_check_spec(args) -> int:
    """Statically verify protocol specs (registry names or equations)."""
    from .check import (
        check_equations,
        check_spec,
        has_errors,
        render_findings,
    )

    targets = list(args.targets)
    if args.registry:
        targets = list(available_protocols()) + targets
    if not targets:
        print("nothing to check: pass equations files / protocol names "
              "or --registry", file=sys.stderr)
        return 2
    parameters = _parse_bindings(args.param, "param") or None
    failed = 0
    for target in targets:
        spec, label = _resolve_check_target(target, args.n)
        if spec is not None:
            findings = check_spec(spec, symbolic=True)
        else:
            spec, findings = check_equations(
                target,
                parameters=parameters,
                p=args.p,
                failure_rate=args.failure_rate,
                rewrite=not args.no_rewrite,
            )
        shown = findings if args.verbose else [
            f for f in findings if int(f.severity) > 0
        ]
        if shown or args.verbose:
            print(render_findings(shown, label=label))
        else:
            print(f"{label}: ok")
        if has_errors(findings):
            failed += 1
    if failed:
        print(f"{failed} of {len(targets)} target(s) failed "
              f"verification", file=sys.stderr)
    return 1 if failed else 0


def cmd_check_lint(args) -> int:
    """Run the determinism linter over source paths."""
    from .check import DEFAULT_ALLOWLIST, has_errors, render_findings
    from .check.lint import lint_paths

    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    for path in paths:
        if not path.exists():
            print(f"no such path: {path}", file=sys.stderr)
            return 2
    allowlist = (
        Path(args.allowlist) if args.allowlist is not None
        else DEFAULT_ALLOWLIST
    )
    findings = lint_paths(paths, allowlist_path=allowlist)
    if findings:
        print(render_findings(findings, label="lint"))
    else:
        print("lint: clean")
    return 1 if has_errors(findings) else 0


def cmd_check_complexity(args) -> int:
    """Print the symbolic message-complexity model for a protocol."""
    from .check import message_model, symbolic_message_model

    spec, label = _resolve_check_target(args.target, args.n)
    if spec is None:
        try:
            protocol = Protocol.from_equations(
                args.target,
                parameters=_parse_bindings(args.param, "param") or None,
                p=args.p,
                failure_rate=args.failure_rate,
            )
        except (OSError, ParseError, SynthesisError, ValueError) as exc:
            print(f"cannot build {args.target!r}: {exc}", file=sys.stderr)
            return 1
        spec = protocol.resolve(args.n).spec
    model = message_model(spec)
    print(f"{label}: per-period message cost (N = {args.n})")
    try:
        print(symbolic_message_model(spec).render())
    except ImportError:
        print("(sympy unavailable: numeric model only)")
    print(format_table(
        ["state", "messages/process/period"],
        [(s, f"{c:g}") for s, c in model.per_state_cost().items()],
    ))
    fractions = _parse_bindings(args.fraction, "fraction")
    if fractions:
        expected = model.expected_messages(fractions, args.n)
        at = ", ".join(f"{k}={v:g}" for k, v in fractions.items())
        print(f"expected messages/period at ({at}): {expected:.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Translate differential equations into distributed "
                    "protocols (Gupta, PODC 2004).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run",
        help="equations (or a protocol name) -> ensemble results, "
             "engine tier auto-selected",
    )
    p_run.add_argument(
        "target",
        help="equations file (one equation per line; '# param:' "
             "directives supply default rates) or a registered "
             "protocol name",
    )
    p_run.add_argument("--param", action="append", default=[],
                       metavar="NAME=VALUE",
                       help="bind a rate symbol (overrides '# param:' "
                            "directives in the file)")
    p_run.add_argument("--n", type=int, default=10_000, help="group size")
    p_run.add_argument("--trials", type=int, default=16,
                       help="ensemble width M (default 16)")
    p_run.add_argument("--periods", type=int, default=200,
                       help="protocol periods per trial (default 200)")
    p_run.add_argument("--seed", type=int, default=None, help="root seed")
    p_run.add_argument("--engine", choices=ENGINES, default="auto",
                       help="engine tier (default auto: serial for one "
                            "trial, batch for ensembles; 'agent' runs "
                            "the ensemble on the asynchronous DES tier)")
    p_run.add_argument("--scenario", default=None,
                       help="failure scenario name (see campaign "
                            "--dry-run for the registry); makes the "
                            "equilibrium check informational (never "
                            "exit 1)")
    p_run.add_argument("--loss-rate", type=float, default=0.0,
                       help="per-connection failure rate f (equations "
                            "targets are failure-compensated for it)")
    p_run.add_argument("--initial", action="append", default=[],
                       metavar="STATE=COUNT",
                       help="initial counts, overriding the protocol's "
                            "own start (equations targets default to "
                            "the stable ODE equilibrium; registry "
                            "targets to their registered start)")
    p_run.add_argument("--p", type=float, default=None,
                       help="normalizing constant (equations targets; "
                            "default: auto)")
    p_run.add_argument("--stride", type=int, default=1,
                       help="record every stride-th period")
    p_run.add_argument("--workers", type=int, default=1,
                       help="processes to fan the trial axis across "
                            "(batch/lockstep: trials split into "
                            "min(workers, trials) campaign-style shards, "
                            "and the shard count is part of the run's "
                            "stream identity; agent: whole trials fan "
                            "out, results are worker-independent)")
    p_run.add_argument("--on-error", choices=ON_ERROR_MODES,
                       default="raise",
                       help="work-unit fault policy on the execution "
                            "layer (agent tier, or --workers > 1): "
                            "raise aborts on the first unit failure, "
                            "retry re-runs the same payload with "
                            "capped backoff (bitwise identical), skip "
                            "keeps the surviving trials and reports "
                            "the losses")
    p_run.add_argument("--retries", type=int, default=2,
                       help="extra attempts per work unit under "
                            "--on-error retry/skip (default 2)")
    p_run.add_argument("--unit-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock bound per work-unit attempt; "
                            "an expired attempt fails like any other "
                            "fault")
    _add_backend_arguments(p_run)
    p_run.add_argument("--show-protocol", action="store_true",
                       help="print the synthesized state machine")
    p_run.add_argument("--plot", action="store_true",
                       help="ASCII plot of the ensemble-mean counts")
    p_run.set_defaults(func=cmd_run)

    def common(p):
        p.add_argument("equations", help="file with one equation per line")
        p.add_argument("--param", action="append", default=[],
                       metavar="NAME=VALUE", help="bind a rate symbol")

    p_classify = sub.add_parser("classify", help="Section 2 taxonomy")
    common(p_classify)
    p_classify.set_defaults(func=cmd_classify)

    p_synth = sub.add_parser("synthesize", help="emit the protocol")
    common(p_synth)
    p_synth.add_argument("--p", type=float, default=None,
                         help="normalizing constant (default: auto)")
    p_synth.add_argument("--failure-rate", type=float, default=0.0,
                         help="per-connection failure rate f to compensate")
    p_synth.add_argument("--no-rewrite", action="store_true",
                         help="fail instead of auto-rewriting")
    p_synth.add_argument("--no-tokenize", action="store_true",
                         help="fail on terms that would need tokens")
    p_synth.set_defaults(func=cmd_synthesize)

    p_analyze = sub.add_parser(
        "analyze", help="equilibria and stability of the equations"
    )
    common(p_analyze)
    p_analyze.add_argument("--trajectory", action="store_true",
                           help="ASCII plot of one integrated trajectory")
    p_analyze.add_argument("--initial", action="append", default=[],
                           metavar="VAR=FRACTION",
                           help="start point for --trajectory")
    p_analyze.add_argument("--t-end", type=float, default=50.0,
                           help="integration horizon for --trajectory")
    p_analyze.set_defaults(func=cmd_analyze)

    p_sim = sub.add_parser("simulate", help="run the synthesized protocol")
    common(p_sim)
    p_sim.add_argument("--p", type=float, default=None)
    p_sim.add_argument("--failure-rate", type=float, default=0.0)
    p_sim.add_argument("--n", type=int, default=10_000, help="group size")
    p_sim.add_argument("--periods", type=int, default=100)
    p_sim.add_argument("--seed", type=int, default=None)
    p_sim.add_argument("--initial", action="append", default=[],
                       metavar="STATE=COUNT",
                       help="initial counts (default: all in first state, "
                            "1 in second)")
    p_sim.add_argument("--plot", action="store_true",
                       help="ASCII plot of the state counts")
    p_sim.set_defaults(func=cmd_simulate)

    p_camp = sub.add_parser(
        "campaign",
        help="run a declarative experiment grid on the batch engine",
    )
    p_camp.add_argument("--config", help="JSON campaign spec file")
    p_camp.add_argument("--name", default=None,
                        help="campaign name (default 'campaign')")
    p_camp.add_argument("--protocol", action="append", default=[],
                        help="protocol name (repeatable; see --dry-run)")
    p_camp.add_argument("--equations", action="append", default=[],
                        metavar="FILE",
                        help="equations file added to the protocol axis "
                             "(repeatable; '# param:' directives supply "
                             "rates; resolved via resolve_protocol)")
    p_camp.add_argument("--n", action="append", type=int, default=[],
                        help="group size (repeatable)")
    p_camp.add_argument("--loss-rate", action="append", type=float,
                        default=[], help="connection failure rate (repeatable)")
    p_camp.add_argument("--scenario", action="append", default=[],
                        help="failure scenario name (repeatable)")
    p_camp.add_argument("--trials", type=int, default=None,
                        help="trials per point (default 8)")
    p_camp.add_argument("--periods", type=int, default=None,
                        help="periods per trial (default 100)")
    p_camp.add_argument("--seed", type=int, default=None,
                        help="campaign base seed (default 0)")
    p_camp.add_argument("--stride", type=int, default=None,
                        help="record every stride-th period (default 1)")
    p_camp.add_argument("--mode", choices=("batch", "lockstep"),
                        default=None,
                        help="batch engine RNG mode (default batch)")
    p_camp.add_argument("--shards", type=int, default=None,
                        help="split each point's trial axis into this "
                             "many independently seeded sub-ensembles "
                             "(default 1; they fan out across --workers)")
    p_camp.add_argument("--workers", type=int, default=1,
                        help="processes to fan shards/points across")
    p_camp.add_argument("--out", help="write results JSON here")
    p_camp.add_argument("--save-tensors", metavar="DIR",
                        help="also write each point's full (M, periods, "
                             "states) count tensor as a compressed .npz "
                             "into this directory")
    p_camp.add_argument("--dry-run", action="store_true",
                        help="print the expanded grid and exit")
    p_camp.add_argument("--replay", metavar="RESULTS_JSON",
                        help="re-run a stored results file and verify it "
                             "reproduces bit-for-bit")
    p_camp.add_argument("--resume", metavar="DIR",
                        help="continue an interrupted campaign from the "
                             "manifest checkpointed in DIR (written by "
                             "--save-tensors): completed points are "
                             "restored, only missing ones re-run, and "
                             "the final results are bitwise identical "
                             "to an uninterrupted run")
    p_camp.add_argument("--on-error", choices=ON_ERROR_MODES,
                        default="raise",
                        help="work-unit fault policy: raise aborts the "
                             "campaign on the first failure (completed "
                             "points stay checkpointed), retry re-runs "
                             "the same unit payload with capped backoff "
                             "(bitwise identical), skip isolates the "
                             "failure to its point and completes the "
                             "rest")
    p_camp.add_argument("--retries", type=int, default=2,
                        help="extra attempts per work unit under "
                             "--on-error retry/skip (default 2)")
    p_camp.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock bound per work-unit attempt")
    _add_backend_arguments(p_camp)
    p_camp.set_defaults(func=cmd_campaign)

    p_worker = sub.add_parser(
        "worker",
        help="run one standalone cluster worker that dials in to a "
             "--backend cluster coordinator (elastic mid-plan join)",
    )
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator address (pin the "
                               "coordinator's port with "
                               "REPRO_CLUSTER_PORT to make it known)")
    p_worker.set_defaults(func=cmd_worker)

    p_serve = sub.add_parser(
        "serve",
        help="run a protocol population continuously as a live service "
             "(event log + snapshots in --dir; newline-JSON over TCP)",
    )
    p_serve.add_argument("--protocol", required=True,
                         help="registry protocol name (the log must be "
                              "able to reconstruct the engine by name)")
    p_serve.add_argument("--n", type=int, default=1000, help="group size")
    p_serve.add_argument("--seed", type=int, default=None,
                         help="root seed (default: drawn and recorded "
                              "in the init event, so runs always replay)")
    p_serve.add_argument("--loss-rate", type=float, default=0.0,
                         help="per-connection failure rate")
    p_serve.add_argument("--initial", action="append", default=[],
                         metavar="STATE=COUNT",
                         help="initial counts, overriding the protocol's "
                              "registered start")
    p_serve.add_argument("--dir", required=True,
                         help="service state directory (events.jsonl + "
                              "snapshots); must not already hold a log")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0 = ephemeral, printed "
                              "on startup)")
    p_serve.add_argument("--no-listen", action="store_true",
                         help="no TCP endpoint; tick until --max-periods "
                              "or a signal")
    p_serve.add_argument("--tick-seconds", type=float, default=1.0,
                         help="clock seconds between protocol ticks")
    p_serve.add_argument("--periods-per-tick", type=int, default=1,
                         help="protocol periods advanced per tick")
    p_serve.add_argument("--snapshot-every", type=int, default=0,
                         help="checkpoint every this many periods "
                              "(0 = never)")
    p_serve.add_argument("--max-periods", type=int, default=0,
                         help="stop after this many periods (0 = run "
                              "until signalled)")
    p_serve.add_argument("--events", metavar="FILE",
                         help="scripted membership events: JSON list or "
                              "JSONL of {at_period, kind, ...} records, "
                              "applied when the period is reached")
    p_serve.add_argument("--virtual-clock", action="store_true",
                         help="drive ticks on a virtual clock as fast as "
                              "possible (deterministic batch mode; "
                              "needs --max-periods)")
    p_serve.set_defaults(func=cmd_serve)

    p_replay = sub.add_parser(
        "replay",
        help="replay a service directory's event log and verify the "
             "state stream reproduces bit-for-bit",
    )
    p_replay.add_argument("directory",
                          help="service directory written by 'serve'")
    p_replay.add_argument("--from-snapshot", action="store_true",
                          help="start from the latest intact snapshot "
                               "instead of the init record")
    p_replay.add_argument("--quiet", action="store_true",
                          help="no output; exit status only")
    p_replay.set_defaults(func=cmd_replay)

    p_analyze_campaign = sub.add_parser(
        "analyze-campaign",
        help="summarize a campaign's saved tensors "
             "(manifest.json + per-point .npz) offline",
    )
    p_analyze_campaign.add_argument(
        "tensors_dir",
        help="directory written by 'campaign --save-tensors'",
    )
    p_analyze_campaign.set_defaults(func=cmd_analyze_campaign)

    p_check = sub.add_parser(
        "check",
        help="static analysis: spec verifier, determinism linter, "
             "symbolic complexity model (no engine runs)",
    )
    check_sub = p_check.add_subparsers(dest="check_command", required=True)

    p_check_spec = check_sub.add_parser(
        "spec",
        help="verify specs: probability mass, conservation, "
             "reachability, mean-field consistency (exit 1 on errors)",
    )
    p_check_spec.add_argument(
        "targets", nargs="*",
        help="equations files and/or registry protocol names",
    )
    p_check_spec.add_argument(
        "--registry", action="store_true",
        help="also verify every registered protocol",
    )
    p_check_spec.add_argument("--n", type=int, default=1000,
                              help="group size used to resolve registry "
                                   "protocols (default 1000)")
    p_check_spec.add_argument("--param", action="append", default=[],
                              metavar="NAME=VALUE",
                              help="rate binding override (repeatable)")
    p_check_spec.add_argument("--p", type=float, default=None,
                              help="pin the normalizer instead of "
                                   "choosing it automatically")
    p_check_spec.add_argument("--failure-rate", type=float, default=0.0,
                              help="compensated connection failure rate")
    p_check_spec.add_argument("--no-rewrite", action="store_true",
                              help="fail instead of auto-rewriting "
                                   "unmappable systems")
    p_check_spec.add_argument("--verbose", action="store_true",
                              help="also print INFO findings")
    p_check_spec.set_defaults(func=cmd_check_spec)

    p_check_lint = check_sub.add_parser(
        "lint",
        help="determinism linter over source paths "
             "(default src/repro; exit 1 on errors)",
    )
    p_check_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    p_check_lint.add_argument("--allowlist", default=None,
                              help="allowlist file (default: "
                                   "tools/lint_allowlist.txt)")
    p_check_lint.set_defaults(func=cmd_check_lint)

    p_check_cx = check_sub.add_parser(
        "complexity",
        help="derive the per-period message-cost model from a spec",
    )
    p_check_cx.add_argument(
        "target",
        help="registry protocol name or equations file",
    )
    p_check_cx.add_argument("--n", type=int, default=1000,
                            help="group size (default 1000)")
    p_check_cx.add_argument("--param", action="append", default=[],
                            metavar="NAME=VALUE",
                            help="rate binding override (repeatable)")
    p_check_cx.add_argument("--p", type=float, default=None,
                            help="pin the normalizer")
    p_check_cx.add_argument("--failure-rate", type=float, default=0.0,
                            help="compensated connection failure rate")
    p_check_cx.add_argument("--fraction", action="append", default=[],
                            metavar="STATE=FRACTION",
                            help="evaluate expected messages/period at "
                                 "this state distribution (repeatable)")
    p_check_cx.set_defaults(func=cmd_check_complexity)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; the
        # conventional CLI response is a quiet exit, not a traceback.
        return 0


if __name__ == "__main__":
    sys.exit(main())
