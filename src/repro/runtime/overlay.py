"""Overlay graphs for partial-membership experiments.

The paper's footnote 1 notes that full membership can be reduced to a
logarithmic-size view using well-known techniques (e.g. SWIM-style
membership services).  These helpers build the corresponding overlay
graphs with networkx and expose them as neighbor arrays for
:class:`repro.runtime.membership.PartialMembership`.

The partial-membership ablation bench uses these to show that the
synthesized protocols behave near-identically when sampling over a
connected ``O(log n)``-degree random overlay instead of the full group.
"""

from __future__ import annotations

import math
from typing import List, Optional

import networkx as nx
import numpy as np


def log_degree(n: int, factor: float = 2.0, minimum: int = 3) -> int:
    """A connectivity-safe logarithmic view size for ``n`` processes."""
    return max(minimum, int(math.ceil(factor * math.log2(max(2, n)))))


def random_regular_overlay(
    n: int, degree: Optional[int] = None, seed: Optional[int] = None
) -> List[np.ndarray]:
    """A random regular overlay graph, as per-process neighbor arrays.

    Random regular graphs of degree >= 3 are expanders with high
    probability, so uniform sampling over neighborhoods approximates
    uniform sampling over the group well -- which is why the protocols
    tolerate partial views.
    """
    degree = degree if degree is not None else log_degree(n)
    if degree >= n:
        raise ValueError(f"degree {degree} must be < n={n}")
    if (degree * n) % 2:
        degree += 1  # regular graphs need an even degree sum
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return _neighbor_arrays(graph, n)


def erdos_renyi_overlay(
    n: int, mean_degree: Optional[float] = None, seed: Optional[int] = None
) -> List[np.ndarray]:
    """An Erdos-Renyi overlay with the given expected degree.

    Isolated vertices (possible at low degrees) are patched by wiring
    them to a uniformly random peer, so the result is usable as a
    membership view.
    """
    mean_degree = mean_degree if mean_degree is not None else float(log_degree(n))
    probability = min(1.0, mean_degree / max(1, n - 1))
    graph = nx.fast_gnp_random_graph(n, probability, seed=seed)
    rng = np.random.default_rng(seed)
    for node in range(n):
        if graph.degree(node) == 0:
            peer = int(rng.integers(0, n - 1))
            peer += peer >= node
            graph.add_edge(node, peer)
    return _neighbor_arrays(graph, n)


def overlay_stats(neighbors: List[np.ndarray]) -> dict:
    """Connectivity diagnostics of an overlay (degree stats, diameter)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(neighbors)))
    for node, peers in enumerate(neighbors):
        graph.add_edges_from((node, int(p)) for p in peers)
    degrees = [d for _, d in graph.degree()]
    connected = nx.is_connected(graph)
    return {
        "n": len(neighbors),
        "mean_degree": float(np.mean(degrees)),
        "min_degree": int(np.min(degrees)),
        "max_degree": int(np.max(degrees)),
        "connected": connected,
        "components": nx.number_connected_components(graph),
    }


def _neighbor_arrays(graph: nx.Graph, n: int) -> List[np.ndarray]:
    return [
        np.fromiter((int(p) for p in graph.neighbors(node)), dtype=np.int64)
        for node in range(n)
    ]
