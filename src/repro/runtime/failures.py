"""Failure injection for round-engine simulations.

The paper evaluates the protocols under three stress models, all of
which are provided here as :class:`~repro.runtime.round_engine.RoundEngine`
hooks:

* **massive failures** -- a random fraction of hosts crash at one
  instant (Figures 5, 6, 12);
* **crash-recovery background noise** -- per-period independent crash
  and recovery probabilities (the crash-stop / crash-recovery process
  model of Section 1);
* **directed attack** -- an adversary periodically snapshots the
  members of a state (e.g. current stashers) and crashes them, the
  threat scenario motivating migratory replication (Section 4.1,
  drawback (2) of static placement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .rng import make_generator
from .round_engine import RoundEngine


@dataclass
class MassiveFailure:
    """Crash a random fraction of alive hosts at one period.

    Figure 5: ``MassiveFailure(at_period=5000, fraction=0.5)``.
    """

    at_period: int
    fraction: float
    fired: bool = False
    victims: Optional[np.ndarray] = None

    def __call__(self, engine: RoundEngine) -> None:
        if not self.fired and engine.period >= self.at_period:
            self.victims = engine.crash_fraction(self.fraction)
            self.fired = True


@dataclass
class CrashRecoveryNoise:
    """Independent per-period crash and recovery probabilities.

    Each period, every alive host crashes with probability
    ``crash_rate`` and every crashed host recovers with probability
    ``recovery_rate`` (rejoining in the engine's recovery state with
    all volatile state lost -- for the endemic protocol that means
    replicas are gone).
    """

    crash_rate: float
    recovery_rate: float
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if not 0.0 <= self.crash_rate < 1.0:
            raise ValueError(f"crash rate must lie in [0, 1), got {self.crash_rate}")
        if not 0.0 <= self.recovery_rate <= 1.0:
            raise ValueError(
                f"recovery rate must lie in [0, 1], got {self.recovery_rate}"
            )
        self._rng = make_generator(self.seed)

    def __call__(self, engine: RoundEngine) -> None:
        if self.crash_rate > 0.0:
            alive_ids = np.nonzero(engine.alive)[0]
            heads = self._rng.binomial(len(alive_ids), self.crash_rate)
            if heads:
                engine.crash(self._rng.choice(alive_ids, heads, replace=False))
        if self.recovery_rate > 0.0:
            dead_ids = np.nonzero(~engine.alive)[0]
            heads = self._rng.binomial(len(dead_ids), self.recovery_rate)
            if heads:
                engine.recover(self._rng.choice(dead_ids, heads, replace=False))


@dataclass
class DirectedAttack:
    """An adversary that tracks and kills the members of one state.

    Every ``snapshot_interval`` periods the attacker records the hosts
    currently in ``target_state`` (e.g. the stashers of a file); after
    ``strike_delay`` further periods it crashes every host in that
    snapshot that is still alive.  ``strike_delay`` models the time
    needed to mount the attack -- the window during which migratory
    replication rotates responsibility away.

    ``max_strikes`` bounds the attacker's capacity (None = unbounded);
    ``kills`` accumulates the number of crashed hosts;
    ``replica_hits`` counts how many victims still held responsibility
    (were still in ``target_state``) when struck.
    """

    target_state: str
    snapshot_interval: int = 50
    strike_delay: int = 10
    max_strikes: Optional[int] = None
    kills: int = 0
    replica_hits: int = 0
    strikes: int = 0
    _pending: List = field(default_factory=list, repr=False)

    def __call__(self, engine: RoundEngine) -> None:
        due = [p for p in self._pending if p[0] <= engine.period]
        self._pending = [p for p in self._pending if p[0] > engine.period]
        for _, snapshot in due:
            self.strikes += 1
            still_alive = snapshot[engine.alive[snapshot]]
            if len(still_alive) == 0:
                continue
            state_id = engine.state_id(self.target_state)
            self.replica_hits += int(
                np.count_nonzero(engine.states[still_alive] == state_id)
            )
            engine.crash(still_alive)
            self.kills += len(still_alive)
        exhausted = (
            self.max_strikes is not None
            and self.strikes + len(self._pending) >= self.max_strikes
        )
        if not exhausted and engine.period % self.snapshot_interval == 0:
            members = engine.members_in(self.target_state)
            if len(members):
                self._pending.append(
                    (engine.period + self.strike_delay, members.copy())
                )


@dataclass
class OpenGroupJoins:
    """Continuous joins: the open-group setting of Section 5.2.

    The paper's system model assumes a closed group but notes that
    "simulations show that our protocols work in open groups".  This
    hook models an open group within the maximal-membership framework:
    the engine is created with a reserve of pre-crashed host ids (the
    not-yet-joined processes), and each period ``join_rate`` fraction of
    the remaining reserve joins, entering the engine's recovery state
    (receptive / undecided) with no prior protocol state.

    Combine with :class:`CrashRecoveryNoise` (recovery_rate=0) for
    simultaneous departures, giving full join/leave dynamics.
    """

    reserve: np.ndarray
    join_rate: float
    state: Optional[str] = None
    seed: Optional[int] = None
    joined: int = 0
    _cursor: int = field(default=0, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if not 0.0 < self.join_rate <= 1.0:
            raise ValueError(f"join rate must lie in (0, 1], got {self.join_rate}")
        self.reserve = np.asarray(self.reserve, dtype=np.int64)
        self._rng = make_generator(self.seed)

    def __call__(self, engine: RoundEngine) -> None:
        remaining = len(self.reserve) - self._cursor
        if remaining <= 0:
            return
        count = self._rng.binomial(remaining, self.join_rate)
        if count == 0:
            return
        joiners = self.reserve[self._cursor: self._cursor + count]
        self._cursor += count
        self.joined += count
        engine.recover(joiners, state=self.state)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.reserve)


@dataclass
class ScheduledRecovery:
    """Recover a fixed fraction of crashed hosts at one period.

    Useful for crash-recovery experiments that follow a massive
    failure: hosts come back with volatile state lost.
    """

    at_period: int
    fraction: float = 1.0
    seed: Optional[int] = None
    fired: bool = False

    def __call__(self, engine: RoundEngine) -> None:
        if self.fired or engine.period < self.at_period:
            return
        rng = make_generator(self.seed)
        dead = np.nonzero(~engine.alive)[0]
        count = int(round(self.fraction * len(dead)))
        if count:
            engine.recover(rng.choice(dead, count, replace=False))
        self.fired = True
