"""Process-parallel trial-sharded execution of batch ensembles.

The batch engine vectorizes the trial axis inside one process; this
module fans it out *across* processes.  An M-trial ensemble splits into
campaign-style shards -- independently seeded sub-ensembles whose seed
family is spawned from ``(seed, SHARD_DOMAIN)``, exactly the discipline
``repro.campaign`` uses for ``--shards`` -- each shard runs its own
:class:`~repro.runtime.batch_engine.BatchRoundEngine`, and the shard
recorders merge integer-exactly along the trial axis.  Because the
shard decomposition depends only on ``(seed, trials, shards)`` and the
merge is pure concatenation in shard order, the result is **bitwise
identical** however the shards are scheduled: one process, K workers,
or a later replay.

With ``shards == 1`` the executor degenerates to a plain
:class:`BatchRoundEngine` seeded with the root seed (no spawn), so
single-shard runs reproduce unsharded ones bit for bit -- again the
campaign's convention.

This is the engine-level sibling of campaign ``--shards``: campaigns
parallelize across grid points and shards of points, while
:class:`ShardedBatchExecutor` gives a *single* experiment (via
``Experiment(..., workers=K)`` / ``python -m repro run --workers``)
the same multi-core scaling.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..synthesis.protocol import ProtocolSpec
from .batch_engine import BatchMetricsRecorder, BatchRoundEngine, HookFactory
from .rng import spawn_seeds

__all__ = [
    "SHARD_DOMAIN",
    "ShardedBatchExecutor",
    "ShardedRunResult",
    "shard_layout",
]

#: Entropy domain separating shard seed families from everything else.
#: Shared with the campaign runner (one discipline, one constant), so
#: an executor shard and a campaign shard rooted at the same seed see
#: identical seed families.
SHARD_DOMAIN = 0x51A4


def shard_layout(
    seed: Optional[int], trials: int, shards: int
) -> List[Tuple[int, Optional[int]]]:
    """The deterministic ``(trials, seed)`` decomposition of an ensemble.

    Trials split as evenly as possible (earlier shards take the
    remainder); shard seeds are spawned from ``(seed, SHARD_DOMAIN)``.
    A single shard keeps the root seed untouched, so ``shards == 1``
    is bitwise-equal to not sharding at all.  The layout depends only
    on ``(seed, trials, shards)`` -- never on worker count -- which is
    what makes sharded runs reproducible and schedule-independent.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 1 <= shards <= trials:
        raise ValueError(
            f"shards must lie in [1, trials={trials}], got {shards}"
        )
    if shards == 1:
        return [(trials, seed)]
    base, extra = divmod(trials, shards)
    sizes = [base + (1 if k < extra else 0) for k in range(shards)]
    # An unseeded layout draws fresh OS entropy (SeedSequence rejects
    # None inside an entropy tuple, and there is no deterministic
    # family to domain-separate from anyway); such a run is not
    # replayable -- record the engines' trial seeds if that matters.
    entropy = None if seed is None else (seed, SHARD_DOMAIN)
    seeds = spawn_seeds(entropy, shards)
    return [
        (size, shard_seed)
        for size, shard_seed in zip(sizes, seeds)
        if size > 0
    ]


@dataclass
class _ShardJob:
    """Everything one worker needs to run one shard (picklable)."""

    spec: ProtocolSpec
    n: int
    trials: int
    initial: Dict[str, float]
    seed: Optional[int]
    connection_failure_rate: float
    mode: str
    periods: int
    stride: int
    track_transitions: bool
    member_log_state: Optional[str]
    record_initial: bool
    hook_factories: Tuple[HookFactory, ...]
    trial_offset: int


class _OffsetHookFactory:
    """Rebase a global-trial hook factory onto a shard's local indices.

    Executor hook factories are indexed by *global* trial (0..M-1), so
    scenario seed families and trial-dependent faults are identical
    however the ensemble is sharded; each shard wraps them with its
    trial offset.  A plain top-level class so jobs stay picklable.
    """

    def __init__(self, factory: HookFactory, offset: int):
        self._factory = factory
        self._offset = offset

    def __call__(self, trial: int):
        return self._factory(self._offset + trial)


def _run_shard(job: _ShardJob):
    """Worker entry point: run one shard, return its raw outcome."""
    engine = BatchRoundEngine(
        job.spec,
        n=job.n,
        trials=job.trials,
        initial=job.initial,
        seed=job.seed,
        connection_failure_rate=job.connection_failure_rate,
        mode=job.mode,
    )
    recorder = BatchMetricsRecorder(
        engine.state_names,
        job.trials,
        track_transitions=job.track_transitions,
        member_log_state=job.member_log_state,
        stride=job.stride,
    )
    engine.run(
        job.periods,
        recorder=recorder,
        hook_factories=[
            _OffsetHookFactory(factory, job.trial_offset)
            for factory in job.hook_factories
        ],
        record_initial=job.record_initial,
    )
    return (
        recorder,
        list(engine.trial_seeds),
        engine.counts_matrix(),
        engine.alive_counts(),
        np.asarray(engine.total_messages),
    )


def _run_indexed_shard(args):
    index, job = args
    return index, _run_shard(job)


@dataclass
class ShardedRunResult:
    """Merged outcome of a sharded ensemble run.

    Everything is ordered along the concatenated trial axis (shard 0's
    trials first), matching :attr:`trial_seeds`.
    """

    recorder: BatchMetricsRecorder
    trial_seeds: List[int]
    shard_seeds: List[Optional[int]]
    shard_sizes: List[int]
    final_counts_matrix: np.ndarray    # (M, S) int64
    final_alive: np.ndarray            # (M,) int64
    total_messages: np.ndarray         # (M,) int64

    @property
    def shards(self) -> int:
        return len(self.shard_sizes)


class ShardedBatchExecutor:
    """Run one batch ensemble as campaign-style shards, optionally pooled.

    Parameters
    ----------
    spec, n, trials, initial, seed, connection_failure_rate, mode:
        As for :class:`~repro.runtime.batch_engine.BatchRoundEngine`.
    shards:
        Number of independently seeded sub-ensembles (defaults to
        ``min(workers, trials)``).  Part of the run's identity: the
        same ``(seed, trials, shards)`` always yields the same merged
        tensors, regardless of ``workers``.
    workers:
        Processes to fan the shards across (1 = run them serially in
        this process -- same bits, no pool).

    Hook factories passed to :meth:`run` are indexed by *global* trial,
    so scenarios inject identical faults however the ensemble is
    sharded.  Unpicklable hook factories (closures, lambdas) force a
    serial in-process run with a warning instead of failing inside the
    pool -- the results are bitwise the same either way.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        n: int,
        trials: int,
        initial: Mapping[str, float],
        seed: Optional[int] = None,
        connection_failure_rate: float = 0.0,
        mode: str = "batch",
        shards: Optional[int] = None,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in ("batch", "lockstep"):
            raise ValueError(
                f"mode must be 'batch' or 'lockstep', got {mode!r}"
            )
        self.spec = spec
        self.n = n
        self.trials = trials
        self.initial = dict(initial)
        self.seed = seed
        self.connection_failure_rate = connection_failure_rate
        self.mode = mode
        self.workers = workers
        self.shards = shards if shards is not None else min(workers, trials)
        #: The deterministic decomposition (validates ``shards`` too).
        self.layout = shard_layout(seed, trials, self.shards)

    def run(
        self,
        periods: int,
        *,
        stride: int = 1,
        track_transitions: bool = True,
        member_log_state: Optional[str] = None,
        hook_factories: Sequence[HookFactory] = (),
        record_initial: bool = True,
    ) -> ShardedRunResult:
        """Run every shard and merge the recorders integer-exactly."""
        jobs: List[_ShardJob] = []
        offset = 0
        for size, shard_seed in self.layout:
            jobs.append(_ShardJob(
                spec=self.spec,
                n=self.n,
                trials=size,
                initial=self.initial,
                seed=shard_seed,
                connection_failure_rate=self.connection_failure_rate,
                mode=self.mode,
                periods=periods,
                stride=stride,
                track_transitions=track_transitions,
                member_log_state=member_log_state,
                record_initial=record_initial,
                hook_factories=tuple(hook_factories),
                trial_offset=offset,
            ))
            offset += size

        fan_out = self.workers > 1 and len(jobs) > 1
        if fan_out:
            try:
                pickle.dumps(jobs)
            except Exception:
                warnings.warn(
                    "sharded run has unpicklable hook factories; running "
                    f"the {len(jobs)} shards serially in-process instead "
                    f"of on {self.workers} workers (results are bitwise "
                    "identical either way)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                fan_out = False

        outputs: List = [None] * len(jobs)
        if fan_out:
            with multiprocessing.Pool(
                processes=min(self.workers, len(jobs))
            ) as pool:
                for index, output in pool.imap_unordered(
                    _run_indexed_shard, list(enumerate(jobs))
                ):
                    outputs[index] = output
        else:
            for index, job in enumerate(jobs):
                outputs[index] = _run_shard(job)

        recorders = [o[0] for o in outputs]
        return ShardedRunResult(
            recorder=BatchMetricsRecorder.merge(recorders),
            trial_seeds=[s for o in outputs for s in o[1]],
            shard_seeds=[seed for _, seed in self.layout],
            shard_sizes=[size for size, _ in self.layout],
            final_counts_matrix=np.concatenate(
                [o[2] for o in outputs], axis=0
            ),
            final_alive=np.concatenate([o[3] for o in outputs]),
            total_messages=np.concatenate([o[4] for o in outputs]),
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShardedBatchExecutor({self.spec.name!r}, n={self.n}, "
            f"trials={self.trials}, shards={self.shards}, "
            f"workers={self.workers}, mode={self.mode!r})"
        )
