"""Process-parallel ensembles: trial-sharded batch runs and agent DES runs.

The batch engine vectorizes the trial axis inside one process; this
module fans ensembles out *across* processes, as
:class:`~repro.runtime.exec.ExecutionPlan` instances over the unified
execution layer (:mod:`repro.runtime.exec`).  Two executors live here:

* :class:`ShardedBatchExecutor` -- an M-trial batch ensemble splits
  into campaign-style shards: independently seeded sub-ensembles whose
  seed family is spawned from ``(seed, SHARD_DOMAIN)``, exactly the
  discipline ``repro.campaign`` uses for ``--shards``.  Each shard
  (one work unit) runs its own
  :class:`~repro.runtime.batch_engine.BatchRoundEngine`, and the shard
  recorders merge integer-exactly along the trial axis.  Because the
  shard decomposition depends only on ``(seed, trials, shards)`` and
  the merge is pure concatenation in shard order, the result is
  **bitwise identical** however the shards are scheduled: one process,
  K workers, or a later replay.  With ``shards == 1`` the executor
  degenerates to a plain :class:`BatchRoundEngine` seeded with the
  root seed (no spawn), so single-shard runs reproduce unsharded ones
  bit for bit -- again the campaign's convention.
* :class:`AgentEnsemble` -- M seeded
  :class:`~repro.runtime.agent_sim.AgentSimulation` trials (the DES
  tier), one work unit per trial, with per-trial seeds from
  ``spawn_seeds(seed, M)`` -- the *same* trial-seed discipline the
  serial and lockstep tiers use.  The merge collects the per-trial
  recorders in trial order, so an agent ensemble is bitwise
  reproducible and schedule-independent by construction (each trial
  owns its whole RNG stream).

These are the engine-level siblings of campaign fan-out: campaigns
parallelize across grid points and shards of points, while the
executors here give a *single* experiment (via
``Experiment(..., workers=K)`` / ``python -m repro run --workers``)
the same multi-core scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..synthesis.protocol import ProtocolSpec
from .agent_sim import AgentSimulation
from .batch_engine import BatchMetricsRecorder, BatchRoundEngine, HookFactory
from .exec import (
    BACKENDS,
    ExecutionPlan,
    FaultPolicy,
    UnitExecutionError,
    UnitFailure,
    WorkUnit,
    run_plan,
)
from .metrics import MetricsRecorder
from .rng import spawn_seeds

__all__ = [
    "SHARD_DOMAIN",
    "AgentEnsemble",
    "AgentEnsembleResult",
    "ShardedBatchExecutor",
    "ShardedRunResult",
    "shard_layout",
]

#: Entropy domain separating shard seed families from everything else.
#: Shared with the campaign runner (one discipline, one constant), so
#: an executor shard and a campaign shard rooted at the same seed see
#: identical seed families.
SHARD_DOMAIN = 0x51A4


def shard_layout(
    seed: Optional[int], trials: int, shards: int
) -> List[Tuple[int, Optional[int]]]:
    """The deterministic ``(trials, seed)`` decomposition of an ensemble.

    Trials split as evenly as possible (earlier shards take the
    remainder); shard seeds are spawned from ``(seed, SHARD_DOMAIN)``.
    A single shard keeps the root seed untouched, so ``shards == 1``
    is bitwise-equal to not sharding at all.  The layout depends only
    on ``(seed, trials, shards)`` -- never on worker count -- which is
    what makes sharded runs reproducible and schedule-independent.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 1 <= shards <= trials:
        raise ValueError(
            f"shards must lie in [1, trials={trials}], got {shards}"
        )
    if shards == 1:
        return [(trials, seed)]
    base, extra = divmod(trials, shards)
    sizes = [base + (1 if k < extra else 0) for k in range(shards)]
    # An unseeded layout draws fresh OS entropy (SeedSequence rejects
    # None inside an entropy tuple, and there is no deterministic
    # family to domain-separate from anyway); such a run is not
    # replayable -- record the engines' trial seeds if that matters.
    entropy = None if seed is None else (seed, SHARD_DOMAIN)
    seeds = spawn_seeds(entropy, shards)
    layout = list(zip(sizes, seeds))
    # The layout length IS the shard count: replay identity (campaign
    # points record `shards`, not the layout) depends on every shard
    # being present and non-empty, so a violation must abort loudly --
    # silently dropping a shard would produce a layout that can never
    # be replayed from its recorded parameters.
    if (
        len(layout) != shards
        or any(size < 1 for size, _ in layout)
        or sum(size for size, _ in layout) != trials
    ):
        raise AssertionError(
            f"shard_layout invariant violated: expected {shards} "
            f"non-empty shards covering {trials} trials, got "
            f"{[size for size, _ in layout]}"
        )
    return layout


@dataclass
class _ShardJob:
    """Everything one worker needs to run one shard (picklable)."""

    spec: ProtocolSpec
    n: int
    trials: int
    initial: Dict[str, float]
    seed: Optional[int]
    connection_failure_rate: float
    mode: str
    periods: int
    stride: int
    track_transitions: bool
    member_log_state: Optional[str]
    record_initial: bool
    hook_factories: Tuple[HookFactory, ...]
    trial_offset: int


class _OffsetHookFactory:
    """Rebase a global-trial hook factory onto a shard's local indices.

    Executor hook factories are indexed by *global* trial (0..M-1), so
    scenario seed families and trial-dependent faults are identical
    however the ensemble is sharded; each shard wraps them with its
    trial offset.  A plain top-level class so jobs stay picklable.
    """

    def __init__(self, factory: HookFactory, offset: int):
        self._factory = factory
        self._offset = offset

    def __call__(self, trial: int):
        return self._factory(self._offset + trial)


def _run_shard(job: _ShardJob):
    """Worker entry point: run one shard, return its raw outcome."""
    engine = BatchRoundEngine(
        job.spec,
        n=job.n,
        trials=job.trials,
        initial=job.initial,
        seed=job.seed,
        connection_failure_rate=job.connection_failure_rate,
        mode=job.mode,
    )
    recorder = BatchMetricsRecorder(
        engine.state_names,
        job.trials,
        track_transitions=job.track_transitions,
        member_log_state=job.member_log_state,
        stride=job.stride,
    )
    engine.run(
        job.periods,
        recorder=recorder,
        hook_factories=[
            _OffsetHookFactory(factory, job.trial_offset)
            for factory in job.hook_factories
        ],
        record_initial=job.record_initial,
    )
    return (
        recorder,
        list(engine.trial_seeds),
        engine.counts_matrix(),
        engine.alive_counts(),
        np.asarray(engine.total_messages),
    )


@dataclass
class ShardedRunResult:
    """Merged outcome of a sharded ensemble run.

    Everything is ordered along the concatenated trial axis (shard 0's
    trials first), matching :attr:`trial_seeds`.  Under a skipping
    fault policy the failed shards' trials are simply absent from the
    merged axes (the surviving shards are untouched -- failure
    isolation cannot perturb their streams), and :attr:`failures`
    records what was lost; :attr:`shard_seeds`/:attr:`shard_sizes`
    always describe the *full* layout, so any failed shard can be
    re-run alone from its recorded seed.
    """

    recorder: BatchMetricsRecorder
    trial_seeds: List[int]
    shard_seeds: List[Optional[int]]
    shard_sizes: List[int]
    final_counts_matrix: np.ndarray    # (M, S) int64
    final_alive: np.ndarray            # (M,) int64
    total_messages: np.ndarray         # (M,) int64
    #: Terminal unit failures recorded by ``on_error="skip"`` (empty
    #: on a clean run; raising policies never construct a result).
    failures: List[UnitFailure] = field(default_factory=list)

    @property
    def shards(self) -> int:
        return len(self.shard_sizes)


class ShardedBatchExecutor:
    """Run one batch ensemble as campaign-style shards, optionally pooled.

    Parameters
    ----------
    spec, n, trials, initial, seed, connection_failure_rate, mode:
        As for :class:`~repro.runtime.batch_engine.BatchRoundEngine`.
    shards:
        Number of independently seeded sub-ensembles (defaults to
        ``min(workers, trials)``).  Part of the run's identity: the
        same ``(seed, trials, shards)`` always yields the same merged
        tensors, regardless of ``workers``.
    workers:
        Processes to fan the shards across (1 = run them serially in
        this process -- same bits, no pool).
    backend:
        Executor backend for the fan-out
        (:data:`~repro.runtime.exec.BACKENDS`): ``"pool"`` (default)
        or ``"cluster"`` -- socket workers with heartbeats and
        dead-worker re-dispatch, bitwise identical by the plan
        contract.

    Hook factories passed to :meth:`run` are indexed by *global* trial,
    so scenarios inject identical faults however the ensemble is
    sharded.  Unpicklable hook factories (closures, lambdas) force a
    serial in-process run with a warning instead of failing inside the
    pool -- the results are bitwise the same either way.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        n: int,
        trials: int,
        initial: Mapping[str, float],
        seed: Optional[int] = None,
        connection_failure_rate: float = 0.0,
        mode: str = "batch",
        shards: Optional[int] = None,
        workers: int = 1,
        backend: str = "pool",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in ("batch", "lockstep"):
            raise ValueError(
                f"mode must be 'batch' or 'lockstep', got {mode!r}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self.spec = spec
        self.n = n
        self.trials = trials
        self.initial = dict(initial)
        self.seed = seed
        self.connection_failure_rate = connection_failure_rate
        self.mode = mode
        self.workers = workers
        self.shards = shards if shards is not None else min(workers, trials)
        #: The deterministic decomposition (validates ``shards`` too).
        self.layout = shard_layout(seed, trials, self.shards)

    def run(
        self,
        periods: int,
        *,
        stride: int = 1,
        track_transitions: bool = True,
        member_log_state: Optional[str] = None,
        hook_factories: Sequence[HookFactory] = (),
        record_initial: bool = True,
        fault_policy: Optional[FaultPolicy] = None,
    ) -> ShardedRunResult:
        """Run every shard and merge the recorders integer-exactly.

        ``fault_policy`` governs shard faults (default: raise on the
        first failure, wrapped as a
        :class:`~repro.runtime.exec.UnitExecutionError` naming the
        shard).  ``on_error="retry"`` re-runs a failed shard's exact
        payload (same seed, same merge slot), so a retried run stays
        bitwise identical; ``on_error="skip"`` drops failed shards
        from the merged trial axis and records them on
        :attr:`ShardedRunResult.failures`.
        """
        jobs: List[_ShardJob] = []
        offset = 0
        for size, shard_seed in self.layout:
            jobs.append(_ShardJob(
                spec=self.spec,
                n=self.n,
                trials=size,
                initial=self.initial,
                seed=shard_seed,
                connection_failure_rate=self.connection_failure_rate,
                mode=self.mode,
                periods=periods,
                stride=stride,
                track_transitions=track_transitions,
                member_log_state=member_log_state,
                record_initial=record_initial,
                hook_factories=tuple(hook_factories),
                trial_offset=offset,
            ))
            offset += size

        def merge(outputs: List) -> ShardedRunResult:
            # Under a skipping policy, failed shards occupy their slot
            # as UnitFailure records; the survivors merge unchanged, in
            # shard order, so failure isolation never perturbs them.
            failures = [o for o in outputs if isinstance(o, UnitFailure)]
            landed = [o for o in outputs if not isinstance(o, UnitFailure)]
            if not landed:
                raise UnitExecutionError(
                    failures[0], f"sharded {self.spec.name!r} ensemble "
                    f"(all {len(outputs)} shards failed)"
                )
            recorders = [o[0] for o in landed]
            return ShardedRunResult(
                recorder=BatchMetricsRecorder.merge(recorders),
                trial_seeds=[s for o in landed for s in o[1]],
                shard_seeds=[seed for _, seed in self.layout],
                shard_sizes=[size for size, _ in self.layout],
                final_counts_matrix=np.concatenate(
                    [o[2] for o in landed], axis=0
                ),
                final_alive=np.concatenate([o[3] for o in landed]),
                total_messages=np.concatenate([o[4] for o in landed]),
                failures=failures,
            )

        plan = ExecutionPlan(
            units=[
                WorkUnit(runner=_run_shard, payload=job,
                         label=f"shard {index}")
                for index, job in enumerate(jobs)
            ],
            merge=merge,
            label=f"sharded {self.spec.name!r} ensemble",
        )
        return run_plan(plan, workers=self.workers,
                        fault_policy=fault_policy, backend=self.backend)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShardedBatchExecutor({self.spec.name!r}, n={self.n}, "
            f"trials={self.trials}, shards={self.shards}, "
            f"workers={self.workers}, mode={self.mode!r})"
        )


# ----------------------------------------------------------------------
# Agent-tier (DES) ensembles
# ----------------------------------------------------------------------
@dataclass
class _AgentTrialJob:
    """Everything one worker needs to run one DES trial (picklable)."""

    spec: ProtocolSpec
    n: int
    initial: Dict[str, float]
    seed: int
    period: float
    loss_rate: float
    clock_drift_std: float
    periods: float
    sample_every: float
    stride: int
    track_transitions: bool
    record_initial: bool
    hook_factories: Tuple[Callable[[int], Callable], ...]
    trial: int


def _run_agent_trial(job: _AgentTrialJob) -> MetricsRecorder:
    """Worker entry point: run one asynchronous trial, return its recorder."""
    simulation = AgentSimulation(
        job.spec,
        job.n,
        job.initial,
        period=job.period,
        seed=job.seed,
        loss_rate=job.loss_rate,
        clock_drift_std=job.clock_drift_std,
    )
    recorder = MetricsRecorder(
        job.spec.states,
        track_transitions=job.track_transitions,
        stride=job.stride,
    )
    simulation.run(
        job.periods,
        recorder=recorder,
        sample_every=job.sample_every,
        hooks=[factory(job.trial) for factory in job.hook_factories],
        record_initial=job.record_initial,
    )
    return recorder


@dataclass
class AgentEnsembleResult:
    """Outcome of an agent-tier ensemble: per-trial recorders, trial order.

    Under a skipping fault policy, failed trials are absent from
    :attr:`recorders`/:attr:`trial_seeds` (which stay aligned) and
    recorded on :attr:`failures`; each failure's ``index`` is the
    global trial, so the lost trial's seed is recoverable from the
    ensemble's spawned family.
    """

    recorders: List[MetricsRecorder]
    trial_seeds: List[int]
    #: Terminal unit failures recorded by ``on_error="skip"``.
    failures: List[UnitFailure] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return len(self.recorders)


class AgentEnsemble:
    """M independently seeded :class:`AgentSimulation` trials, optionally pooled.

    The DES tier's ensemble driver: trial ``m`` runs
    ``AgentSimulation(..., seed=spawn_seeds(seed, M)[m])`` -- the exact
    trial-seed family the serial and lockstep tiers use -- so an agent
    ensemble shares the repository-wide seed discipline, and re-running
    any single trial serially reproduces it bit for bit.  Each trial is
    one work unit of an :class:`~repro.runtime.exec.ExecutionPlan`;
    since every trial owns its whole RNG stream, the merged result is
    trivially **bitwise identical** however the trials are scheduled
    (serial, pooled, any worker count).

    Parameters
    ----------
    spec, n, initial, period, loss_rate, clock_drift_std:
        As for :class:`~repro.runtime.agent_sim.AgentSimulation`.
    trials:
        Ensemble width M.
    seed:
        Root seed for the spawned per-trial seed family.
    workers:
        Processes to fan the trials across (clamped to ``trials``;
        1 = run them serially in this process -- same bits, no pool).
    backend:
        Executor backend (:data:`~repro.runtime.exec.BACKENDS`):
        ``"pool"`` (default) or ``"cluster"``.

    Hook factories passed to :meth:`run` are called with the global
    trial index and must return a per-period hook ``hook(simulation)``
    (see :meth:`AgentSimulation.run`); unpicklable factories degrade to
    a serial in-process run with a warning, bitwise the same.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        n: int,
        trials: int,
        initial: Mapping[str, float],
        seed: Optional[int] = None,
        *,
        period: float = 1.0,
        loss_rate: float = 0.0,
        clock_drift_std: float = 0.0,
        workers: int = 1,
        backend: str = "pool",
    ):
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self.spec = spec
        self.n = n
        self.trials = trials
        self.initial = dict(initial)
        self.seed = seed
        self.period = period
        self.loss_rate = loss_rate
        self.clock_drift_std = clock_drift_std
        self.workers = min(workers, trials)
        self.trial_seeds = spawn_seeds(seed, trials)

    def run(
        self,
        periods: float,
        *,
        sample_every: float = 1.0,
        stride: int = 1,
        track_transitions: bool = True,
        record_initial: bool = True,
        hook_factories: Sequence[Callable[[int], Callable]] = (),
        fault_policy: Optional[FaultPolicy] = None,
    ) -> AgentEnsembleResult:
        """Run every trial and collect the recorders in trial order.

        ``fault_policy`` governs trial faults exactly as on
        :meth:`ShardedBatchExecutor.run`: retries re-run the same
        seeded trial (bitwise identical), and ``on_error="skip"``
        yields the surviving trials plus recorded
        :class:`~repro.runtime.exec.UnitFailure` entries.
        """
        jobs = [
            _AgentTrialJob(
                spec=self.spec,
                n=self.n,
                initial=self.initial,
                seed=trial_seed,
                period=self.period,
                loss_rate=self.loss_rate,
                clock_drift_std=self.clock_drift_std,
                periods=periods,
                sample_every=sample_every,
                stride=stride,
                track_transitions=track_transitions,
                record_initial=record_initial,
                hook_factories=tuple(hook_factories),
                trial=trial,
            )
            for trial, trial_seed in enumerate(self.trial_seeds)
        ]
        def merge(outputs: List) -> AgentEnsembleResult:
            failures = [o for o in outputs if isinstance(o, UnitFailure)]
            survivors = [
                (trial, o) for trial, o in enumerate(outputs)
                if not isinstance(o, UnitFailure)
            ]
            if not survivors:
                raise UnitExecutionError(
                    failures[0], f"agent ensemble {self.spec.name!r} "
                    f"(all {len(outputs)} trials failed)"
                )
            return AgentEnsembleResult(
                recorders=[o for _, o in survivors],
                trial_seeds=[self.trial_seeds[t] for t, _ in survivors],
                failures=failures,
            )

        plan = ExecutionPlan(
            units=[
                WorkUnit(runner=_run_agent_trial, payload=job,
                         label=f"trial {job.trial}")
                for job in jobs
            ],
            merge=merge,
            label=f"agent ensemble {self.spec.name!r}",
        )
        return run_plan(plan, workers=self.workers,
                        fault_policy=fault_policy, backend=self.backend)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AgentEnsemble({self.spec.name!r}, n={self.n}, "
            f"trials={self.trials}, workers={self.workers})"
        )
