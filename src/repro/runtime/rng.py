"""Random number sources.

The paper's experiments use the Mersenne Twister generator; we wrap
numpy's ``MT19937`` bit generator behind a small factory so every
simulation component draws from an explicitly seeded, independently
spawned stream.  Independent streams keep results reproducible even
when components are added or reordered (failure injection must not
perturb the protocol's sampling sequence).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


def make_generator(seed: Optional[int] = None) -> np.random.Generator:
    """A Mersenne Twister backed numpy Generator."""
    return np.random.Generator(np.random.MT19937(seed))


class RandomSource:
    """A seedable factory of independent Mersenne Twister streams.

    Each call to :meth:`stream` derives a child seed from the root
    ``SeedSequence``; streams are statistically independent and stable
    under the order they are requested in.
    """

    def __init__(self, seed: Optional[int] = None):
        self._sequence = np.random.SeedSequence(seed)
        self._children: Iterator[np.random.SeedSequence] = iter(())
        self.seed = seed
        self.root = np.random.Generator(np.random.MT19937(self._sequence))
        self._spawned = 0

    def stream(self, label: str = "") -> np.random.Generator:
        """Spawn a new independent generator (label is documentation)."""
        child = self._sequence.spawn(1)[0]
        self._spawned += 1
        return np.random.Generator(np.random.MT19937(child))

    @property
    def spawned(self) -> int:
        """Number of streams handed out so far."""
        return self._spawned

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RandomSource(seed={self.seed}, spawned={self._spawned})"


def sample_other(
    rng: np.random.Generator, n: int, actors: np.ndarray, k: int
) -> np.ndarray:
    """Uniform samples from the group, excluding each actor itself.

    The paper's actions contact processes "selected uniformly at random
    from the group" other than the caller.  Drawing from ``n - 1`` slots
    and shifting the values at or above the caller's own id gives an
    exact uniform sample over the other ``n - 1`` processes with no
    rejection loop.

    Returns an ``(len(actors), k)`` array of target ids.
    """
    if len(actors) == 0:
        return np.empty((0, k), dtype=np.int64)
    if n < 2:
        raise ValueError("need at least two processes to sample others")
    targets = rng.integers(0, n - 1, size=(len(actors), k))
    return targets + (targets >= actors[:, None])
