"""Random number sources.

The paper's experiments use the Mersenne Twister generator; we wrap
numpy's ``MT19937`` bit generator behind a small factory so every
simulation component draws from an explicitly seeded, independently
spawned stream.  Independent streams keep results reproducible even
when components are added or reordered (failure injection must not
perturb the protocol's sampling sequence).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np


def make_generator(seed: Optional[int] = None) -> np.random.Generator:
    """A Mersenne Twister backed numpy Generator."""
    return np.random.Generator(np.random.MT19937(seed))


def spawn_seeds(seed, m: int) -> List[int]:
    """Derive ``m`` independent integer trial seeds from a root seed.

    ``seed`` may be an int, ``None``, or a sequence of ints (the
    ``SeedSequence`` entropy convention) -- passing e.g.
    ``(root_seed, domain_tag)`` derives a seed family that is
    independent of the family for the bare root seed, which is how the
    campaign runner keeps scenario randomness out of protocol streams.

    The multi-trial machinery (``BatchRoundEngine`` in lockstep mode,
    the campaign runner, batched extinction measurement) runs ensembles
    of simulations whose per-trial engines each need their own seed.
    These are produced by hashing the root seed through numpy's
    ``SeedSequence`` -- the derived 64-bit words are deterministic and
    platform-stable for a fixed root seed, and the per-trial streams
    built from them are statistically independent of each other and of
    the root's own streams (each trial seed is re-hashed through its own
    ``SeedSequence`` when the trial engine is constructed).

    A root seed of ``None`` draws fresh OS entropy: the trial seeds are
    still independent, but the ensemble is not reproducible (record the
    returned seeds if replay matters).
    """
    if m < 0:
        raise ValueError(f"cannot spawn {m} seeds")
    if m == 0:
        return []
    words = np.random.SeedSequence(seed).generate_state(m, np.uint64)
    return [int(w) for w in words]


class RandomSource:
    """A seedable factory of independent Mersenne Twister streams.

    Each call to :meth:`stream` derives a child seed from the root
    ``SeedSequence``; streams are statistically independent and stable
    under the order they are requested in.
    """

    def __init__(self, seed: Optional[int] = None):
        self._sequence = np.random.SeedSequence(seed)
        self._children: Iterator[np.random.SeedSequence] = iter(())
        self.seed = seed
        self.root = np.random.Generator(np.random.MT19937(self._sequence))
        self._spawned = 0

    def stream(self, label: str = "") -> np.random.Generator:
        """Spawn a new independent generator (label is documentation)."""
        child = self._sequence.spawn(1)[0]
        self._spawned += 1
        return np.random.Generator(np.random.MT19937(child))

    def spawn(self, m: int) -> List[int]:
        """``m`` trial seeds for independent child simulations.

        Unlike :meth:`stream` (which hands out generators for the
        components of *one* simulation), ``spawn`` derives integer seeds
        for *whole child simulations* -- e.g. the trials of a
        :class:`~repro.runtime.batch_engine.BatchRoundEngine` ensemble.
        The result only depends on the root seed, never on how many
        streams have already been handed out, so engines and ensembles
        constructed from the same root seed agree on their trial seeds.
        """
        return spawn_seeds(self.seed, m)

    @property
    def spawned(self) -> int:
        """Number of streams handed out so far."""
        return self._spawned

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RandomSource(seed={self.seed}, spawned={self._spawned})"


def sample_other(
    rng: np.random.Generator, n: int, actors: np.ndarray, k: int
) -> np.ndarray:
    """Uniform samples from the group, excluding each actor itself.

    The paper's actions contact processes "selected uniformly at random
    from the group" other than the caller.  Drawing from ``n - 1`` slots
    and shifting the values at or above the caller's own id gives an
    exact uniform sample over the other ``n - 1`` processes with no
    rejection loop.

    Returns an ``(len(actors), k)`` array of target ids.
    """
    if len(actors) == 0:
        return np.empty((0, k), dtype=np.int64)
    if n < 2:
        raise ValueError("need at least two processes to sample others")
    targets = rng.integers(0, n - 1, size=(len(actors), k))
    return targets + (targets >= actors[:, None])
