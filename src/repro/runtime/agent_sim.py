"""The asynchronous agent-level simulator.

:class:`AgentSimulation` runs a protocol with one DES coroutine per
process over an unreliable latency network -- the high-fidelity engine
used to validate that the synchronous
:class:`~repro.runtime.round_engine.RoundEngine` results are not
artifacts of synchrony.  Per the paper's system model:

* protocol periods start at arbitrary times at different processes;
* clocks may drift (per-agent clock-speed factors); the analysis holds
  for the group-average period;
* the network delays and drops messages.

This is the bottom (most faithful, slowest) tier of the three-engine
hierarchy:

* **agent sim** (this module) -- one coroutine per process, arbitrary
  period phases, latency, drift.  Use it to check that a result
  survives asynchrony; groups up to a few thousand processes.
* **round engine** (:mod:`~repro.runtime.round_engine`) -- one
  vectorized synchronous instance.  Use it for single-run experiments
  at the paper's 100,000-host scale.
* **batch engine** (:mod:`~repro.runtime.batch_engine`) -- M trials in
  one ``(M, N)`` array.  Use it whenever the claim is an ensemble
  statement (means, spreads, frequencies) or a campaign grid cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..synthesis.protocol import ProtocolSpec
from .agent import Agent
from .des import Environment
from .membership import FullMembership, PartialMembership
from .metrics import MetricsRecorder
from .network import LatencyModel, Network
from .rng import RandomSource


class AgentSimulation:
    """Asynchronous simulation of one protocol over N agent processes.

    Parameters
    ----------
    spec:
        Protocol to execute.
    n:
        Number of processes.
    initial:
        Initial state distribution (counts summing to ``n`` or
        fractions summing to 1).
    period:
        Nominal protocol period duration (simulation time units).
    loss_rate:
        Per-connection failure probability of the network.
    latency:
        Round-trip latency model (defaults to ~3% of a period).
    clock_drift_std:
        Standard deviation of per-agent clock-speed factors around 1.
    membership:
        Optional :class:`PartialMembership` for footnote-1 experiments;
        the default is full membership.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        n: int,
        initial: Mapping[str, float],
        *,
        period: float = 1.0,
        seed: Optional[int] = None,
        loss_rate: float = 0.0,
        latency: Optional[LatencyModel] = None,
        clock_drift_std: float = 0.0,
        membership: Optional[PartialMembership] = None,
    ):
        if n < 2:
            raise ValueError(f"need at least 2 processes, got {n}")
        self.spec = spec
        self.n = n
        self.period_duration = period
        self.env = Environment()
        source = RandomSource(seed)
        self.rng = source.stream("agents")
        self.network = Network(
            self.env,
            source.stream("network"),
            loss_rate=loss_rate,
            latency=latency or LatencyModel(base=0.01 * period, jitter_mean=0.02 * period),
        )
        self.membership = membership or FullMembership(n, source.stream("membership"))
        self.transition_counts: Dict[Tuple[str, str], int] = {}
        self._transition_log: List[Tuple[float, Tuple[str, str]]] = []

        states = self._assign_initial(initial, source.stream("initial"))
        drift_rng = source.stream("clocks")
        self.agents: List[Agent] = []
        for agent_id in range(n):
            clock = 1.0
            if clock_drift_std > 0.0:
                clock = max(0.1, float(drift_rng.normal(1.0, clock_drift_std)))
            agent = Agent(
                self,
                agent_id,
                state=states[agent_id],
                period=period,
                clock_factor=clock,
                phase=float(self.rng.random() * period),
            )
            self.agents.append(agent)
            self.network.register(agent_id, agent.handle)
            self.env.spawn(agent.run())

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _assign_initial(
        self, initial: Mapping[str, float], rng: np.random.Generator
    ) -> List[str]:
        names = list(self.spec.states)
        unknown = set(initial) - set(names)
        if unknown:
            raise ValueError(f"unknown states {sorted(unknown)}")
        values = np.array([float(initial.get(s, 0.0)) for s in names])
        total = values.sum()
        if abs(total - 1.0) < 1e-6:
            values *= self.n
        elif abs(total - self.n) > max(1.0, 1e-6 * self.n):
            raise ValueError(
                f"initial distribution sums to {total}; expected 1 or {self.n}"
            )
        counts = np.floor(values).astype(int)
        for index in np.argsort(-(values - np.floor(values)))[: self.n - counts.sum()]:
            counts[index] += 1
        assignment = [
            name for name, count in zip(names, counts) for _ in range(count)
        ]
        rng.shuffle(assignment)
        return assignment

    # ------------------------------------------------------------------
    # Services used by agents
    # ------------------------------------------------------------------
    def sample_peer(self, caller: int) -> int:
        return int(self.membership.sample(caller, 1)[0])

    def oracle_member(self, state: str) -> Optional[int]:
        """A uniformly random alive agent currently in ``state``.

        Models the membership-service-based token routing of Section 6
        (e.g. SWIM); None when no such process exists (token dropped).
        """
        candidates = [
            a.id for a in self.agents if a.alive and a.state == state
        ]
        if not candidates:
            return None
        return int(self.rng.choice(candidates))

    def note_transition(self, edge: Tuple[str, str]) -> None:
        self.transition_counts[edge] = self.transition_counts.get(edge, 0) + 1
        self._transition_log.append((self.env.now, edge))

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash(self, agent_ids) -> None:
        for agent_id in np.atleast_1d(agent_ids):
            agent = self.agents[int(agent_id)]
            agent.alive = False
            self.network.unregister(int(agent_id))

    def crash_fraction(self, fraction: float) -> np.ndarray:
        alive = [a.id for a in self.agents if a.alive]
        count = int(round(fraction * len(alive)))
        victims = self.rng.choice(np.array(alive), size=count, replace=False)
        self.crash(victims)
        return victims

    def recover(self, agent_ids, state: Optional[str] = None) -> None:
        """Crash-recovery: the agent rejoins with volatile state lost."""
        for agent_id in np.atleast_1d(agent_ids):
            agent = self.agents[int(agent_id)]
            if agent.alive:
                continue
            agent.alive = True
            agent.state = state or self.spec.states[0]
            self.network.register(int(agent_id), agent.handle)
            self.env.spawn(agent.run())

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def period(self) -> int:
        """Elapsed *nominal* periods (the group-average clock).

        Matches the round engines' convention -- 0 before the first
        period runs -- so period-triggered hooks
        (:class:`~repro.runtime.failures.MassiveFailure` and friends)
        fire at the same nominal time on every tier.
        """
        return int(round(self.env.now / self.period_duration))

    @property
    def alive(self) -> np.ndarray:
        """Per-agent alive flags as a read-only ``(n,)`` bool snapshot.

        The round engines' hook surface, rebuilt on access (O(n), fine
        at DES scales): stock failure hooks index it
        (``np.nonzero(engine.alive)``) and then mutate through
        :meth:`crash` / :meth:`recover` -- writing to this snapshot has
        no effect, exactly like the batch engine's row views.
        """
        return np.array([agent.alive for agent in self.agents])

    @property
    def states(self) -> np.ndarray:
        """Per-agent state ids as a read-only ``(n,)`` int8 snapshot."""
        index = {name: i for i, name in enumerate(self.spec.states)}
        return np.array(
            [index[agent.state] for agent in self.agents], dtype=np.int8
        )

    def state_id(self, name: str) -> int:
        return self.spec.states.index(name)

    def members_in(self, state: str) -> np.ndarray:
        """Ids of alive agents currently in ``state`` (hook surface)."""
        return np.array([
            agent.id for agent in self.agents
            if agent.alive and agent.state == state
        ], dtype=np.int64)

    def counts(self) -> Dict[str, int]:
        out = {s: 0 for s in self.spec.states}
        for agent in self.agents:
            if agent.alive:
                out[agent.state] += 1
        return out

    def fractions(self) -> Dict[str, float]:
        alive = sum(1 for a in self.agents if a.alive)
        counts = self.counts()
        if alive == 0:
            return {s: 0.0 for s in self.spec.states}
        return {s: counts[s] / alive for s in self.spec.states}

    def alive_count(self) -> int:
        return sum(1 for a in self.agents if a.alive)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self,
        periods: float,
        recorder: Optional[MetricsRecorder] = None,
        sample_every: float = 1.0,
        hooks: Sequence[Callable[["AgentSimulation"], None]] = (),
        record_initial: bool = True,
    ) -> MetricsRecorder:
        """Advance the simulation ``periods`` nominal periods.

        Counts are sampled every ``sample_every`` periods into the
        recorder (period index = elapsed nominal periods).
        ``record_initial`` stores the period-0 state before anything
        runs -- the round engines' convention, so the agent tier's
        recordings align period-for-period with theirs for cross-tier
        comparison.

        ``hooks`` are called with the simulation before every sampling
        step, mirroring :meth:`RoundEngine.run` (with
        ``sample_every != 1`` they fire once per *sample*, at nominal
        period resolution).  The fault surface matches the round
        engines': :attr:`period`, :meth:`crash`,
        :meth:`crash_fraction`, :meth:`recover`, plus read-only
        :attr:`alive` / :attr:`states` snapshots, :meth:`state_id` and
        :meth:`members_in` -- so the stock failure hooks
        (:class:`~repro.runtime.failures.MassiveFailure`,
        :class:`~repro.runtime.failures.CrashRecoveryNoise`,
        :class:`~repro.runtime.failures.DirectedAttack`, ...) work
        unchanged.  Hooks that *write* the round engines' arrays
        directly (rather than mutating via crash/recover) do not apply
        to this tier.
        """
        if recorder is None:
            recorder = MetricsRecorder(self.spec.states)
        start = self.env.now
        if record_initial and self.period == 0:
            recorder.record(
                period=0,
                counts=self.counts(),
                alive=self.alive_count(),
                transitions={},
            )
        steps = int(round(periods / sample_every))
        last_counts: Dict[Tuple[str, str], int] = dict(self.transition_counts)
        for step in range(1, steps + 1):
            for hook in hooks:
                hook(self)
            target_time = start + step * sample_every * self.period_duration
            self.env.run(until=target_time)
            deltas = {
                edge: self.transition_counts.get(edge, 0) - last_counts.get(edge, 0)
                for edge in self.transition_counts
            }
            last_counts = dict(self.transition_counts)
            recorder.record(
                period=int(round((self.env.now - start) / self.period_duration)),
                counts=self.counts(),
                alive=self.alive_count(),
                transitions=deltas,
            )
        return recorder
