"""Synthetic host-churn traces in the style of the Overnet measurements.

The paper drives its churn experiments (Figures 9 and 10) with
availability traces from the Overnet measurement study (Bhagwan et al.,
IPTPS 2003), which is not redistributable here.  We substitute a
synthetic generator calibrated to the statistics the paper itself
cites:

* hosts rejoin the system about **6.4 times per day** on average;
* hourly churn (fraction of the population departing per hour) lies in
  the **10-25%** band;
* the original traces were hourly snapshots which the paper "spread out
  over each hour" -- our continuous session model produces naturally
  spread arrival/departure times.

Host sessions alternate exponentially distributed online and offline
intervals.  With mean session length ``s`` hours (both online and
offline), a host cycles every ``2s`` hours, giving ``24 / (2s)``
rejoins per day and an hourly departure rate of ``0.5 / s`` of the
population.  The default ``s = 2.0`` yields 6 rejoins/day and 25%/h
churn, matching the top of the paper's band; see the churn bench for
the measured statistics.

The endemic protocol only observes the alive/dead status of each host
per period (a departed host loses its replicas; a returning host is
receptive), so matching these statistics exercises the same code path
as the original traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .rng import make_generator
from .round_engine import RoundEngine


@dataclass(frozen=True)
class ChurnEvent:
    """One availability flip: host goes up or comes down."""

    time_hours: float
    host: int
    online: bool


@dataclass
class ChurnTrace:
    """An availability trace: per-host alternating sessions.

    ``events`` are sorted by time.  ``initially_online`` flags which
    hosts are up at time zero.
    """

    n_hosts: int
    duration_hours: float
    events: List[ChurnEvent]
    initially_online: np.ndarray

    def hourly_churn_rates(self) -> np.ndarray:
        """Fraction of the population departing, per whole hour."""
        hours = int(np.ceil(self.duration_hours))
        departures = np.zeros(hours)
        for event in self.events:
            if not event.online and event.time_hours < hours:
                departures[int(event.time_hours)] += 1
        return departures / self.n_hosts

    def rejoins_per_day(self) -> float:
        """Mean number of arrivals per host per 24 hours."""
        arrivals = sum(1 for e in self.events if e.online)
        days = self.duration_hours / 24.0
        if days <= 0:
            return 0.0
        return arrivals / (self.n_hosts * days)

    def mean_availability(self) -> float:
        """Time-averaged fraction of hosts online."""
        online = self.initially_online.astype(float).sum()
        last_time = 0.0
        weighted = 0.0
        for event in self.events:
            weighted += online * (event.time_hours - last_time)
            online += 1 if event.online else -1
            last_time = event.time_hours
        weighted += online * (self.duration_hours - last_time)
        return weighted / (self.n_hosts * self.duration_hours)

    def per_host_availability(self) -> np.ndarray:
        """Time-averaged availability of each host, in ``[0, 1]``.

        Hosts are independent in the generator, so these make an i.i.d.
        sample suitable for a z-test on the mean -- unlike the single
        pooled :meth:`mean_availability` number.
        """
        weighted = np.zeros(self.n_hosts)
        online = self.initially_online.astype(bool).copy()
        last = np.zeros(self.n_hosts)
        for event in self.events:
            host = event.host
            if online[host]:
                weighted[host] += event.time_hours - last[host]
            last[host] = event.time_hours
            online[host] = event.online
        weighted[online] += self.duration_hours - last[online]
        return weighted / self.duration_hours

    def per_host_arrivals_per_day(self) -> np.ndarray:
        """Arrival (rejoin) events per host, scaled to a 24-hour day."""
        arrivals = np.zeros(self.n_hosts)
        for event in self.events:
            if event.online:
                arrivals[event.host] += 1
        days = self.duration_hours / 24.0
        if days <= 0:
            return arrivals
        return arrivals / days


def generate_trace(
    n_hosts: int,
    duration_hours: float,
    mean_session_hours: float = 2.0,
    mean_offline_hours: Optional[float] = None,
    seed: Optional[int] = None,
    initial_online_fraction: float = 0.5,
) -> ChurnTrace:
    """Generate a synthetic Overnet-style availability trace.

    Parameters
    ----------
    mean_session_hours:
        Mean online session length (exponential).
    mean_offline_hours:
        Mean offline interval; defaults to ``mean_session_hours``
        (symmetric up/down behaviour, ~50% availability as observed for
        the short-lived majority of Overnet hosts).
    initial_online_fraction:
        Fraction of hosts online at time zero.
    """
    if mean_session_hours <= 0:
        raise ValueError("mean_session_hours must be positive")
    mean_offline = (
        mean_offline_hours if mean_offline_hours is not None else mean_session_hours
    )
    rng = make_generator(seed)
    initially_online = rng.random(n_hosts) < initial_online_fraction
    events: List[ChurnEvent] = []
    for host in range(n_hosts):
        online = bool(initially_online[host])
        # Start mid-session: residual of an exponential is exponential.
        time = 0.0
        while True:
            mean = mean_session_hours if online else mean_offline
            time += rng.exponential(mean)
            if time >= duration_hours:
                break
            online = not online
            events.append(ChurnEvent(float(time), host, online))
    events.sort(key=lambda e: (e.time_hours, e.host))
    return ChurnTrace(
        n_hosts=n_hosts,
        duration_hours=duration_hours,
        events=events,
        initially_online=initially_online,
    )


@dataclass
class ChurnReplayer:
    """Round-engine hook replaying a churn trace.

    ``periods_per_hour`` converts trace time to protocol periods (the
    paper: 6-minute periods, so 10 periods per hour).  Departing hosts
    crash (losing all replicas, the paper's worst-case model); returning
    hosts recover in the engine's recovery state (receptive) and "do not
    participate in any startup file transfers".
    """

    trace: ChurnTrace
    periods_per_hour: float = 10.0
    _cursor: int = 0
    applied_initial: bool = False

    def __call__(self, engine: RoundEngine) -> None:
        if not self.applied_initial:
            offline = np.nonzero(~self.trace.initially_online)[0]
            if len(offline):
                engine.crash(offline)
            self.applied_initial = True
        now_hours = engine.period / self.periods_per_hour
        events = self.trace.events
        # A host may flip several times between hook invocations; the
        # last event per host decides its state for this batch.
        final_state: Dict[int, bool] = {}
        while self._cursor < len(events) and events[self._cursor].time_hours <= now_hours:
            event = events[self._cursor]
            final_state[event.host] = event.online
            self._cursor += 1
        downs = [h for h, online in final_state.items() if not online]
        ups = [h for h, online in final_state.items() if online]
        if downs:
            engine.crash(np.array(downs, dtype=np.int64))
        if ups:
            engine.recover(np.array(ups, dtype=np.int64))

    def reset(self) -> None:
        self._cursor = 0
        self.applied_initial = False
