"""Metrics recording for protocol simulations.

The paper's figures are all time series derived from three kinds of
observations, all captured here:

* per-period counts of alive processes in each state (Figures 2, 4, 5,
  7, 9, 11, 12);
* per-period transition counts along each state-machine edge -- the
  "file flux rate" of Figure 6 and the transition plot of Figure 10;
* per-period identity of the processes in a chosen state -- the stasher
  scatter of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass
class WindowStats:
    """Median/min/max/mean of a series over an observation window."""

    median: float
    minimum: float
    maximum: float
    mean: float

    @classmethod
    def of(cls, series: np.ndarray) -> "WindowStats":
        if len(series) == 0:
            raise ValueError("empty series")
        return cls(
            median=float(np.median(series)),
            minimum=float(np.min(series)),
            maximum=float(np.max(series)),
            mean=float(np.mean(series)),
        )


class MetricsRecorder:
    """Collects per-period observations from a simulation engine.

    Parameters
    ----------
    states:
        Ordered state names (defines the layout of count rows).
    track_transitions:
        Record per-edge transition counts each period.
    member_log_state:
        When set to a state name, the recorder stores the ids of alive
        processes in that state each period (Figure 8's stasher log).
        Expensive for big groups; leave None unless needed.
    stride:
        Record only every ``stride``-th period (1 = every period).
    """

    def __init__(
        self,
        states: Sequence[str],
        track_transitions: bool = True,
        member_log_state: Optional[str] = None,
        stride: int = 1,
    ):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.states = tuple(states)
        self.track_transitions = track_transitions
        self.member_log_state = member_log_state
        self.stride = stride
        self.periods: List[int] = []
        self._counts: List[np.ndarray] = []
        self._alive: List[int] = []
        self._transitions: List[Dict[Tuple[str, str], int]] = []
        self.member_log: List[Tuple[int, np.ndarray]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        period: int,
        counts: Mapping[str, int],
        alive: int,
        transitions: Optional[Mapping[Tuple[str, str], int]] = None,
        members: Optional[np.ndarray] = None,
    ) -> None:
        """Store one period's observations (subject to the stride)."""
        if period % self.stride != 0:
            return
        self.periods.append(period)
        self._counts.append(
            np.array([counts.get(s, 0) for s in self.states], dtype=np.int64)
        )
        self._alive.append(alive)
        if self.track_transitions:
            self._transitions.append(dict(transitions or {}))
        if self.member_log_state is not None and members is not None:
            self.member_log.append((period, np.array(members, copy=True)))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.array(self.periods, dtype=np.int64)

    def counts(self, state: str) -> np.ndarray:
        """Time series of alive processes in ``state``."""
        index = self.states.index(state)
        if not self._counts:
            return np.empty(0, dtype=np.int64)
        return np.stack(self._counts)[:, index]

    def alive_series(self) -> np.ndarray:
        return np.array(self._alive, dtype=np.int64)

    def fractions(self, state: str) -> np.ndarray:
        """Counts normalized by the alive population per period."""
        alive = self.alive_series().astype(float)
        alive[alive == 0] = np.nan
        return self.counts(state) / alive

    def transition_series(self, edge: Tuple[str, str]) -> np.ndarray:
        """Per-period transitions along ``(from_state, to_state)``."""
        if not self.track_transitions:
            raise RuntimeError("transition tracking is disabled")
        return np.array(
            [t.get(edge, 0) for t in self._transitions], dtype=np.int64
        )

    def edges_seen(self) -> List[Tuple[str, str]]:
        """Every edge that carried at least one transition."""
        seen: List[Tuple[str, str]] = []
        for period_transitions in self._transitions:
            for edge, count in period_transitions.items():
                if count and edge not in seen:
                    seen.append(edge)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def window(
        self, state: str, start_period: int, end_period: Optional[int] = None
    ) -> WindowStats:
        """Stats of a state's count series over ``[start, end]`` periods.

        This is the Figure 7 measurement: median (plus min/max bars) of
        the state population over a long observation window.
        """
        times = self.times
        mask = times >= start_period
        if end_period is not None:
            mask &= times <= end_period
        series = self.counts(state)[mask]
        return WindowStats.of(series)

    def last_counts(self) -> Dict[str, int]:
        """Counts at the most recent recorded period."""
        if not self._counts:
            return {s: 0 for s in self.states}
        latest = self._counts[-1]
        return {s: int(latest[i]) for i, s in enumerate(self.states)}

    def member_occupancy(self) -> Dict[int, int]:
        """Per-host number of logged periods spent in the logged state.

        Supports the Figure 8 load-balancing claim: responsibility time
        should be spread evenly across hosts.
        """
        occupancy: Dict[int, int] = {}
        for _, members in self.member_log:
            for host in members.tolist():
                occupancy[host] = occupancy.get(host, 0) + 1
        return occupancy

    def to_rows(self) -> List[Tuple]:
        """Tabular dump: (period, alive, count per state...)."""
        rows = []
        alive = self._alive
        for i, period in enumerate(self.periods):
            rows.append((period, alive[i], *self._counts[i].tolist()))
        return rows
