"""The unified execution layer: work-unit plans with pluggable executors.

Three parallel paths grew in this repository -- campaign point/shard
fan-out (:mod:`repro.campaign.runner`), trial-sharded batch ensembles
(:class:`~repro.runtime.parallel.ShardedBatchExecutor`) and agent-tier
ensembles (:class:`~repro.runtime.parallel.AgentEnsemble`) -- and all
three reduce to the same shape: a deterministic list of independent
**work units**, executed anywhere, whose outputs are combined by an
order-dependent, schedule-independent **merge**.  This module is that
shape, extracted once:

* a :class:`WorkUnit` is a picklable ``(runner, payload)`` pair whose
  ``runner`` must be a module-level function (the only kind a spawned
  worker process can import);
* an :class:`ExecutionPlan` is the ordered unit list plus the merge
  contract and optional worker-process initialization;
* :func:`run_plan` executes a plan on 1..K local processes under a
  :class:`FaultPolicy` (per-unit capture, retries, timeout).

The reproducibility contract, shared by every caller:

1. **Unit identity is part of the experiment's identity.**  A plan's
   decomposition (how many units, which seeds they carry) must depend
   only on declared inputs -- root seed, trial count, shard count --
   never on ``workers``.  Unit seeds come from domain-separated spawns
   (:func:`repro.runtime.rng.spawn_seeds` over ``(seed, DOMAIN)``
   entropy), so unit streams cannot collide with protocol streams.
2. **Merges are integer-exact and ordered.**  ``merge`` receives unit
   outputs in *unit order* regardless of completion order, and must
   combine them with order-preserving, exact operations (concatenation,
   integer sums) -- never means of means.  Together with (1) this makes
   a plan's result bitwise identical however it is scheduled: one
   process, K workers, or a later replay.
3. **Serial execution is always a correct fallback.**  When the units
   do not survive :mod:`pickle` (closure or lambda hooks, runtime
   registrations), :func:`run_plan` warns and runs them in-process --
   same bits, no pool.
4. **Failure handling cannot perturb results.**  A unit fails as a
   whole or not at all: an exception (or timeout) anywhere in a unit
   discards that attempt's entire output, and a retry re-runs the
   *same* payload from scratch -- same seeds, same decomposition, same
   merge slot -- so a run that needed three attempts on one unit is
   bitwise identical to a run that needed one.  Failures surface as
   :class:`UnitFailure` records carrying the unit's index, label and
   traceback instead of an opaque pool blow-up.

``workers`` is therefore pure *scheduling budget*: callers that nest
(a campaign point expanding into trial shards) flatten their levels
into one unit list and hand the whole budget to a single pool, which
is what lets one huge point and many small points share workers
without either level re-deciding the decomposition.
"""

from __future__ import annotations

import multiprocessing
import pickle
import re
import signal
import threading
import time
import traceback as traceback_module
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "ExecutionPlan",
    "FaultPolicy",
    "UnitExecutionError",
    "UnitFailure",
    "UnitTimeout",
    "WorkUnit",
    "run_plan",
]

#: The ``on_error`` modes a :class:`FaultPolicy` accepts.
ON_ERROR_MODES = ("raise", "skip", "retry")


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable unit of a plan.

    ``runner`` must be a module-level function so it can cross a
    process boundary; ``payload`` is its single argument and should be
    a plain-data job description (dataclasses of primitives pickle
    fine; closures do not and will trigger the serial fallback).
    """

    runner: Callable[[Any], Any]
    payload: Any
    label: str = ""


@dataclass(frozen=True)
class FaultPolicy:
    """How :func:`run_plan` treats a unit that raises (or times out).

    ``on_error`` selects the terminal behavior once a unit's attempts
    are exhausted:

    * ``"raise"`` -- the pre-fault default: a unit gets exactly one
      attempt, and its failure aborts the plan with a
      :class:`UnitExecutionError` (the failing unit's index, label and
      traceback attached -- never an opaque pool blow-up).
    * ``"retry"`` -- transient faults are retried: each unit gets
      ``1 + retries`` attempts with capped exponential backoff between
      them; exhausting them raises like ``"raise"``.  A retry re-runs
      the *same* unit payload, so seeds, decomposition and merge order
      are untouched and a retried run is bitwise identical to a clean
      one.
    * ``"skip"`` -- failure isolation: units retry exactly as under
      ``"retry"``, but an exhausted unit is recorded as a
      :class:`UnitFailure` (its slot in the merge input, and the
      ``on_failure`` stream) instead of aborting the plan, yielding
      partial results.

    ``timeout_seconds`` bounds each *attempt* wall-clock; an expired
    attempt fails with :class:`UnitTimeout` and follows the same
    retry/skip/raise path as any other exception.  Timeouts need a
    Unix ``SIGALRM`` delivered to the executing thread, so they are
    enforced in pool workers and in main-thread in-process runs, and
    silently skipped where that signal cannot be armed (Windows,
    non-main threads).
    """

    on_error: str = "raise"
    #: Extra attempts per unit after the first (``on_error != "raise"``).
    retries: int = 2
    #: Backoff before retry k (0-based) is
    #: ``min(backoff_seconds * backoff_factor**k, max_backoff_seconds)``.
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    #: Wall-clock bound per attempt (None = unbounded).
    timeout_seconds: Optional[float] = None

    def __post_init__(self):
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, "
                f"got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )

    @property
    def attempts(self) -> int:
        """Total attempts per unit (1 under ``on_error="raise"``)."""
        return 1 if self.on_error == "raise" else 1 + self.retries

    def backoff_for(self, failed_attempts: int) -> float:
        """Seconds to wait before the next attempt."""
        return min(
            self.backoff_seconds * self.backoff_factor ** failed_attempts,
            self.max_backoff_seconds,
        )


@dataclass(frozen=True)
class UnitFailure:
    """One unit's terminal failure, with enough context to act on it.

    Under ``on_error="skip"`` these appear in the merge input (in the
    failed unit's slot) and in the ``on_failure`` stream; under
    ``"raise"``/``"retry"`` the first one aborts the plan wrapped in a
    :class:`UnitExecutionError`.
    """

    index: int
    label: str
    error: str
    traceback: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnitFailure":
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            error=str(data["error"]),
            traceback=str(data["traceback"]),
            attempts=int(data["attempts"]),
        )


class UnitExecutionError(RuntimeError):
    """A work unit failed terminally under a raising fault policy."""

    def __init__(self, failure: UnitFailure, plan_label: str = "plan"):
        self.failure = failure
        label = failure.label or f"unit {failure.index}"
        super().__init__(
            f"{plan_label}: {label} (unit {failure.index}) failed after "
            f"{failure.attempts} attempt(s): {failure.error}\n"
            f"{failure.traceback}"
        )


class UnitTimeout(Exception):
    """An attempt exceeded the fault policy's per-unit timeout."""


@contextmanager
def _attempt_deadline(seconds: Optional[float]):
    """Arm a wall-clock bound for one attempt, where the platform allows.

    Uses an interval timer + ``SIGALRM`` so an expired attempt raises
    :class:`UnitTimeout` *inside* the unit, joining the ordinary
    exception path.  Signals only reach the main thread of a process
    (which is where pool workers and in-process serial runs execute),
    so anywhere else the bound is a documented no-op.
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def expire(signum, frame):
        raise UnitTimeout(f"attempt exceeded the {seconds:g}s unit timeout")

    previous = signal.signal(signal.SIGALRM, expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Longest traceback text a UnitFailure will carry.  Failures under
#: ``on_error="skip"`` are persisted verbatim into campaign manifests,
#: and a runaway recursion trace would bloat every later manifest diff.
_TRACEBACK_LIMIT = 8000

_TRACEBACK_FILE_RE = re.compile(r'(File ")([^"]+)(")')


def _normalize_traceback(text: str) -> str:
    """Make a captured traceback checkout-location-independent.

    Campaign manifests persist these strings, and the resume test
    compares manifests produced by *different* runs of the same spec --
    which may live in different checkouts or virtualenvs.  Absolute
    ``File "..."`` paths are rewritten to be stable: paths under the
    current working directory become relative to it, any other absolute
    path keeps only its last three components.  Long traces are
    truncated head-first (the raising frame is at the tail).
    """
    cwd = Path.cwd()

    def rewrite(match: "re.Match") -> str:
        raw = match.group(2)
        path = PurePath(raw)
        if not path.is_absolute():
            return match.group(0)
        try:
            stable = PurePath(raw).relative_to(cwd)
        except ValueError:
            stable = PurePath(*path.parts[-3:])
        return f'{match.group(1)}{stable.as_posix()}{match.group(3)}'

    text = _TRACEBACK_FILE_RE.sub(rewrite, text)
    if len(text) > _TRACEBACK_LIMIT:
        text = (
            f"... ({len(text) - _TRACEBACK_LIMIT} chars truncated)\n"
            + text[-_TRACEBACK_LIMIT:]
        )
    return text


def _attempt_unit(
    index: int,
    runner: Callable[[Any], Any],
    payload: Any,
    label: str,
    policy: FaultPolicy,
) -> Tuple[int, Any, Optional[UnitFailure]]:
    """Run one unit under the policy: ``(index, output, failure)``.

    Runs wherever the unit runs (pool worker or in-process), so pool
    workers return failures as values instead of poisoning the pool,
    and backoff sleeps occupy only the worker that owns the unit.
    """
    error = ""
    trace = ""
    for attempt in range(policy.attempts):
        try:
            with _attempt_deadline(policy.timeout_seconds):
                return index, runner(payload), None
        except Exception as exc:
            error = repr(exc)
            trace = _normalize_traceback(traceback_module.format_exc())
            if attempt + 1 < policy.attempts:
                time.sleep(policy.backoff_for(attempt))
    return index, None, UnitFailure(
        index=index,
        label=label,
        error=error,
        traceback=trace,
        attempts=policy.attempts,
    )


def _run_encoded_unit(job) -> Tuple[int, Any, Optional[UnitFailure]]:
    """Pool worker entry point: decode the once-pickled unit and run it."""
    index, blob, label, policy = job
    runner, payload = pickle.loads(blob)
    return _attempt_unit(index, runner, payload, label, policy)


@dataclass
class ExecutionPlan:
    """An ordered list of work units plus their merge contract.

    Parameters
    ----------
    units:
        The work, in the order ``merge`` expects the outputs.
    merge:
        Combines the ordered output list into the plan's result.  May
        be ``None`` for streaming consumers that assemble results in
        the ``on_unit`` callback instead -- outputs are then *not*
        retained (important when units return large tensors).  Under a
        skipping fault policy, a failed unit's slot holds its
        :class:`UnitFailure` record.
    label:
        Used in failure and fallback messages so the caller is
        identifiable.
    initializer, initargs:
        Worker-process setup (e.g. re-installing runtime registry
        entries under the spawn start method).  Only invoked in pool
        workers; the in-process path assumes the current process is
        already initialized.
    """

    units: Sequence[WorkUnit]
    merge: Optional[Callable[[List[Any]], Any]] = None
    label: str = "plan"
    initializer: Optional[Callable] = None
    initargs: Tuple = field(default_factory=tuple)


def _encode_units(plan: ExecutionPlan) -> Optional[List[bytes]]:
    """Serialize every unit exactly once, or None if the plan can't pool.

    The byte blobs double as the picklability probe *and* the pool
    submission format: workers receive the pre-pickled ``(runner,
    payload)`` pair, so a unit's payload graph is traversed by pickle
    once per plan, not once for the probe and again at submission.
    """
    try:
        pickle.dumps((plan.initializer, plan.initargs))
        return [
            pickle.dumps((unit.runner, unit.payload)) for unit in plan.units
        ]
    except Exception:
        return None


def run_plan(
    plan: ExecutionPlan,
    workers: int = 1,
    on_unit: Optional[Callable[[int, Any], None]] = None,
    fault_policy: Optional[FaultPolicy] = None,
    on_failure: Optional[Callable[[UnitFailure], None]] = None,
) -> Any:
    """Execute every unit of ``plan`` and return its merged result.

    ``workers > 1`` fans the units across that many processes (capped
    at the unit count); ``on_unit(index, output)`` fires as each unit
    lands, in *completion* order -- streaming consumers use it to free
    outputs early.  ``merge`` (when set) always receives outputs in
    unit order.  Unpicklable plans degrade to a serial in-process run
    with a :class:`RuntimeWarning`; the results are bitwise identical
    either way, which is exactly the plan contract.

    ``fault_policy`` (default: raise on first failure) governs unit
    faults -- see :class:`FaultPolicy`.  Under ``on_error="skip"``,
    failed units fire ``on_failure(failure)`` instead of ``on_unit``
    and occupy their merge slot as :class:`UnitFailure` records;
    otherwise a terminal failure aborts the plan with
    :class:`UnitExecutionError`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    policy = fault_policy if fault_policy is not None else FaultPolicy()
    units = list(plan.units)
    fan_out = workers > 1 and len(units) > 1
    blobs: Optional[List[bytes]] = None
    if fan_out:
        blobs = _encode_units(plan)
        if blobs is None:
            warnings.warn(
                f"{plan.label}: work units are unpicklable (closure or "
                f"lambda hooks, runtime registrations?); running the "
                f"{len(units)} units serially in-process instead of on "
                f"{workers} workers (results are bitwise identical either "
                f"way)",
                RuntimeWarning,
                stacklevel=2,
            )
            fan_out = False

    outputs: Optional[List[Any]] = (
        [None] * len(units) if plan.merge is not None else None
    )

    def land(index: int, output: Any, failure: Optional[UnitFailure]) -> None:
        if failure is not None:
            if policy.on_error != "skip":
                raise UnitExecutionError(failure, plan.label)
            if on_failure is not None:
                on_failure(failure)
            if outputs is not None:
                outputs[index] = failure
            return
        if on_unit is not None:
            on_unit(index, output)
        if outputs is not None:
            outputs[index] = output

    if fan_out:
        with multiprocessing.Pool(
            processes=min(workers, len(units)),
            initializer=plan.initializer,
            initargs=plan.initargs,
        ) as pool:
            jobs = [
                (index, blob, unit.label, policy)
                for (index, unit), blob in zip(enumerate(units), blobs)
            ]
            for index, output, failure in pool.imap_unordered(
                _run_encoded_unit, jobs
            ):
                land(index, output, failure)
    else:
        for index, unit in enumerate(units):
            land(*_attempt_unit(
                index, unit.runner, unit.payload, unit.label, policy
            ))
    if plan.merge is None:
        return None
    return plan.merge(outputs)
