"""The unified execution layer: work-unit plans with pluggable executors.

Three parallel paths grew in this repository -- campaign point/shard
fan-out (:mod:`repro.campaign.runner`), trial-sharded batch ensembles
(:class:`~repro.runtime.parallel.ShardedBatchExecutor`) and agent-tier
ensembles (:class:`~repro.runtime.parallel.AgentEnsemble`) -- and all
three reduce to the same shape: a deterministic list of independent
**work units**, executed anywhere, whose outputs are combined by an
order-dependent, schedule-independent **merge**.  This module is that
shape, extracted once:

* a :class:`WorkUnit` is a picklable ``(runner, payload)`` pair whose
  ``runner`` must be a module-level function (the only kind a spawned
  worker process can import);
* an :class:`ExecutionPlan` is the ordered unit list plus the merge
  contract and optional worker-process initialization;
* :func:`run_plan` executes a plan on 1..K local processes under a
  :class:`FaultPolicy` (per-unit capture, retries, timeout).

The reproducibility contract, shared by every caller:

1. **Unit identity is part of the experiment's identity.**  A plan's
   decomposition (how many units, which seeds they carry) must depend
   only on declared inputs -- root seed, trial count, shard count --
   never on ``workers``.  Unit seeds come from domain-separated spawns
   (:func:`repro.runtime.rng.spawn_seeds` over ``(seed, DOMAIN)``
   entropy), so unit streams cannot collide with protocol streams.
2. **Merges are integer-exact and ordered.**  ``merge`` receives unit
   outputs in *unit order* regardless of completion order, and must
   combine them with order-preserving, exact operations (concatenation,
   integer sums) -- never means of means.  Together with (1) this makes
   a plan's result bitwise identical however it is scheduled: one
   process, K workers, or a later replay.
3. **Serial execution is always a correct fallback.**  When the units
   do not survive :mod:`pickle` (closure or lambda hooks, runtime
   registrations), :func:`run_plan` warns and runs them in-process --
   same bits, no pool.
4. **Failure handling cannot perturb results.**  A unit fails as a
   whole or not at all: an exception (or timeout) anywhere in a unit
   discards that attempt's entire output, and a retry re-runs the
   *same* payload from scratch -- same seeds, same decomposition, same
   merge slot -- so a run that needed three attempts on one unit is
   bitwise identical to a run that needed one.  Failures surface as
   :class:`UnitFailure` records carrying the unit's index, label and
   traceback instead of an opaque pool blow-up.
5. **Worker loss cannot perturb results.**  Under the ``cluster``
   backend (:mod:`repro.runtime.cluster`), a worker that dies or stops
   heartbeating mid-unit is fenced and its unit re-dispatched to a
   survivor -- the *same* pre-pickled payload bytes from
   :func:`_encode_units`, landing in the same merge slot -- so a run
   that lost two workers is bitwise identical to one that lost none.
   Units that out-live ``FaultPolicy.max_dispatches`` workers flow
   into the same :class:`UnitFailure` machinery as clause 4.

``workers`` is therefore pure *scheduling budget*: callers that nest
(a campaign point expanding into trial shards) flatten their levels
into one unit list and hand the whole budget to a single pool, which
is what lets one huge point and many small points share workers
without either level re-deciding the decomposition.
"""

from __future__ import annotations

import multiprocessing
import pickle
import re
import signal
import threading
import time
import traceback as traceback_module
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "BACKENDS",
    "ExecutionPlan",
    "FaultPolicy",
    "UnitExecutionError",
    "UnitFailure",
    "UnitTimeout",
    "WorkUnit",
    "run_plan",
]

#: The ``on_error`` modes a :class:`FaultPolicy` accepts.
ON_ERROR_MODES = ("raise", "skip", "retry")

#: The executor backends :func:`run_plan` accepts.  ``"pool"`` is the
#: local ``multiprocessing.Pool``; ``"cluster"`` is the socket-based
#: process-isolated coordinator/worker backend
#: (:mod:`repro.runtime.cluster`) with heartbeats, dead-worker
#: re-dispatch and elastic worker counts.
BACKENDS = ("pool", "cluster")


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable unit of a plan.

    ``runner`` must be a module-level function so it can cross a
    process boundary; ``payload`` is its single argument and should be
    a plain-data job description (dataclasses of primitives pickle
    fine; closures do not and will trigger the serial fallback).
    """

    runner: Callable[[Any], Any]
    payload: Any
    label: str = ""


@dataclass(frozen=True)
class FaultPolicy:
    """How :func:`run_plan` treats a unit that raises (or times out).

    ``on_error`` selects the terminal behavior once a unit's attempts
    are exhausted:

    * ``"raise"`` -- the pre-fault default: a unit gets exactly one
      attempt, and its failure aborts the plan with a
      :class:`UnitExecutionError` (the failing unit's index, label and
      traceback attached -- never an opaque pool blow-up).
    * ``"retry"`` -- transient faults are retried: each unit gets
      ``1 + retries`` attempts with capped exponential backoff between
      them; exhausting them raises like ``"raise"``.  A retry re-runs
      the *same* unit payload, so seeds, decomposition and merge order
      are untouched and a retried run is bitwise identical to a clean
      one.
    * ``"skip"`` -- failure isolation: units retry exactly as under
      ``"retry"``, but an exhausted unit is recorded as a
      :class:`UnitFailure` (its slot in the merge input, and the
      ``on_failure`` stream) instead of aborting the plan, yielding
      partial results.

    ``timeout_seconds`` bounds each *attempt* wall-clock; an expired
    attempt fails with :class:`UnitTimeout` and follows the same
    retry/skip/raise path as any other exception.  On POSIX main
    threads the bound is armed with an interval timer + ``SIGALRM``;
    everywhere else (Windows, worker threads, cluster worker unit
    loops) a watchdog thread raises the timeout asynchronously into
    the executing thread instead, so the bound holds on every backend.

    The heartbeat/dispatch fields only matter to the ``cluster``
    backend of :func:`run_plan`: a worker that sends no message for
    ``heartbeat_seconds * heartbeat_misses`` is declared dead and its
    in-flight unit is re-dispatched (same pre-pickled payload, so
    results cannot change); a unit that out-lives ``max_dispatches``
    workers is treated as the unit's own fault and follows
    ``on_error``.
    """

    on_error: str = "raise"
    #: Extra attempts per unit after the first (``on_error != "raise"``).
    retries: int = 2
    #: Backoff before retry k (0-based) is
    #: ``min(backoff_seconds * backoff_factor**k, max_backoff_seconds)``,
    #: shrunk by up to ``jitter`` of itself when a unit index is known.
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    #: Fraction of each backoff randomized away (0 = exact exponential,
    #: 1 = anywhere in (0, backoff]).  Deterministic per (unit, attempt):
    #: the jitter is hashed from the unit index, not drawn from entropy,
    #: so retried runs stay bitwise reproducible while a mass retry
    #: after a worker death decorrelates instead of stampeding.
    jitter: float = 0.5
    #: Wall-clock bound per attempt (None = unbounded).
    timeout_seconds: Optional[float] = None
    #: Cluster backend: expected interval between worker heartbeats.
    heartbeat_seconds: float = 0.5
    #: Cluster backend: silent intervals before a worker is declared dead.
    heartbeat_misses: int = 4
    #: Cluster backend: total workers a unit may be dispatched to before
    #: its loss is treated as the unit's own terminal failure.
    max_dispatches: int = 3

    def __post_init__(self):
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, "
                f"got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        if self.heartbeat_seconds <= 0:
            raise ValueError(
                f"heartbeat_seconds must be > 0, got {self.heartbeat_seconds}"
            )
        if self.heartbeat_misses < 1:
            raise ValueError(
                f"heartbeat_misses must be >= 1, got {self.heartbeat_misses}"
            )
        if self.max_dispatches < 1:
            raise ValueError(
                f"max_dispatches must be >= 1, got {self.max_dispatches}"
            )

    @property
    def attempts(self) -> int:
        """Total attempts per unit (1 under ``on_error="raise"``)."""
        return 1 if self.on_error == "raise" else 1 + self.retries

    @property
    def heartbeat_deadline(self) -> float:
        """Silence (seconds) after which a cluster worker is dead."""
        return self.heartbeat_seconds * self.heartbeat_misses

    def backoff_for(
        self, failed_attempts: int, unit_index: Optional[int] = None
    ) -> float:
        """Seconds to wait before the next attempt.

        With a ``unit_index``, the capped exponential base is shrunk by
        a deterministic per-(unit, attempt) jitter fraction so that
        many units retrying at once (e.g. after a worker death)
        decorrelate their sleeps.  Without one -- or with ``jitter=0``
        -- the exact capped exponential is returned.
        """
        base = min(
            self.backoff_seconds * self.backoff_factor ** failed_attempts,
            self.max_backoff_seconds,
        )
        if unit_index is None or self.jitter == 0.0 or base == 0.0:
            return base
        fraction = _jitter_fraction(unit_index, failed_attempts)
        return base * (1.0 - self.jitter * fraction)


def _jitter_fraction(unit_index: int, attempt: int) -> float:
    """A reproducible uniform-ish fraction in [0, 1) for backoff jitter.

    A splitmix64 finalizer over ``(unit_index, attempt)`` -- pure
    integer arithmetic, no RNG object and no entropy, so the jittered
    backoff schedule is a function of the unit alone and retried runs
    stay bitwise identical wherever the unit executes.
    """
    mask = (1 << 64) - 1
    z = (unit_index * 0x9E3779B97F4A7C15 + attempt + 0x1D8E4E27C47D124F) & mask
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    z ^= z >> 31
    return (z >> 11) / float(1 << 53)


@dataclass(frozen=True)
class UnitFailure:
    """One unit's terminal failure, with enough context to act on it.

    Under ``on_error="skip"`` these appear in the merge input (in the
    failed unit's slot) and in the ``on_failure`` stream; under
    ``"raise"``/``"retry"`` the first one aborts the plan wrapped in a
    :class:`UnitExecutionError`.

    The provenance fields are filled by the cluster backend: ``worker``
    is the id of the last worker the unit was dispatched to,
    ``redispatches`` counts dispatches beyond the first (worker deaths
    the unit survived before failing terminally), and
    ``heartbeat_misses`` counts heartbeat intervals those dead workers
    were silent for in total -- so a skipped campaign point says *which*
    worker died, not just that an attempt failed.  Pool/serial failures
    leave them at their empty defaults.
    """

    index: int
    label: str
    error: str
    traceback: str
    attempts: int
    worker: str = ""
    redispatches: int = 0
    heartbeat_misses: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "worker": self.worker,
            "redispatches": self.redispatches,
            "heartbeat_misses": self.heartbeat_misses,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnitFailure":
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            error=str(data["error"]),
            traceback=str(data["traceback"]),
            attempts=int(data["attempts"]),
            worker=str(data.get("worker", "")),
            redispatches=int(data.get("redispatches", 0)),
            heartbeat_misses=int(data.get("heartbeat_misses", 0)),
        )


class UnitExecutionError(RuntimeError):
    """A work unit failed terminally under a raising fault policy."""

    def __init__(self, failure: UnitFailure, plan_label: str = "plan"):
        self.failure = failure
        label = failure.label or f"unit {failure.index}"
        super().__init__(
            f"{plan_label}: {label} (unit {failure.index}) failed after "
            f"{failure.attempts} attempt(s): {failure.error}\n"
            f"{failure.traceback}"
        )


class UnitTimeout(Exception):
    """An attempt exceeded the fault policy's per-unit timeout."""


@contextmanager
def _attempt_deadline(seconds: Optional[float]):
    """Arm a wall-clock bound for one attempt: ``SIGALRM`` or watchdog.

    On POSIX main threads, an interval timer + ``SIGALRM`` raises
    :class:`UnitTimeout` *inside* the unit, joining the ordinary
    exception path -- this interrupts anything, including blocking C
    calls.  Where that signal cannot be armed (Windows, non-main
    threads -- notably cluster worker unit loops, which run alongside a
    heartbeat thread), a watchdog timer thread asynchronously raises
    :class:`UnitTimeout` into the executing thread instead.  The
    watchdog path only fires at Python bytecode boundaries, so it
    bounds runaway computation but cannot interrupt a single blocking
    C call -- a weaker guarantee than ``SIGALRM``, and far stronger
    than the silent no-op it replaces.
    """
    if seconds is None:
        yield
        return
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        def expire(signum, frame):
            raise UnitTimeout(
                f"attempt exceeded the {seconds:g}s unit timeout"
            )

        previous = signal.signal(signal.SIGALRM, expire)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return

    target_id = threading.get_ident()

    def interrupt():
        _raise_in_thread(target_id, UnitTimeout)

    watchdog = threading.Timer(seconds, interrupt)
    watchdog.daemon = True
    watchdog.start()
    try:
        yield
    finally:
        watchdog.cancel()
        watchdog.join()
        # If the watchdog fired after the unit finished but before the
        # cancel, a UnitTimeout may still be pending on this thread;
        # clearing it keeps a completed attempt from being failed
        # retroactively at the next bytecode boundary.
        _raise_in_thread(target_id, None)


def _raise_in_thread(thread_id: int, exc_type) -> None:
    """Schedule (or clear, with None) an async exception in a thread."""
    import ctypes

    ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id),
        ctypes.py_object(exc_type) if exc_type is not None else None,
    )


#: Longest traceback text a UnitFailure will carry.  Failures under
#: ``on_error="skip"`` are persisted verbatim into campaign manifests,
#: and a runaway recursion trace would bloat every later manifest diff.
_TRACEBACK_LIMIT = 8000

_TRACEBACK_FILE_RE = re.compile(r'(File ")([^"]+)(")')


def _normalize_traceback(text: str) -> str:
    """Make a captured traceback checkout-location-independent.

    Campaign manifests persist these strings, and the resume test
    compares manifests produced by *different* runs of the same spec --
    which may live in different checkouts or virtualenvs.  Absolute
    ``File "..."`` paths are rewritten to be stable: paths under the
    current working directory become relative to it, any other absolute
    path keeps only its last three components.  Long traces are
    truncated head-first (the raising frame is at the tail).
    """
    cwd = Path.cwd()

    def rewrite(match: "re.Match") -> str:
        raw = match.group(2)
        path = PurePath(raw)
        if not path.is_absolute():
            return match.group(0)
        try:
            stable = PurePath(raw).relative_to(cwd)
        except ValueError:
            stable = PurePath(*path.parts[-3:])
        return f'{match.group(1)}{stable.as_posix()}{match.group(3)}'

    text = _TRACEBACK_FILE_RE.sub(rewrite, text)
    if len(text) > _TRACEBACK_LIMIT:
        text = (
            f"... ({len(text) - _TRACEBACK_LIMIT} chars truncated)\n"
            + text[-_TRACEBACK_LIMIT:]
        )
    return text


def _attempt_unit(
    index: int,
    runner: Callable[[Any], Any],
    payload: Any,
    label: str,
    policy: FaultPolicy,
) -> Tuple[int, Any, Optional[UnitFailure]]:
    """Run one unit under the policy: ``(index, output, failure)``.

    Runs wherever the unit runs (pool worker or in-process), so pool
    workers return failures as values instead of poisoning the pool,
    and backoff sleeps occupy only the worker that owns the unit.
    """
    error = ""
    trace = ""
    for attempt in range(policy.attempts):
        try:
            with _attempt_deadline(policy.timeout_seconds):
                return index, runner(payload), None
        except Exception as exc:
            error = repr(exc)
            trace = _normalize_traceback(traceback_module.format_exc())
            if attempt + 1 < policy.attempts:
                time.sleep(policy.backoff_for(attempt, unit_index=index))
    return index, None, UnitFailure(
        index=index,
        label=label,
        error=error,
        traceback=trace,
        attempts=policy.attempts,
    )


def _run_encoded_unit(job) -> Tuple[int, Any, Optional[UnitFailure]]:
    """Pool worker entry point: decode the once-pickled unit and run it."""
    index, blob, label, policy = job
    runner, payload = pickle.loads(blob)
    return _attempt_unit(index, runner, payload, label, policy)


@dataclass
class ExecutionPlan:
    """An ordered list of work units plus their merge contract.

    Parameters
    ----------
    units:
        The work, in the order ``merge`` expects the outputs.
    merge:
        Combines the ordered output list into the plan's result.  May
        be ``None`` for streaming consumers that assemble results in
        the ``on_unit`` callback instead -- outputs are then *not*
        retained (important when units return large tensors).  Under a
        skipping fault policy, a failed unit's slot holds its
        :class:`UnitFailure` record.
    label:
        Used in failure and fallback messages so the caller is
        identifiable.
    initializer, initargs:
        Worker-process setup (e.g. re-installing runtime registry
        entries under the spawn start method).  Only invoked in pool
        workers; the in-process path assumes the current process is
        already initialized.
    """

    units: Sequence[WorkUnit]
    merge: Optional[Callable[[List[Any]], Any]] = None
    label: str = "plan"
    initializer: Optional[Callable] = None
    initargs: Tuple = field(default_factory=tuple)


def _encode_units(plan: ExecutionPlan) -> Optional[List[bytes]]:
    """Serialize every unit exactly once, or None if the plan can't pool.

    The byte blobs double as the picklability probe *and* the pool
    submission format: workers receive the pre-pickled ``(runner,
    payload)`` pair, so a unit's payload graph is traversed by pickle
    once per plan, not once for the probe and again at submission.
    """
    try:
        pickle.dumps((plan.initializer, plan.initargs))
        return [
            pickle.dumps((unit.runner, unit.payload)) for unit in plan.units
        ]
    except Exception:
        return None


def run_plan(
    plan: ExecutionPlan,
    workers: int = 1,
    on_unit: Optional[Callable[[int, Any], None]] = None,
    fault_policy: Optional[FaultPolicy] = None,
    on_failure: Optional[Callable[[UnitFailure], None]] = None,
    backend: str = "pool",
    chaos: Any = None,
) -> Any:
    """Execute every unit of ``plan`` and return its merged result.

    ``workers > 1`` fans the units across that many processes (capped
    at the unit count); ``on_unit(index, output)`` fires as each unit
    lands, in *completion* order -- streaming consumers use it to free
    outputs early.  ``merge`` (when set) always receives outputs in
    unit order.  Unpicklable plans degrade to a serial in-process run
    with a :class:`RuntimeWarning`; the results are bitwise identical
    either way, which is exactly the plan contract.

    ``fault_policy`` (default: raise on first failure) governs unit
    faults -- see :class:`FaultPolicy`.  Under ``on_error="skip"``,
    failed units fire ``on_failure(failure)`` instead of ``on_unit``
    and occupy their merge slot as :class:`UnitFailure` records;
    otherwise a terminal failure aborts the plan with
    :class:`UnitExecutionError`.

    ``backend`` selects the executor (:data:`BACKENDS`).  ``"pool"``
    (default) is the local ``multiprocessing.Pool``.  ``"cluster"``
    runs a socket coordinator that spawns ``workers`` worker
    *processes* which dial in, heartbeat, and can join/leave mid-plan;
    a dead or hung worker's in-flight unit is re-dispatched (the same
    pre-pickled payload) to a survivor, so results remain bitwise
    identical to pool and serial runs -- the plan contract, clause 5.
    ``chaos`` (cluster only) is a
    :class:`~repro.runtime.chaos.ChaosSchedule` of scripted worker
    faults for testing that claim.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    policy = fault_policy if fault_policy is not None else FaultPolicy()
    units = list(plan.units)
    cluster = backend == "cluster" and len(units) > 0
    fan_out = cluster or (workers > 1 and len(units) > 1)
    blobs: Optional[List[bytes]] = None
    if fan_out:
        blobs = _encode_units(plan)
        if blobs is None:
            warnings.warn(
                f"{plan.label}: work units are unpicklable (closure or "
                f"lambda hooks, runtime registrations?); running the "
                f"{len(units)} units serially in-process instead of on "
                f"{workers} workers (results are bitwise identical either "
                f"way)",
                RuntimeWarning,
                stacklevel=2,
            )
            fan_out = False
            cluster = False

    outputs: Optional[List[Any]] = (
        [None] * len(units) if plan.merge is not None else None
    )

    def land(index: int, output: Any, failure: Optional[UnitFailure]) -> None:
        if failure is not None:
            if policy.on_error != "skip":
                raise UnitExecutionError(failure, plan.label)
            if on_failure is not None:
                on_failure(failure)
            if outputs is not None:
                outputs[index] = failure
            return
        if on_unit is not None:
            on_unit(index, output)
        if outputs is not None:
            outputs[index] = output

    if cluster:
        from repro.runtime.cluster import ClusterCoordinator

        coordinator = ClusterCoordinator(
            label=plan.label,
            blobs=blobs,
            labels=[unit.label for unit in units],
            policy=policy,
            workers=workers,
            initializer=plan.initializer,
            initargs=plan.initargs,
            chaos=chaos,
        )
        coordinator.run(land)
    elif fan_out:
        with multiprocessing.Pool(
            processes=min(workers, len(units)),
            initializer=plan.initializer,
            initargs=plan.initargs,
        ) as pool:
            jobs = [
                (index, blob, unit.label, policy)
                for (index, unit), blob in zip(enumerate(units), blobs)
            ]
            for index, output, failure in pool.imap_unordered(
                _run_encoded_unit, jobs
            ):
                land(index, output, failure)
    else:
        for index, unit in enumerate(units):
            land(*_attempt_unit(
                index, unit.runner, unit.payload, unit.label, policy
            ))
    if plan.merge is None:
        return None
    return plan.merge(outputs)
