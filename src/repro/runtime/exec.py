"""The unified execution layer: work-unit plans with pluggable executors.

Three parallel paths grew in this repository -- campaign point/shard
fan-out (:mod:`repro.campaign.runner`), trial-sharded batch ensembles
(:class:`~repro.runtime.parallel.ShardedBatchExecutor`) and agent-tier
ensembles (:class:`~repro.runtime.parallel.AgentEnsemble`) -- and all
three reduce to the same shape: a deterministic list of independent
**work units**, executed anywhere, whose outputs are combined by an
order-dependent, schedule-independent **merge**.  This module is that
shape, extracted once:

* a :class:`WorkUnit` is a picklable ``(runner, payload)`` pair whose
  ``runner`` must be a module-level function (the only kind a spawned
  worker process can import);
* an :class:`ExecutionPlan` is the ordered unit list plus the merge
  contract and optional worker-process initialization;
* :func:`run_plan` executes a plan on 1..K local processes.

The reproducibility contract, shared by every caller:

1. **Unit identity is part of the experiment's identity.**  A plan's
   decomposition (how many units, which seeds they carry) must depend
   only on declared inputs -- root seed, trial count, shard count --
   never on ``workers``.  Unit seeds come from domain-separated spawns
   (:func:`repro.runtime.rng.spawn_seeds` over ``(seed, DOMAIN)``
   entropy), so unit streams cannot collide with protocol streams.
2. **Merges are integer-exact and ordered.**  ``merge`` receives unit
   outputs in *unit order* regardless of completion order, and must
   combine them with order-preserving, exact operations (concatenation,
   integer sums) -- never means of means.  Together with (1) this makes
   a plan's result bitwise identical however it is scheduled: one
   process, K workers, or a later replay.
3. **Serial execution is always a correct fallback.**  When the units
   do not survive :mod:`pickle` (closure or lambda hooks, runtime
   registrations), :func:`run_plan` warns and runs them in-process --
   same bits, no pool.

``workers`` is therefore pure *scheduling budget*: callers that nest
(a campaign point expanding into trial shards) flatten their levels
into one unit list and hand the whole budget to a single pool, which
is what lets one huge point and many small points share workers
without either level re-deciding the decomposition.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["ExecutionPlan", "WorkUnit", "run_plan"]


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable unit of a plan.

    ``runner`` must be a module-level function so it can cross a
    process boundary; ``payload`` is its single argument and should be
    a plain-data job description (dataclasses of primitives pickle
    fine; closures do not and will trigger the serial fallback).
    """

    runner: Callable[[Any], Any]
    payload: Any
    label: str = ""


@dataclass
class ExecutionPlan:
    """An ordered list of work units plus their merge contract.

    Parameters
    ----------
    units:
        The work, in the order ``merge`` expects the outputs.
    merge:
        Combines the ordered output list into the plan's result.  May
        be ``None`` for streaming consumers that assemble results in
        the ``on_unit`` callback instead -- outputs are then *not*
        retained (important when units return large tensors).
    label:
        Used in the serial-fallback warning so the caller is
        identifiable.
    initializer, initargs:
        Worker-process setup (e.g. re-installing runtime registry
        entries under the spawn start method).  Only invoked in pool
        workers; the in-process path assumes the current process is
        already initialized.
    """

    units: Sequence[WorkUnit]
    merge: Optional[Callable[[List[Any]], Any]] = None
    label: str = "plan"
    initializer: Optional[Callable] = None
    initargs: Tuple = field(default_factory=tuple)


def _run_unit(job: Tuple[int, Callable, Any]) -> Tuple[int, Any]:
    index, runner, payload = job
    return index, runner(payload)


def _picklable(plan: ExecutionPlan) -> bool:
    try:
        pickle.dumps([(u.runner, u.payload) for u in plan.units])
        pickle.dumps((plan.initializer, plan.initargs))
    except Exception:
        return False
    return True


def run_plan(
    plan: ExecutionPlan,
    workers: int = 1,
    on_unit: Optional[Callable[[int, Any], None]] = None,
) -> Any:
    """Execute every unit of ``plan`` and return its merged result.

    ``workers > 1`` fans the units across that many processes (capped
    at the unit count); ``on_unit(index, output)`` fires as each unit
    lands, in *completion* order -- streaming consumers use it to free
    outputs early.  ``merge`` (when set) always receives outputs in
    unit order.  Unpicklable plans degrade to a serial in-process run
    with a :class:`RuntimeWarning`; the results are bitwise identical
    either way, which is exactly the plan contract.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    units = list(plan.units)
    fan_out = workers > 1 and len(units) > 1
    if fan_out and not _picklable(plan):
        warnings.warn(
            f"{plan.label}: work units are unpicklable (closure or "
            f"lambda hooks, runtime registrations?); running the "
            f"{len(units)} units serially in-process instead of on "
            f"{workers} workers (results are bitwise identical either "
            f"way)",
            RuntimeWarning,
            stacklevel=2,
        )
        fan_out = False

    outputs: Optional[List[Any]] = (
        [None] * len(units) if plan.merge is not None else None
    )
    if fan_out:
        with multiprocessing.Pool(
            processes=min(workers, len(units)),
            initializer=plan.initializer,
            initargs=plan.initargs,
        ) as pool:
            jobs = [(i, u.runner, u.payload) for i, u in enumerate(units)]
            for index, output in pool.imap_unordered(_run_unit, jobs):
                if on_unit is not None:
                    on_unit(index, output)
                if outputs is not None:
                    outputs[index] = output
    else:
        for index, unit in enumerate(units):
            output = unit.runner(unit.payload)
            if on_unit is not None:
                on_unit(index, output)
            if outputs is not None:
                outputs[index] = output
    if plan.merge is None:
        return None
    return plan.merge(outputs)
