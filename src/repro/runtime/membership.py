"""Group membership views.

The paper's system model gives every process knowledge of the *maximal*
group membership (all ``N - 1`` peers), with a footnote that well-known
techniques reduce the view to logarithmic size.  This module provides
both: :class:`FullMembership` (the default, matching the analysis) and
:class:`PartialMembership` built on a random overlay graph (see
:mod:`repro.runtime.overlay`), letting experiments quantify how little
the protocols care about the difference.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class FullMembership:
    """Uniform sampling over the maximal membership ``0 .. n-1``.

    Samples may land on crashed processes -- the caller finds out when
    the contact fails, which is exactly the paper's model (and the
    mechanism behind the Figure 5 equilibrium shift).
    """

    def __init__(self, n: int, rng: np.random.Generator):
        if n < 2:
            raise ValueError(f"group must have at least 2 processes, got {n}")
        self.n = n
        self._rng = rng

    def sample(self, caller: int, k: int = 1) -> np.ndarray:
        """``k`` uniform target ids, excluding the caller."""
        targets = self._rng.integers(0, self.n - 1, size=k)
        return targets + (targets >= caller)

    def view_size(self, caller: int) -> int:
        return self.n - 1


class PartialMembership:
    """Sampling restricted to per-process overlay neighborhoods.

    Models footnote 1: each process knows only ``O(log n)`` peers.
    Backed by an adjacency-list view of an overlay graph; sampling is
    uniform over the caller's neighbors.
    """

    def __init__(self, neighbors: Sequence[np.ndarray], rng: np.random.Generator):
        if any(len(peers) == 0 for peers in neighbors):
            raise ValueError("every process needs at least one neighbor")
        self.neighbors = [np.asarray(peers, dtype=np.int64) for peers in neighbors]
        self.n = len(neighbors)
        self._rng = rng

    def sample(self, caller: int, k: int = 1) -> np.ndarray:
        peers = self.neighbors[caller]
        indexes = self._rng.integers(0, len(peers), size=k)
        return peers[indexes]

    def view_size(self, caller: int) -> int:
        return len(self.neighbors[caller])

    def mean_view_size(self) -> float:
        return float(np.mean([len(p) for p in self.neighbors]))
