"""Vectorized synchronous-round execution of protocol specifications.

The paper's experiments run "multiple instances ... synchronously over a
simulated network" -- i.e. a synchronous-round simulation.  This engine
reproduces that setup at scale: process states live in one numpy array,
and each protocol period executes every action of the
:class:`~repro.synthesis.protocol.ProtocolSpec` vectorized over the
processes currently in the acting state.

This is the middle tier of the repository's three-engine hierarchy:

* :class:`~repro.runtime.agent_sim.AgentSimulation` -- one DES
  coroutine per process, asynchronous periods, latency and clock
  drift.  Use it to validate that a result is not an artifact of
  synchrony; slowest, most faithful to a real deployment.
* :class:`RoundEngine` (this module) -- one protocol instance,
  vectorized over the N processes.  Use it for single-run experiments
  and whenever hooks need to inspect or mutate one group mid-run.
* :class:`~repro.runtime.batch_engine.BatchRoundEngine` -- M
  independent trials in one ``(M, N)`` state array.  Use it whenever a
  claim is about an *ensemble* (means, spreads, extinction
  frequencies): it amortizes per-period overhead across trials and its
  lockstep mode reproduces M seeded :class:`RoundEngine` runs exactly.

Semantics (matching the paper's system model):

* Targets are sampled uniformly from the *maximal membership* (all N
  ids, excluding the caller); contacts that land on crashed processes
  fail.  This is exactly the mechanism behind Figure 5's observation
  that after a 50% massive failure the receptive count is unchanged
  (the effective contact fan-out halves).
* A per-connection failure probability can drop any individual contact,
  modeling the lossy network of Section 3 ("The Effect of Failures").
* All action conditions are evaluated against the state snapshot taken
  at the start of the period, and each process transitions at most once
  per period (rare same-period conflicts resolve in action declaration
  order; they are an O((p c)^2) effect the normalizing constant keeps
  small).

Coin flips use exact binomial thinning: instead of tossing one coin per
process, the engine draws the number of heads from the binomial
distribution and then picks that many distinct processes -- identical in
distribution, and what makes 100,000-host, 10,000-period runs fast when
the biased coins are heavily weighted toward tails (e.g. alpha = 1e-6).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..synthesis.actions import (
    AnyOfSampleAction,
    FlipAction,
    PushAction,
    SampleAction,
    TokenizeAction,
)
from ..synthesis.protocol import ProtocolSpec
from .metrics import MetricsRecorder
from .rng import RandomSource, sample_other

#: Hook signature: called once per period, before actions execute.
Hook = Callable[["RoundEngine"], None]


@dataclass
class _Compiled:
    """A protocol action lowered to integer state ids."""

    kind: str
    actor: int
    probability: float
    target: int
    required: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int8))
    match: int = -1
    fanout: int = 0
    token_state: int = -1
    ttl: Optional[int] = None
    edge_from: int = -1  # state the moving process leaves


def _compile(spec: ProtocolSpec) -> List[_Compiled]:
    index = {name: i for i, name in enumerate(spec.states)}
    compiled = []
    for action in spec.actions:
        base = dict(
            actor=index[action.actor_state],
            probability=action.probability,
            target=index[action.target_state],
        )
        if isinstance(action, FlipAction):
            compiled.append(
                _Compiled(kind="flip", edge_from=base["actor"], **base)
            )
        elif isinstance(action, TokenizeAction):
            compiled.append(
                _Compiled(
                    kind="tokenize",
                    required=np.array(
                        [index[s] for s in action.required_states], dtype=np.int8
                    ),
                    token_state=index[action.token_state],
                    ttl=action.ttl,
                    edge_from=index[action.token_state],
                    **base,
                )
            )
        elif isinstance(action, SampleAction):
            compiled.append(
                _Compiled(
                    kind="sample",
                    required=np.array(
                        [index[s] for s in action.required_states], dtype=np.int8
                    ),
                    edge_from=base["actor"],
                    **base,
                )
            )
        elif isinstance(action, AnyOfSampleAction):
            compiled.append(
                _Compiled(
                    kind="anyof",
                    match=index[action.match_state],
                    fanout=action.fanout,
                    edge_from=base["actor"],
                    **base,
                )
            )
        elif isinstance(action, PushAction):
            compiled.append(
                _Compiled(
                    kind="push",
                    match=index[action.match_state],
                    fanout=action.fanout,
                    edge_from=index[action.match_state],
                    **base,
                )
            )
        else:  # pragma: no cover - future kinds
            raise TypeError(f"cannot compile action kind {action.kind}")
    return compiled


def initial_state_vector(
    state_names: Sequence[str], n: int, initial: Mapping[str, float]
) -> np.ndarray:
    """The unshuffled initial state assignment for one protocol group.

    Accepts counts (summing to ``n``) or fractions (summing to 1) and
    applies largest-remainder rounding; shared by :class:`RoundEngine`
    and :class:`~repro.runtime.batch_engine.BatchRoundEngine` so both
    engines resolve an initial distribution to identical state counts.
    """
    unknown = set(initial) - set(state_names)
    if unknown:
        raise ValueError(f"unknown states in initial distribution: {sorted(unknown)}")
    values = np.array([float(initial.get(s, 0.0)) for s in state_names])
    total = values.sum()
    if abs(total - 1.0) < 1e-6:
        values = values * n
    elif abs(total - n) > max(1.0, 1e-6 * n):
        raise ValueError(
            f"initial distribution sums to {total}; expected 1.0 "
            f"(fractions) or {n} (counts)"
        )
    counts = np.floor(values).astype(np.int64)
    remainder = n - counts.sum()
    if remainder < 0:
        raise ValueError("initial counts exceed the group size")
    # Largest-remainder rounding for the leftover processes.
    fractional = values - np.floor(values)
    for index in np.argsort(-fractional)[:remainder]:
        counts[index] += 1
    return np.repeat(np.arange(len(state_names), dtype=np.int8), counts)


@dataclass
class RunResult:
    """Outcome of a :meth:`RoundEngine.run` call."""

    engine: "RoundEngine"
    recorder: MetricsRecorder

    def final_counts(self) -> Dict[str, int]:
        return self.engine.counts()

    def final_fractions(self) -> Dict[str, float]:
        return self.engine.fractions()


class RoundEngine:
    """Synchronous-round simulator for one protocol instance.

    Parameters
    ----------
    spec:
        The protocol to execute.
    n:
        Group size (maximal membership; ids ``0 .. n-1``).
    initial:
        Initial distribution over states, as counts (summing to ``n``)
        or fractions (summing to 1).  Missing states get zero.
    seed:
        Seed for the Mersenne Twister streams.
    connection_failure_rate:
        Probability ``f`` that any individual contact attempt fails
        (Section 3's per-connection failure rate).
    shuffle:
        Assign initial states to host ids in random order (default), so
        host id carries no information -- required for the Figure 8
        untraceability measurement.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        n: int,
        initial: Mapping[str, float],
        seed: Optional[int] = None,
        connection_failure_rate: float = 0.0,
        shuffle: bool = True,
    ):
        if n < 2:
            raise ValueError(f"group size must be >= 2, got {n}")
        if not 0.0 <= connection_failure_rate < 1.0:
            raise ValueError(
                f"connection failure rate must lie in [0, 1), got "
                f"{connection_failure_rate}"
            )
        self.spec = spec
        self.n = n
        self.connection_failure_rate = connection_failure_rate
        self.state_names = spec.states
        self._index = {name: i for i, name in enumerate(spec.states)}
        self._compiled = _compile(spec)
        self._random_source = RandomSource(seed)
        self._rng = self._random_source.stream("protocol")
        self._fault_rng = self._random_source.stream("faults")

        self.states = self._initial_states(initial, shuffle)
        self.alive = np.ones(n, dtype=bool)
        self.period = 0
        self.last_transitions: Dict[Tuple[str, str], int] = {}
        self.total_messages = 0
        self.recovery_state = spec.states[0]

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _initial_states(
        self, initial: Mapping[str, float], shuffle: bool
    ) -> np.ndarray:
        states = initial_state_vector(self.state_names, self.n, initial)
        if shuffle:
            self._random_source.stream("initial-shuffle").shuffle(states)
        return states

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_id(self, name: str) -> int:
        return self._index[name]

    def counts(self) -> Dict[str, int]:
        """Alive process count per state."""
        raw = np.bincount(
            self.states[self.alive], minlength=len(self.state_names)
        )
        return {s: int(raw[i]) for i, s in enumerate(self.state_names)}

    def fractions(self) -> Dict[str, float]:
        """State fractions among alive processes."""
        alive = int(self.alive.sum())
        if alive == 0:
            return {s: 0.0 for s in self.state_names}
        counts = self.counts()
        return {s: counts[s] / alive for s in self.state_names}

    def alive_count(self) -> int:
        return int(self.alive.sum())

    def members_in(self, state: str) -> np.ndarray:
        """Ids of alive processes currently in ``state``."""
        sid = self._index[state]
        return np.nonzero((self.states == sid) & self.alive)[0]

    def elapsed_time(self) -> float:
        """ODE time corresponding to the periods run so far."""
        return self.spec.time_for_periods(self.period)

    # ------------------------------------------------------------------
    # Checkpoint / restore (the live-service replay contract)
    # ------------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, object]:
        """Capture everything that evolves after construction.

        The RNGs are serialized with pickle rather than
        ``bit_generator.state`` because a Generator also buffers partial
        output (MT19937 keeps a spare uint32 between 32-bit draws);
        dropping that buffer would silently fork the stream.  An engine
        built with the same ``(spec, n, connection_failure_rate)`` and
        then ``restore_state``-d continues bit-identically.
        """
        return {
            "states": self.states.copy(),
            "alive": self.alive.copy(),
            "period": self.period,
            "total_messages": self.total_messages,
            "rng_pickle": pickle.dumps(
                self._rng, protocol=pickle.HIGHEST_PROTOCOL
            ),
            "fault_rng_pickle": pickle.dumps(
                self._fault_rng, protocol=pickle.HIGHEST_PROTOCOL
            ),
        }

    def restore_state(self, snapshot: Mapping[str, object]) -> None:
        """Inverse of :meth:`state_snapshot` (trusted input only)."""
        states = np.asarray(snapshot["states"], dtype=np.int8)
        alive = np.asarray(snapshot["alive"], dtype=bool)
        if states.shape != (self.n,) or alive.shape != (self.n,):
            raise ValueError(
                f"snapshot is for a different population "
                f"(n={states.shape}, engine n={self.n})"
            )
        self.states = states.copy()
        self.alive = alive.copy()
        self.period = int(snapshot["period"])
        self.total_messages = int(snapshot["total_messages"])
        self._rng = pickle.loads(snapshot["rng_pickle"])
        self._fault_rng = pickle.loads(snapshot["fault_rng_pickle"])
        self.last_transitions = {}

    # ------------------------------------------------------------------
    # Fault injection (used directly and by runtime.failures hooks)
    # ------------------------------------------------------------------
    def crash(self, hosts: np.ndarray) -> None:
        """Crash-stop the given hosts (they stop responding)."""
        self.alive[np.asarray(hosts, dtype=np.int64)] = False

    def crash_fraction(self, fraction: float) -> np.ndarray:
        """Crash a uniformly random fraction of the alive hosts."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
        alive_ids = np.nonzero(self.alive)[0]
        count = int(round(fraction * len(alive_ids)))
        victims = self._fault_rng.choice(alive_ids, size=count, replace=False)
        self.crash(victims)
        return victims

    def recover(self, hosts: np.ndarray, state: Optional[str] = None) -> None:
        """Crash-recovery: hosts rejoin in ``state`` (volatile state lost).

        The default recovery state is the first protocol state, which
        for the endemic protocol is *receptive*: a recovered host has
        lost its replicas and must re-acquire responsibility.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        self.alive[hosts] = True
        self.states[hosts] = self._index[state or self.recovery_state]

    def set_states(self, hosts: np.ndarray, state: str) -> None:
        """Force hosts into a state (test and application hook)."""
        self.states[np.asarray(hosts, dtype=np.int64)] = self._index[state]

    # ------------------------------------------------------------------
    # The synchronous round
    # ------------------------------------------------------------------
    def step(self) -> Dict[Tuple[str, str], int]:
        """Execute one protocol period; returns the transition counts."""
        snapshot = self.states.copy()
        alive = self.alive
        moved = np.zeros(self.n, dtype=bool)
        transitions: Dict[Tuple[str, str], int] = {}
        members_cache: Dict[int, np.ndarray] = {}

        def members(sid: int) -> np.ndarray:
            cached = members_cache.get(sid)
            if cached is None:
                cached = np.nonzero((snapshot == sid) & alive)[0]
                members_cache[sid] = cached
            return cached

        counts = np.bincount(
            snapshot[alive], minlength=len(self.state_names)
        )

        for action in self._compiled:
            actor_count = int(counts[action.actor])
            if actor_count == 0:
                continue
            if action.probability <= 0.0:
                continue
            if action.probability < 1.0:
                heads = self._rng.binomial(actor_count, action.probability)
                if heads == 0:
                    continue
                actors = self._rng.choice(
                    members(action.actor), size=heads, replace=False
                )
            else:
                actors = members(action.actor)
            movers, edge_from = self._execute(
                action, actors, snapshot, alive, moved, members
            )
            if len(movers) == 0:
                continue
            movers = movers[~moved[movers]]
            if len(movers) == 0:
                continue
            moved[movers] = True
            self.states[movers] = action.target
            edge = (
                self.state_names[edge_from],
                self.state_names[action.target],
            )
            transitions[edge] = transitions.get(edge, 0) + len(movers)

        self.period += 1
        self.last_transitions = transitions
        return transitions

    def _execute(
        self,
        action: _Compiled,
        actors: np.ndarray,
        snapshot: np.ndarray,
        alive: np.ndarray,
        moved: np.ndarray,
        members: Callable[[int], np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """Run one action's sampling and return (movers, from_state)."""
        failure = self.connection_failure_rate
        if action.kind == "flip":
            return actors, action.edge_from

        if action.kind in ("sample", "tokenize"):
            width = len(action.required)
            if width == 0:
                fired = actors
            else:
                targets = sample_other(self._rng, self.n, actors, width)
                self.total_messages += targets.size
                ok = alive[targets] & (snapshot[targets] == action.required[None, :])
                if failure > 0.0:
                    ok &= self._rng.random(targets.shape) >= failure
                fired = actors[ok.all(axis=1)]
            if action.kind == "sample":
                return fired, action.edge_from
            return self._deliver_tokens(action, len(fired), snapshot, alive, moved, members)

        if action.kind == "anyof":
            targets = sample_other(self._rng, self.n, actors, action.fanout)
            self.total_messages += targets.size
            ok = alive[targets] & (snapshot[targets] == action.match)
            if failure > 0.0:
                ok &= self._rng.random(targets.shape) >= failure
            return actors[ok.any(axis=1)], action.edge_from

        if action.kind == "push":
            targets = sample_other(self._rng, self.n, actors, action.fanout)
            self.total_messages += targets.size
            ok = alive[targets] & (snapshot[targets] == action.match)
            if failure > 0.0:
                ok &= self._rng.random(targets.shape) >= failure
            converted = np.unique(targets[ok])
            return converted, action.edge_from

        raise AssertionError(f"unknown compiled kind {action.kind}")

    def _deliver_tokens(
        self,
        action: _Compiled,
        token_count: int,
        snapshot: np.ndarray,
        alive: np.ndarray,
        moved: np.ndarray,
        members: Callable[[int], np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """Route fired tokens to processes in the token state.

        Oracle mode (ttl=None): every token reaches a distinct target
        while targets remain (excess tokens are dropped, as the paper
        specifies when "no processes in the system are in state x").
        TTL mode: each token independently survives a ``ttl``-hop
        random walk with success probability ``1 - (1 - x_frac)^ttl``.
        """
        if token_count == 0:
            return np.empty(0, dtype=np.int64), action.edge_from
        pool = members(action.token_state)
        pool = pool[~moved[pool]]
        if len(pool) == 0:
            return np.empty(0, dtype=np.int64), action.edge_from
        if action.ttl is not None:
            alive_total = int(alive.sum())
            fraction = len(pool) / alive_total if alive_total else 0.0
            reach = 1.0 - (1.0 - fraction) ** action.ttl
            token_count = self._rng.binomial(token_count, reach)
            if token_count == 0:
                return np.empty(0, dtype=np.int64), action.edge_from
        take = min(token_count, len(pool))
        movers = self._rng.choice(pool, size=take, replace=False)
        return movers, action.edge_from

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self,
        periods: int,
        recorder: Optional[MetricsRecorder] = None,
        hooks: Iterable[Hook] = (),
        record_initial: bool = True,
    ) -> RunResult:
        """Run ``periods`` rounds, applying hooks before each round.

        Hooks are callables ``hook(engine)``; failure injectors and
        churn replayers from :mod:`repro.runtime.failures` /
        :mod:`repro.runtime.churn` plug in here.
        """
        if recorder is None:
            recorder = MetricsRecorder(self.state_names)
        hooks = list(hooks)
        if record_initial and self.period == 0:
            self._record(recorder)
        for _ in range(periods):
            for hook in hooks:
                hook(self)
            self.step()
            self._record(recorder)
        return RunResult(engine=self, recorder=recorder)

    def _record(self, recorder: MetricsRecorder) -> None:
        members = None
        if recorder.member_log_state is not None:
            if self.period % recorder.stride == 0:
                members = self.members_in(recorder.member_log_state)
        recorder.record(
            self.period,
            self.counts(),
            self.alive_count(),
            transitions=self.last_transitions,
            members=members,
        )
