"""Deterministic fault injection for the cluster backend.

The cluster backend's robustness claims -- dead workers are detected
and their units re-dispatched bitwise-identically, hung workers are
fenced by heartbeat misses, late workers join mid-plan -- are only
worth anything if they are *tested* against real process-level faults.
This module is the harness that injects them, deterministically:

* a :class:`WorkerFault` is one scripted fault (``kill``, ``hang``,
  ``delay`` or ``slow-start``) with an explicit trigger point -- the
  n-th unit the worker *receives* (so a kill/hang loses that unit and
  forces a re-dispatch), or process start for ``slow-start``;
* a :class:`ChaosSchedule` maps worker *launch indices* to fault lists.
  Launch indices are assigned in spawn order by the coordinator, and a
  replacement worker spawned after a death gets a fresh index, so a
  scheduled kill fires exactly once instead of re-killing every
  respawn.

Faults ride into worker processes through the environment:
the coordinator exports each worker's own fault list as
:data:`FAULTS_ENV` (JSON) in the child's environment, and reads a
whole schedule from :data:`SCHEDULE_ENV` when no explicit ``chaos``
argument was passed to :func:`~repro.runtime.exec.run_plan` -- which is
how the CI chaos job injects kills and hangs into a plain
``python -m repro campaign --backend cluster`` invocation.

Triggers are deterministic (a fixed unit ordinal per worker), but
*which* units a given worker receives depends on scheduling -- the
point of the harness is that results are bitwise identical anyway,
because re-dispatch re-runs the same pre-pickled payload.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FAULTS_ENV",
    "SCHEDULE_ENV",
    "ChaosSchedule",
    "WorkerFault",
]

#: The fault kinds a worker knows how to inflict on itself.
FAULT_KINDS = ("kill", "hang", "delay", "slow-start")

#: Environment variable carrying one worker's own fault list (JSON
#: list of :meth:`WorkerFault.to_dict` records); set per-child by the
#: coordinator at spawn time.
FAULTS_ENV = "REPRO_CHAOS_FAULTS"

#: Environment variable carrying a whole schedule (JSON mapping of
#: worker launch index to fault lists); read by the coordinator when
#: no explicit schedule was passed, so CLI runs can be chaos-tested
#: without new flags.
SCHEDULE_ENV = "REPRO_CHAOS"


@dataclass(frozen=True)
class WorkerFault:
    """One scripted fault a worker inflicts on itself.

    ``kind``:

    * ``"kill"`` -- ``SIGKILL`` the worker process the moment it
      receives its ``after_units``-th unit (before running it): the
      unit is lost and must be re-dispatched.
    * ``"hang"`` -- ``SIGSTOP`` the whole process at the same trigger
      point (heartbeats stop too, exactly like a truly wedged
      process); the coordinator must detect it by heartbeat misses.
    * ``"delay"`` -- sleep ``seconds`` before running the triggering
      unit (heartbeats continue; must *not* cause a re-dispatch).
    * ``"slow-start"`` -- sleep ``seconds`` before dialing in, so the
      worker joins a plan that is already running (elastic join).

    ``after_units`` is 1-based: ``after_units=2`` fires on the second
    unit the worker receives.  It is ignored by ``slow-start``.
    """

    kind: str
    after_units: int = 1
    seconds: float = 0.25

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.after_units < 1:
            raise ValueError(
                f"after_units must be >= 1, got {self.after_units}"
            )
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "after_units": self.after_units,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkerFault":
        return cls(
            kind=str(data["kind"]),
            after_units=int(data.get("after_units", 1)),
            seconds=float(data.get("seconds", 0.25)),
        )


def _parse_fault_list(payload) -> Tuple[WorkerFault, ...]:
    if not isinstance(payload, list):
        raise ValueError(
            f"fault list must be a JSON list, got {type(payload).__name__}"
        )
    return tuple(WorkerFault.from_dict(entry) for entry in payload)


@dataclass
class ChaosSchedule:
    """Scripted faults for a cluster run, keyed by worker launch index.

    ``faults[k]`` is the fault list for the ``k``-th worker the
    coordinator launches (0-based, replacements included -- a
    respawned worker takes the next fresh index, so it only faults if
    the schedule says so explicitly).  Externally joined workers
    (``python -m repro worker``) are never matched by the schedule;
    inject their faults via :data:`FAULTS_ENV` in their own
    environment instead.
    """

    faults: Dict[int, Tuple[WorkerFault, ...]] = field(default_factory=dict)

    def __post_init__(self):
        normalized: Dict[int, Tuple[WorkerFault, ...]] = {}
        for index, fault_list in self.faults.items():
            key = int(index)
            if key < 0:
                raise ValueError(
                    f"worker launch index must be >= 0, got {key}"
                )
            normalized[key] = tuple(fault_list)
        self.faults = normalized

    def for_worker(self, launch_index: Optional[int]) -> Tuple[WorkerFault, ...]:
        """The fault list for one launched worker (empty for externals)."""
        if launch_index is None:
            return ()
        return self.faults.get(launch_index, ())

    def to_json(self) -> str:
        return json.dumps({
            str(index): [fault.to_dict() for fault in fault_list]
            for index, fault_list in sorted(self.faults.items())
        })

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(
                f"chaos schedule must be a JSON object mapping worker "
                f"launch index to fault lists, got "
                f"{type(payload).__name__}"
            )
        return cls(faults={
            int(index): _parse_fault_list(fault_list)
            for index, fault_list in payload.items()
        })

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> Optional["ChaosSchedule"]:
        """The :data:`SCHEDULE_ENV` schedule, or None when unset."""
        text = (environ if environ is not None else os.environ).get(
            SCHEDULE_ENV
        )
        if not text:
            return None
        return cls.from_json(text)


def faults_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Tuple[WorkerFault, ...]:
    """One worker's own :data:`FAULTS_ENV` fault list (empty if unset)."""
    text = (environ if environ is not None else os.environ).get(FAULTS_ENV)
    if not text:
        return ()
    return _parse_fault_list(json.loads(text))


def faults_env_value(faults: Sequence[WorkerFault]) -> str:
    """The :data:`FAULTS_ENV` encoding of a worker's fault list."""
    return json.dumps([fault.to_dict() for fault in faults])
