"""Fused per-state multinomial action planning for the batch engine.

Every sub-1.0-probability action of a :class:`~repro.synthesis.protocol.ProtocolSpec`
is a biased coin flipped independently by each member of its actor
state.  The paper's system model (Section 3) actually specifies one
*multi-way* coin per actor per period: an actor in state ``s`` picks
among ``s``'s actions with their respective probabilities or does
nothing, so the number of actors firing each action is exactly a
**multinomial split** of the state's occupancy -- the same aggregation
that makes mean-field analysis of population protocols tractable
(Chatzigiannakis & Spirakis) and that batch simulation of huge
populations exploits (Kosowski & Uznanski, "Population Protocols Are
Fast").

:class:`ActionPlanner` plans one period's actor selections for every
action at once:

1. **One multinomial draw for the whole period.**  The per-state splits
   of every (trial, state) occupancy across that state's actions (plus
   the no-op remainder) come from a single broadcast
   ``rng.multinomial`` call over a ``(groups, trials, actions + 1)``
   probability tensor -- replacing one ``rng.binomial`` call per action
   with one RNG call per period.
2. **One selection pass per state, fused across dense states.**  A
   state's total firing count is drawn once and the winning actors are
   selected once (instead of once per action); all states in the dense
   probing regime share a single rejection-probe loop over global host
   ids (a (state, trial) segment generalization of the former
   per-action ``_sample_dense_actors``), so a multi-action protocol
   like LV pays for one probe pass per period, not four.
3. **Partition, not re-draw.**  A state's selected actors arrive in
   uniform-random order (probe draw order, or an explicit segmented
   shuffle for sorted selections); splitting that permutation into
   consecutive runs of the multinomial counts assigns each actor to
   exactly one action with the correct joint distribution.  Per-action
   marginals are unchanged -- ``Binomial(count, p_a)`` actors, uniform
   without replacement -- but actors now fire *at most one* action of
   their state per period, which is the paper's own actor model.  (The
   serial engine keeps independent per-action coins with
   declaration-order conflict resolution; the two agree to the
   ``O((p c)^2)`` order the normalizing constant already bounds.)

Scratch buffers (the probe ``taken`` mask and last-writer ``slot``
array, both ``(trials * n,)``) are allocated once and reused across
periods, so the planner makes no per-period ``O(M * N)`` allocations.

Planner decisions (selection strategy per state) depend only on
period-start counts and the draws made so far, so batch-mode replays
remain deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ActionPlanner", "PlannedAction"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class PlannedAction:
    """One action's planned work for a period.

    ``actors`` holds global ids in uniform-random order within each
    trial's segment (consumers must not rely on sorted ids).  When
    ``prefired`` is True the planner has already applied the action's
    interaction condition analytically (see
    ``ActionPlanner._match_probability`` and
    ``ActionPlanner._plan_push``), so ``actors`` ARE the movers -- no
    peer sampling or state checks remain; for a ``push`` plan they are
    the converted *targets*, drawn from the match pool.  ``tokens``
    carries a tokenize action's per-trial fired-token counts instead of
    actor ids (token routing never needs the actors' identities).
    """

    action: object
    actors: np.ndarray
    prefired: bool = False
    tokens: Optional[np.ndarray] = None

#: Segment lookup callbacks supplied by the engine (period-start
#: snapshot semantics; see ``BatchRoundEngine.step``).
Segments = Callable[[int], Tuple[np.ndarray, np.ndarray]]
TrialMembers = Callable[[int, int], np.ndarray]


class TrialMemberPools:
    """Per-(state, trial) member pools in lazily allocated ``(M, n)`` rows.

    The engine's incremental-membership store, upgraded from capped
    flat lists to one ``(allocated_states, M, n)`` tensor: row
    ``(s, m)`` holds the global ids of trial ``m``'s alive members of
    state ``s`` in its first ``sizes[s, m]`` slots, in arbitrary order.
    A positional index (``pos[gid]`` = the gid's column in its state's
    row) makes removals O(movers) swap-deletes instead of O(list)
    ``isin`` filters, so *every* referenced state stays tracked -- no
    population cap, no per-period re-grouping sorts, no O(M * N) mask
    scans once the simulation is running.

    The pools are what the planner's dense probe samples from: probing
    uniform *pool positions* instead of uniform host ids makes the
    acceptance rate at least 3/4 independent of how dense the state is
    (only same-period duplicates reject), where host-id probing pays
    the inverse of the state's density.

    Mutations must keep the engine's period discipline: the engine
    applies the period's membership deltas *after* executing every
    action, so during planning and execution the pools always describe
    the period-start membership.

    Row allocation is **lazy**: construction builds rows only for the
    tracked states that actually hold members (one ``bincount`` over
    the batch decides which), and a state that starts empty gets its
    ``(M, n)`` row -- zero-filled, no batch scan -- the first time it
    is referenced: the first :meth:`add` of members, or a
    :meth:`members`/:meth:`grouped` lookup.  Memory is therefore
    ``O(occupied_states * M * n)`` int32 (~6 MB per occupied state at
    the paper scales M=64, n=10k; ~25 MB at M=64, n=100k) instead of
    ``O(referenced_states * M * n)``, so a wide synthesized system with
    dozens of mostly-empty states pays only for the states its
    trajectory visits.  Laziness is invisible to the draw stream: an
    empty state's row starts empty either way, and rows evolve
    identically from there, so batch-mode results are bit-for-bit
    unchanged by when the zeroed memory appeared.

    Invariant (checked by the engine's ``_validate_consistency``): a
    tracked state without an allocated row has no alive members --
    every way a state gains members goes through :meth:`add` /
    :meth:`add_many`, which allocate.
    """

    def __init__(
        self,
        sids: Sequence[int],
        trials: int,
        n: int,
        states_flat: np.ndarray,
        alive_flat: Optional[np.ndarray] = None,
    ):
        self.trials = trials
        self.n = n
        #: The states these pools manage.  ``slots`` maps the subset
        #: with allocated rows to their row indices; the rest allocate
        #: on first reference.
        self.tracked = frozenset(int(sid) for sid in sids)
        self.slots: Dict[int, int] = {}
        # int32 gids: half the gather/scatter traffic of the planner's
        # probe; batches are bounded far below 2**31 positions.
        self.pool = np.zeros((0, trials, n), dtype=np.int32)
        self._pool_flat = self.pool.reshape(-1)
        self.sizes = np.zeros((0, trials), dtype=np.int64)
        #: Column of each pooled gid within its state's row.  Entries of
        #: gids not currently pooled are stale and never read.
        self.pos = np.zeros(trials * n, dtype=np.int64)
        self._flag = np.zeros(trials * n, dtype=bool)
        #: Memoized grouped() layouts, invalidated when a state's rows
        #: change -- near-stationary states (the endemic receptive
        #: pool) then serve their full-prob actions without a rebuild.
        self._grouped_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if self.tracked:
            # One batch-wide occupancy count decides which states get
            # rows now; empty ones wait for their first reference.
            counted = states_flat if alive_flat is None \
                else states_flat[alive_flat]
            occupied = np.bincount(
                counted, minlength=max(self.tracked) + 1
            )
            for sid in sorted(self.tracked):
                if occupied[sid]:
                    self._allocate(sid)
                    self._build(sid, states_flat, alive_flat)

    def _allocate(self, sid: int) -> int:
        """Assign (and zero) a row for ``sid``, growing the tensor."""
        if sid not in self.tracked:
            raise KeyError(f"state {sid} is not tracked by these pools")
        slot = len(self.slots)
        if slot >= self.pool.shape[0]:
            grow = max(1, self.pool.shape[0])
            self.pool = np.concatenate([
                self.pool,
                np.zeros((grow, self.trials, self.n), dtype=np.int32),
            ])
            self._pool_flat = self.pool.reshape(-1)
            self.sizes = np.concatenate([
                self.sizes,
                np.zeros((grow, self.trials), dtype=np.int64),
            ])
        self.slots[sid] = slot
        return slot

    def slot(self, sid: int) -> int:
        """The row index of ``sid``, allocating the row on first use.

        Post-construction allocation never scans the batch: a tracked
        state without a row holds no members (see the class invariant),
        so its fresh row is correctly empty.
        """
        got = self.slots.get(sid)
        if got is None:
            got = self._allocate(sid)
        return got

    def _build(
        self,
        sid: int,
        states_flat: np.ndarray,
        alive_flat: Optional[np.ndarray],
    ) -> None:
        mask = states_flat == sid
        if alive_flat is not None:
            mask &= alive_flat
        members = np.flatnonzero(mask)
        slot = self.slots[sid]
        trials_of = members // self.n
        counts = np.bincount(trials_of, minlength=self.trials)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        cols = np.arange(members.size) - starts[trials_of]
        self.pool[slot].reshape(-1)[trials_of * self.n + cols] = members
        self.pos[members] = cols
        self.sizes[slot] = counts
        self._grouped_cache.pop(sid, None)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def members(self, sid: int, trial: int) -> np.ndarray:
        """One trial's members of one state (a read-only view)."""
        slot = self.slot(sid)
        return self.pool[slot, trial, :self.sizes[slot, trial]]

    def grouped(self, sid: int) -> Tuple[np.ndarray, np.ndarray]:
        """All members of one state, flat and trial-grouped.

        Returns ``(grouped, bounds)`` in the :func:`segmented_choice`
        layout: trial ``m``'s members occupy
        ``grouped[bounds[m]:bounds[m + 1]]`` (within-trial order is the
        pool's arbitrary order).  Costs one O(members) gather, memoized
        until the state's rows next change.
        """
        got = self._grouped_cache.get(sid)
        if got is None:
            slot = self.slot(sid)
            sizes = self.sizes[slot]
            bounds = np.concatenate([[0], np.cumsum(sizes)])
            total = int(bounds[-1])
            rank = np.arange(total) - np.repeat(bounds[:-1], sizes)
            flat = np.repeat(np.arange(self.trials) * self.n, sizes) + rank
            got = (self.pool[slot].reshape(-1)[flat], bounds)
            self._grouped_cache[sid] = got
        return got

    # ------------------------------------------------------------------
    # Mutations (O(edited) each)
    # ------------------------------------------------------------------
    def remove(
        self, sid: int, gone: np.ndarray, sorted_by_trial: bool = False
    ) -> None:
        """Swap-delete ``gone`` (duplicate-free, all pooled) from ``sid``.

        Surviving tail elements of each trial's row fill the holes the
        removed elements leave below the new row size, so the edit
        touches O(len(gone)) slots however large the rows are.  Pass
        ``sorted_by_trial=True`` when ``gone`` is already trial-grouped
        (the engine's per-period mover batches are) to skip the sort.
        """
        slot = self.slots.get(sid)
        if slot is None or gone.size == 0:
            return
        self._grouped_cache.pop(sid, None)
        n, pos, flag = self.n, self.pos, self._flag
        trials_of = gone // n
        if not sorted_by_trial:
            order = np.argsort(trials_of, kind="stable")
            gone = gone[order]
            trials_of = trials_of[order]
        removed = np.bincount(trials_of, minlength=self.trials)
        sizes = self.sizes[slot]
        new_sizes = sizes - removed
        cols = pos[gone]
        flag[gone] = True
        # Tail regions [new_size, size) of the touched rows, trial-major
        # -- the same order the trial-sorted ``gone`` induces on holes.
        active = np.flatnonzero(removed)
        tail_counts = removed[active]
        tail_rank = (
            np.arange(int(tail_counts.sum()))
            - np.repeat(
                np.concatenate([[0], np.cumsum(tail_counts)[:-1]]),
                tail_counts,
            )
        )
        row_flat = self.pool[slot].reshape(-1)
        tail = row_flat[
            np.repeat(active * n + new_sizes[active], tail_counts)
            + tail_rank
        ]
        keep_tail = tail[~flag[tail]]
        hole_mask = cols < new_sizes[trials_of]
        holes = cols[hole_mask]
        row_flat[trials_of[hole_mask] * n + holes] = keep_tail
        pos[keep_tail] = holes
        flag[gone] = False
        self.sizes[slot] = new_sizes

    def apply_deltas(self, removes, adds) -> None:
        """Apply one period's membership deltas in two fused passes."""
        if removes:
            self.remove_many(removes.items())
        if adds:
            self.add_many(adds.items())

    def remove_many(
        self, items: Sequence[Tuple[int, Sequence[np.ndarray]]]
    ) -> None:
        """One fused swap-delete pass over many states' removal batches.

        ``items`` maps state ids to lists of trial-grouped gid chunks
        (the engine's per-period mover batches).  All chunks are
        processed in one segment-space pass -- segment = (state row,
        trial) -- so a period with several moving edges pays one fixed
        numpy-call overhead instead of one per edge.
        """
        chunks: List[np.ndarray] = []
        seg_chunks: List[np.ndarray] = []
        total = 0
        for sid, chs in items:
            slot = self.slots.get(sid)
            if slot is None:
                continue
            for chunk in chs:
                if chunk.size:
                    self._grouped_cache.pop(sid, None)
                    total += chunk.size
                    chunks.append(chunk)
                    seg_chunks.append(
                        slot * self.trials + chunk // self.n
                    )
        if not chunks:
            return
        if total <= 4:
            # Scalar fast path: near-stationary protocols move a
            # handful of hosts per period, where the vectorized pass's
            # ~25 numpy-call overhead dwarfs the work.
            pool_flat, pos, n = self._pool_flat, self.pos, self.n
            sizes_flat = self.sizes.reshape(-1)
            for chunk, segs in zip(chunks, seg_chunks):
                for gid, seg in zip(chunk.tolist(), segs.tolist()):
                    size = sizes_flat[seg] = sizes_flat[seg] - 1
                    col = pos[gid]
                    last = pool_flat[seg * n + size]
                    pool_flat[seg * n + col] = last
                    pos[last] = col
            return
        gone = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        seg = np.concatenate(seg_chunks) if len(chunks) > 1 else seg_chunks[0]
        if len(chunks) > 1:
            order = np.argsort(seg, kind="stable")
            gone = gone[order]
            seg = seg[order]
        n, pos, flag = self.n, self.pos, self._flag
        sizes_flat = self.sizes.reshape(-1)
        removed = np.bincount(seg, minlength=sizes_flat.size)
        new_sizes = sizes_flat - removed
        cols = pos[gone]
        flag[gone] = True
        active = np.flatnonzero(removed)
        tail_counts = removed[active]
        tail_rank = (
            np.arange(int(tail_counts.sum()))
            - np.repeat(
                np.concatenate([[0], np.cumsum(tail_counts)[:-1]]),
                tail_counts,
            )
        )
        tail = self._pool_flat[
            np.repeat(active * n + new_sizes[active], tail_counts)
            + tail_rank
        ]
        keep_tail = tail[~flag[tail]]
        hole_mask = cols < new_sizes[seg]
        holes = cols[hole_mask]
        self._pool_flat[seg[hole_mask] * n + holes] = keep_tail
        pos[keep_tail] = holes
        flag[gone] = False
        sizes_flat -= removed

    def add_many(
        self, items: Sequence[Tuple[int, Sequence[np.ndarray]]]
    ) -> None:
        """One fused append pass over many states' addition batches."""
        chunks: List[np.ndarray] = []
        seg_chunks: List[np.ndarray] = []
        total = 0
        for sid, chs in items:
            if sid not in self.tracked:
                continue
            slot = self.slot(sid)
            for chunk in chs:
                if chunk.size:
                    self._grouped_cache.pop(sid, None)
                    total += chunk.size
                    chunks.append(chunk)
                    seg_chunks.append(
                        slot * self.trials + chunk // self.n
                    )
        if not chunks:
            return
        if total <= 4:
            pool_flat, pos, n = self._pool_flat, self.pos, self.n
            sizes_flat = self.sizes.reshape(-1)
            for chunk, segs in zip(chunks, seg_chunks):
                for gid, seg in zip(chunk.tolist(), segs.tolist()):
                    size = sizes_flat[seg]
                    pool_flat[seg * n + size] = gid
                    pos[gid] = size
                    sizes_flat[seg] = size + 1
            return
        gids = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        seg = np.concatenate(seg_chunks) if len(chunks) > 1 else seg_chunks[0]
        if len(chunks) > 1:
            order = np.argsort(seg, kind="stable")
            gids = gids[order]
            seg = seg[order]
        n = self.n
        sizes_flat = self.sizes.reshape(-1)
        added = np.bincount(seg, minlength=sizes_flat.size)
        rank = (
            np.arange(gids.size)
            - np.repeat(np.concatenate([[0], np.cumsum(added)[:-1]]), added)
        )
        cols = sizes_flat[seg] + rank
        self._pool_flat[seg * n + cols] = gids
        self.pos[gids] = cols
        sizes_flat += added

    def add(
        self, sid: int, gids: np.ndarray, sorted_by_trial: bool = False
    ) -> None:
        """Append ``gids`` (not currently pooled in ``sid``) to its rows."""
        if sid not in self.tracked or gids.size == 0:
            return
        slot = self.slot(sid)
        self._grouped_cache.pop(sid, None)
        n = self.n
        trials_of = gids // n
        if not sorted_by_trial:
            order = np.argsort(trials_of, kind="stable")
            gids = gids[order]
            trials_of = trials_of[order]
        added = np.bincount(trials_of, minlength=self.trials)
        sizes = self.sizes[slot]
        # Rank within the trial-sorted batch, offset by each row's
        # current size, yields the append columns.
        rank = (
            np.arange(gids.size)
            - np.repeat(np.concatenate([[0], np.cumsum(added)[:-1]]), added)
        )
        cols = sizes[trials_of] + rank
        self.pool[slot].reshape(-1)[trials_of * n + cols] = gids
        self.pos[gids] = cols
        self.sizes[slot] = sizes + added


@dataclass
class _CoinGroup:
    """One actor state's sub-1.0-probability actions, fused."""

    sid: int
    indices: List[int]            # declaration indices, ascending
    actions: List[object]         # compiled actions, same order
    probabilities: np.ndarray     # (A,) float
    psum: float = field(init=False)

    def __post_init__(self) -> None:
        self.psum = float(self.probabilities.sum())

    @property
    def width(self) -> int:
        return len(self.actions)


class ActionPlanner:
    """Plans per-period actor selections for a compiled protocol.

    Parameters
    ----------
    compiled:
        The engine's compiled action list (declaration order).
    trials, n:
        Batch dimensions (M trials of N hosts).

    The planner partitions the compiled actions statically:

    * ``probability >= 1.0`` actions fire every member of their state
      (planned from the engine's segment grouping, as before);
    * each state's ``0 < probability < 1`` actions form one
      :class:`_CoinGroup` handled by the multinomial split -- unless
      the state's probabilities sum above 1 (impossible for synthesized
      specs, whose normalizing constant bounds the per-state total, but
      expressible by hand-built specs), in which case that state falls
      back to independent per-action binomials.

    :attr:`disjoint_movers` is True when the plan structure alone
    guarantees that no host can be moved twice in one period (all
    kinds move their *actors*, every actor fires at most one action),
    letting the engine skip its at-most-one-move bookkeeping.
    """

    def __init__(
        self,
        compiled: Sequence,
        trials: int,
        n: int,
        connection_failure_rate: float = 0.0,
    ):
        self.trials = trials
        self.n = n
        self._batch = trials * n
        self._failure = connection_failure_rate
        # Matches the former per-action threshold: below ~max(4, M/4)
        # expected firings, per-trial scans beat batch-wide passes.
        self._dense_threshold = max(4.0, trials / 4.0)

        self.full_actions: List[Tuple[int, object]] = []
        self.coin_groups: List[_CoinGroup] = []
        self.fallback_groups: List[_CoinGroup] = []
        by_state: Dict[int, _CoinGroup] = {}
        for index, action in enumerate(compiled):
            probability = action.probability
            if probability <= 0.0:
                continue
            if probability >= 1.0:
                self.full_actions.append((index, action))
                continue
            group = by_state.get(action.actor)
            if group is None:
                group = _CoinGroup(
                    sid=action.actor, indices=[], actions=[],
                    probabilities=np.empty(0),
                )
                by_state[action.actor] = group
            group.indices.append(index)
            group.actions.append(action)
        for sid in sorted(by_state):
            group = by_state[sid]
            group.probabilities = np.array(
                [a.probability for a in group.actions], dtype=float
            )
            group.__post_init__()
            if group.psum <= 1.0:
                self.coin_groups.append(group)
            else:
                self.fallback_groups.append(group)

        # The fused (G, 1, K) probability tensor: row g holds group g's
        # action probabilities, zero padding, and the no-op remainder
        # last, so one broadcast multinomial call serves every group.
        if self.coin_groups:
            width = max(g.width for g in self.coin_groups)
            pvals = np.zeros((len(self.coin_groups), 1, width + 1))
            for g, group in enumerate(self.coin_groups):
                pvals[g, 0, :group.width] = group.probabilities
                pvals[g, 0, -1] = 1.0 - group.psum
            self._pvals = pvals
            self._group_sids = np.array(
                [g.sid for g in self.coin_groups], dtype=np.int64
            )
        else:
            self._pvals = None
            self._group_sids = np.empty(0, dtype=np.int64)

        self.disjoint_movers = self._movers_disjoint(compiled)

        # Absorbing-state short-circuit: per action, the states that
        # must be non-empty in a trial for the action to be observable
        # there (condition targets; token pools).  A trial where one of
        # them is empty cannot produce a mover, so its actors need not
        # be selected at all -- message accounting still charges them
        # (their sends happen regardless), keeping parity with the
        # serial engine.  This is what makes converged LV trials (the
        # minority camp extinct) essentially free while stragglers
        # finish.
        self._needs: Dict[int, Optional[np.ndarray]] = {}
        for index, action in enumerate(compiled):
            needed: List[int] = []
            if action.kind in ("sample", "tokenize"):
                needed.extend(int(sid) for sid in action.required)
                if action.kind == "tokenize":
                    needed.append(int(action.token_state))
            elif action.kind in ("anyof", "push"):
                needed.append(int(action.match))
            unique = sorted(set(needed))
            self._needs[index] = (
                np.array(unique, dtype=np.int64) if unique else None
            )

        # Peer-contact widths: messages an actor of each action sends
        # per period (0 for flips).  Summed once per period from the
        # multinomial splits, message accounting stays exact even for
        # trials whose selection was thinned away -- their actors still
        # send, they just cannot convert anyone.
        self._msg_width = {
            index: _action_width(action)
            for index, action in enumerate(compiled)
        }
        self._group_widths = [
            np.array([self._msg_width[i] for i in g.indices], dtype=np.int64)
            for g in self.coin_groups
        ]
        self._group_has_width = [
            bool(w.any()) for w in self._group_widths
        ]
        # Analytic push eligibility: a push action's movers are its
        # *targets*, drawn by every firing actor as iid uniform peers.
        # With the match state disjoint from the actor state, all
        # actors see the same match mass, so the surviving matched
        # contacts follow one exact binomial law and the movers can be
        # sampled straight from the match pool (see _plan_push) -- no
        # per-actor target draws, no batch-wide state checks.  A push
        # whose match state IS its actor state keeps the explicit path
        # (each actor excludes itself, breaking the single-q symmetry).
        self._push_analytic = {
            index: action.kind == "push" and action.match != action.actor
            for index, action in enumerate(compiled)
        }
        # Columns lifted out of the actor-selection pass entirely:
        # tokenize (token routing needs counts, not actor identities)
        # and analytic push (movers come from the match pool).
        self._group_lifted = [
            any(
                a.kind == "tokenize" or self._push_analytic[i]
                for i, a in zip(g.indices, g.actions)
            )
            for g in self.coin_groups
        ]

        # Analytic condition thinning: a selected actor of a sample /
        # anyof / tokenize action fires iff its uniformly-drawn peers
        # match the required states -- an independent Bernoulli whose
        # probability is an exact function of the period-start counts.
        # Thinning the splits by it (``movers | heads ~ Binomial(heads,
        # q)``, the serial engine's own conditional law) means only the
        # *movers* are ever selected; peer draws and state checks for
        # these kinds disappear from the batch hot path entirely.
        # ``push`` movers are *targets*, handled by their own analytic
        # law (``_plan_push``) whenever the match state differs from
        # the actor state; protocols whose coins are all flips skip
        # thinning statically, leaving their draw stream untouched.
        coin_kinds = {
            a.kind
            for grp in (self.coin_groups + self.fallback_groups)
            for a in grp.actions
        }
        self._thinning = bool(
            coin_kinds & {"sample", "anyof", "tokenize"}
        )
        self._prefired = {
            index: action.kind in ("flip", "sample", "anyof")
            for index, action in enumerate(compiled)
        }
        self._q_buf: Optional[np.ndarray] = None

        # Dense-probe scratch (lazy: sparse-regime protocols never pay
        # the 9 bytes per host).  ``_taken`` is kept all-False between
        # calls; ``_slot`` is always written before it is read; the
        # extra final slot is the dummy that absorbs out-of-row probes.
        self._taken: Optional[np.ndarray] = None
        self._slot: Optional[np.ndarray] = None
        self._arange: Optional[np.ndarray] = None

    def _movers_disjoint(self, compiled: Sequence) -> bool:
        """Can the planned movers of one period ever collide?

        ``push`` moves its *targets* and ``tokenize`` moves members of
        the token state, so those kinds can collide with anything.  For
        actor-moving kinds (flip/sample/anyof), actors of different
        states are disjoint by definition and the multinomial split
        makes actors within a state fire at most one action -- unless a
        state mixes a ``probability >= 1.0`` action (which fires every
        member) with any other action, or needed the independent-coin
        fallback.
        """
        if self.fallback_groups:
            return False
        if any(
            action.kind not in ("flip", "sample", "anyof")
            for action in compiled if action.probability > 0.0
        ):
            return False
        full_sids = [action.actor for _, action in self.full_actions]
        if len(set(full_sids)) != len(full_sids):
            return False  # two all-member actions on one state
        if {g.sid for g in self.coin_groups} & set(full_sids):
            return False  # all-member action overlaps a coin group
        return True

    # ------------------------------------------------------------------
    # Per-period planning
    # ------------------------------------------------------------------
    def plan(
        self,
        rng: np.random.Generator,
        counts0: np.ndarray,
        pools: TrialMemberPools,
        segments: Segments,
        trial_members: TrialMembers,
    ) -> Tuple[List[PlannedAction], np.ndarray]:
        """Select the actors of every action for one period.

        ``counts0`` is the period-start ``(M, S)`` count matrix,
        ``pools`` the period-start membership pools, and
        ``segments``/``trial_members`` the engine's cached member
        lookups.  Returns ``(plans, messages)``: ``(action, actors)``
        pairs in action declaration order (empty selections omitted)
        plus the period's exact per-trial peer-contact counts --
        charged from the splits, so short-circuited trials still pay
        for the sends their unobservable actors make.
        """
        plans: Dict[int, PlannedAction] = {}
        messages = np.zeros(self.trials, dtype=np.int64)
        # One cheap period-wide gate: when no (trial, state) cell is
        # empty, every per-action fireability mask is trivially None.
        any_empty = bool((counts0 == 0).any())
        for index, action in self.full_actions:
            actor_counts = counts0[:, action.actor]
            if not actor_counts.any():
                continue
            width = self._msg_width[index]
            if width:
                messages += width * actor_counts
            if self._push_analytic[index]:
                # Every member fires, so the heads are the counts; the
                # movers come straight from the analytic conversion law.
                self._plan_push(
                    plans, rng, index, action, actor_counts, counts0,
                    segments,
                )
                continue
            actors = segments(action.actor)[0]
            if any_empty:
                fireable = self._fireable(counts0, index)
                if fireable is not None:
                    actors = actors[fireable[actors // self.n]]
            if actors.size:
                plans[index] = PlannedAction(action, actors)

        if self.coin_groups:
            occupancy = counts0[:, self._group_sids].T  # (G, M)
            splits_all = rng.multinomial(occupancy, self._pvals)
            if self._thinning:
                movers_all = rng.binomial(
                    splits_all[:, :, :-1], self._q_tensor(counts0)
                )
            else:
                movers_all = splits_all[:, :, :-1]
            dense: List[Tuple[_CoinGroup, np.ndarray, np.ndarray]] = []
            for g, group in enumerate(self.coin_groups):
                if self._group_has_width[g]:
                    # Messages charge the unthinned coin counts: every
                    # head sends, whether or not its peers matched.
                    messages += (
                        splits_all[g][:, :group.width]
                        @ self._group_widths[g]
                    )
                splits = movers_all[g][:, :group.width]  # (M, A)
                if self._group_lifted[g]:
                    splits = splits.copy()
                    for a, (index, action) in enumerate(
                        zip(group.indices, group.actions)
                    ):
                        if action.kind == "tokenize":
                            # Token routing needs fired counts, not
                            # actors: lift the column out of the
                            # selection entirely.
                            fired = splits[:, a]
                            if fired.any():
                                plans[index] = PlannedAction(
                                    action, _EMPTY, prefired=True,
                                    tokens=fired.astype(np.int64),
                                )
                            splits[:, a] = 0
                        elif self._push_analytic[index]:
                            # Push movers are targets: plan them from
                            # the match pool, never selecting actors.
                            heads = splits[:, a]
                            if heads.any():
                                self._plan_push(
                                    plans, rng, index, action, heads,
                                    counts0, segments,
                                )
                            splits[:, a] = 0
                total_take = int(splits.sum())
                if total_take == 0:
                    continue
                take = splits.sum(axis=1, dtype=np.int64)
                actor_counts = counts0[:, group.sid]
                total = int(actor_counts.sum())
                if group.psum * total >= self._dense_threshold:
                    if self._probe_viable(take, actor_counts, group.sid,
                                          pools):
                        dense.append((group, splits, take))
                        continue
                    grouped, bounds = segments(group.sid)
                    actors = _segmented_choice(rng, grouped, bounds, take)
                    self._partition(
                        plans, rng, group, actors, take, splits,
                        pre_shuffled=False,
                    )
                    continue
                active = np.flatnonzero(take)
                if active.size == 0:
                    continue
                actors = np.concatenate([
                    rng.choice(
                        trial_members(int(trial), group.sid),
                        size=int(take[trial]), replace=False,
                    )
                    for trial in active
                ])
                self._partition(plans, rng, group, actors, take, splits)
            if dense:
                self._plan_dense(plans, rng, dense, pools)

        for group in self.fallback_groups:
            self._plan_fallback(
                plans, rng, group, counts0, pools, segments, trial_members,
                messages,
            )
        return [plans[index] for index in sorted(plans)], messages

    # ------------------------------------------------------------------
    # Probe-vs-materialize strategy gate
    # ------------------------------------------------------------------
    def _probe_viable(
        self,
        take: np.ndarray,
        actor_counts: np.ndarray,
        sid: int,
        pools: TrialMemberPools,
    ) -> bool:
        """Should this state's selection join the fused probe pass?

        Pool-position probing costs ``take * size / (size - take)``
        draws per trial -- only same-period duplicates reject -- so it
        is viable whenever no trial wants more than a quarter of its
        state (which would collapse the acceptance rate) and the state
        has pools to probe.  Inputs are period-start quantities, so the
        decision is replay-deterministic.
        """
        return sid in pools.tracked and bool(np.all(take * 4 <= actor_counts))

    def _match_probability(
        self, counts0: np.ndarray, action
    ) -> Optional[np.ndarray]:
        """Per-trial probability that one selected actor's condition holds.

        Exact, not mean-field: peers are drawn uniformly from the
        ``n - 1`` other hosts (dead ones keep their slot but fail the
        alive check, so the matching mass is the *alive* count of each
        required state, minus the actor itself when it sits in that
        state), and every contact independently survives the
        connection-failure coin.  ``None`` means probability 1 (flips)
        or an unthinnable kind (push).
        """
        others = self.n - 1
        survive = 1.0 - self._failure
        if action.kind in ("sample", "tokenize"):
            if len(action.required) == 0:
                return None
            q: Optional[np.ndarray] = None
            for required in action.required:
                required = int(required)
                matching = counts0[:, required] - (
                    1 if required == action.actor else 0
                )
                # Clip into [0, 1]: a trial whose actor state is empty
                # can carry matching == n (no actor to subtract), and
                # its q is never exercised (zero heads to thin).
                term = np.clip(matching * (survive / others), 0.0, 1.0)
                q = term if q is None else q * term
            return q
        if action.kind == "anyof":
            match = int(action.match)
            matching = counts0[:, match] - (
                1 if match == action.actor else 0
            )
            per_contact = np.clip(matching * (survive / others), 0.0, 1.0)
            return 1.0 - (1.0 - per_contact) ** action.fanout
        return None

    def _q_tensor(self, counts0: np.ndarray) -> np.ndarray:
        """The ``(G, M, A_max)`` thinning probabilities for this period."""
        if self._q_buf is None:
            width = self._pvals.shape[2] - 1
            self._q_buf = np.ones(
                (len(self.coin_groups), self.trials, width)
            )
        q = self._q_buf
        for g, group in enumerate(self.coin_groups):
            for a, action in enumerate(group.actions):
                probability = self._match_probability(counts0, action)
                q[g, :, a] = 1.0 if probability is None else probability
        return q

    def _plan_push(
        self,
        plans: Dict[int, PlannedAction],
        rng: np.random.Generator,
        index: int,
        action,
        heads: np.ndarray,
        counts0: np.ndarray,
        segments: Segments,
    ) -> None:
        """Select a push action's movers directly: targets, not actors.

        A firing push actor's ``fanout`` contacts are iid uniform over
        its ``n - 1`` peers, each independently surviving the
        connection-failure coin; a contact *converts* its target iff
        the target is an alive member of the match state.  With the
        match state disjoint from the actor state (the eligibility
        condition), every contact hits a match member with the same
        exact probability ``q = (1 - f) * c_match / (n - 1)`` (dead
        hosts keep their slot and fail the check, so ``c_match`` is the
        alive count), and conditional on hitting, the hit member is iid
        uniform over the match pool.  The period's surviving matched
        contacts are therefore ``K ~ Binomial(heads * fanout, q)`` and
        the movers are the distinct members among ``K`` uniform pool
        positions -- the serial engine's own conversion law
        (``unique(targets[ok])``), reached without drawing a single
        per-actor target or scanning a single state array.  A trial
        whose match state is empty draws nothing at all, and message
        accounting still charges every head's contacts upstream.
        """
        survive = 1.0 - self._failure
        q = np.clip(
            counts0[:, action.match] * (survive / (self.n - 1)), 0.0, 1.0
        )
        hits = rng.binomial(heads * action.fanout, q)
        if not hits.any():
            return
        grouped, bounds = segments(action.match)
        sizes = np.diff(bounds)
        positions = rng.integers(0, np.repeat(sizes, hits))
        movers = np.unique(
            grouped[np.repeat(bounds[:-1], hits) + positions]
        )
        plans[index] = PlannedAction(action, movers, prefired=True)

    def _fireable(
        self, counts0: np.ndarray, index: int
    ) -> Optional[np.ndarray]:
        """Per-trial mask of trials where action ``index`` can fire.

        ``None`` means every trial can (the common case, returned
        without allocating).  Depends only on period-start counts, so
        replays stay deterministic.
        """
        needed = self._needs[index]
        if needed is None:
            return None
        if needed.size == 1:
            mask = counts0[:, int(needed[0])] > 0
        else:
            mask = np.all(counts0[:, needed] > 0, axis=1)
        if mask.all():
            return None
        return mask

    # ------------------------------------------------------------------
    # Partitioning a state's selection across its actions
    # ------------------------------------------------------------------
    def _partition(
        self,
        plans: Dict[int, PlannedAction],
        rng: np.random.Generator,
        group: _CoinGroup,
        actors: np.ndarray,
        take: np.ndarray,
        splits: np.ndarray,
        pre_shuffled: bool = True,
    ) -> None:
        """Assign a state's selected actors to its actions.

        ``actors`` is trial-segment-major with ``take[m]`` entries per
        trial.  Single-action groups forward the selection unchanged.
        Multi-action groups hand out consecutive runs of
        ``splits[m, a]`` actors per action -- the multinomial's
        exclusive assignment -- which requires the order within each
        trial segment to be uniform.  Probe draw order and
        ``Generator.choice`` order already are (``pre_shuffled``);
        sorted selections (``segmented_choice``) get an explicit
        segmented shuffle first.
        """
        if actors.size == 0:
            return
        if group.width == 1:
            index = group.indices[0]
            plans[index] = PlannedAction(
                group.actions[0], actors, prefired=self._prefired[index]
            )
            return
        if not pre_shuffled:
            # One fused sort key: integer segment id + uniform [0, 1)
            # jitter sorts by segment with a uniform shuffle inside it.
            seg = np.repeat(np.arange(self.trials), take)
            actors = actors[np.argsort(seg + rng.random(actors.size))]
        assignment = np.repeat(
            np.tile(np.arange(group.width), self.trials), splits.ravel()
        )
        for a, (index, action) in enumerate(
            zip(group.indices, group.actions)
        ):
            chosen = actors[assignment == a]
            if chosen.size:
                plans[index] = PlannedAction(
                    action, chosen, prefired=self._prefired[index]
                )

    # ------------------------------------------------------------------
    # The fused dense rejection probe
    # ------------------------------------------------------------------
    def _plan_dense(
        self,
        plans: Dict[int, PlannedAction],
        rng: np.random.Generator,
        batch_groups: List[Tuple[_CoinGroup, np.ndarray, np.ndarray]],
        pools: TrialMemberPools,
    ) -> None:
        """Select actors for every dense state in one probe loop.

        Pool-position rejection sampling, fused across every dense
        (state, trial) segment: each segment probes uniform *positions*
        of its own member-pool row, so every probe lands on a valid
        member and only same-period duplicates reject -- acceptance is
        at least 3/4 however dense or sparse the state is (host-id
        probing, by contrast, pays the inverse of the state's density).
        Pool rows of different states hold disjoint gid sets, so one
        shared ``taken`` mask deduplicates the whole pass, and the
        number of random draws stays proportional to the total firing
        count.  Keeping each segment's first ``need`` valid probes in
        draw order is sequential uniform sampling without replacement,
        so the per-segment order is itself uniform (what the partition
        step relies on).
        """
        n = self.n
        trials = self.trials
        if self._taken is None:
            # One extra trailing slot: the dummy position that absorbs
            # probes landing beyond a row's live size.
            self._taken = np.zeros(self._batch + 1, dtype=bool)
            self._slot = np.zeros(self._batch + 1, dtype=np.int32)
        taken, slot = self._taken, self._slot
        dummy = self._batch

        n_segments = len(batch_groups) * trials
        need = np.concatenate([take for _, _, take in batch_groups])
        slots = [pools.slot(group.sid) for group, _, _ in batch_groups]
        seg_sizes = np.concatenate([pools.sizes[s] for s in slots])
        group_max = np.array(
            [int(pools.sizes[s].max()) for s in slots], dtype=np.int64
        )
        trial_arange = np.arange(trials, dtype=np.int64)
        seg_base = np.concatenate([
            (s * trials + trial_arange) * n for s in slots
        ])
        pool_flat = pools.pool.reshape(-1)
        # Acceptance per probe: lands inside the row's live size
        # (scalar per-group draws use the group's max row size) and is
        # not a same-period duplicate.
        acceptance = group_max.repeat(trials) / np.maximum(
            seg_sizes - need, 1
        )
        need = need.astype(np.int64).copy()
        actor_chunks: List[np.ndarray] = []
        seg_chunks: List[np.ndarray] = []
        first_round = True
        while True:
            active = np.flatnonzero(need)
            if active.size == 0:
                break
            # Oversample by the inverse acceptance plus a four-sigma
            # binomial margin, so virtually every period resolves in a
            # single round (the redraw is the rare tail).
            expected = need[active] * acceptance[active]
            draws = (
                expected + 4.0 * np.sqrt(expected) + 8.0
            ).astype(np.int64)
            candidate_seg = np.repeat(active, draws)
            total = int(draws.sum())
            # One scalar-bound draw per group (a scalar bound is ~3x
            # faster than per-element bounds); probes at positions
            # beyond their own row's size are parked on the dummy.
            positions = np.empty(total, dtype=np.int64)
            offset = 0
            for gi in range(len(slots)):
                lo = np.searchsorted(active, gi * trials)
                hi = np.searchsorted(active, (gi + 1) * trials)
                count = int(draws[lo:hi].sum())
                if count:
                    positions[offset:offset + count] = rng.integers(
                        0, group_max[gi], size=count
                    )
                offset += count
            inside = positions < seg_sizes[candidate_seg]
            all_inside = bool(inside.all())
            gids = pool_flat[seg_base[candidate_seg] + positions]
            if not all_inside:
                gids = np.where(inside, gids, dummy)
            if self._arange is None or self._arange.size < total:
                grown = max(total, 2 * (0 if self._arange is None
                                        else self._arange.size))
                self._arange = np.arange(grown, dtype=np.int32)
            index = self._arange[:total]
            # Duplicate probes of one member within this round: the
            # last writer wins, the rest are dropped (they are surplus
            # -- the deficit recount below redraws if needed).  Probes
            # of members kept in an earlier round (``taken``; empty in
            # round one) and out-of-row probes (the dummy, whose
            # ``taken`` stays False) are masked out afterwards.
            slot[gids] = index
            winner_mask = slot[gids] == index
            if not all_inside:
                winner_mask &= inside
            if not first_round:
                winner_mask &= ~taken[gids]
            first_round = False
            winners = gids[winner_mask]
            winner_seg = candidate_seg[winner_mask]
            # Winners are in draw order and therefore segment-grouped;
            # keep each segment's first need[s] of them.
            winner_counts = np.bincount(winner_seg, minlength=n_segments)
            starts = np.concatenate([[0], np.cumsum(winner_counts)[:-1]])
            rank = np.arange(winners.size) - starts[winner_seg]
            keep = rank < need[winner_seg]
            kept = winners[keep]
            kept_seg = winner_seg[keep]
            taken[kept] = True
            actor_chunks.append(kept)
            seg_chunks.append(kept_seg)
            need -= np.bincount(kept_seg, minlength=n_segments)
        if not actor_chunks:
            return
        if len(actor_chunks) == 1:
            # Single-round fast path (the overwhelmingly common case):
            # winners are already segment-grouped in draw order.
            actors = actor_chunks[0]
        else:
            actors = np.concatenate(actor_chunks)
            seg = np.concatenate(seg_chunks)
            # Group by segment; the stable sort preserves draw order
            # within each segment, keeping the per-segment ordering
            # uniform (later rounds simply continue the probe stream).
            actors = actors[np.argsort(seg, kind="stable")]
        taken[actors] = False
        offset = 0
        for group, splits, take in batch_groups:
            count = int(take.sum())
            self._partition(
                plans, rng, group, actors[offset:offset + count],
                take, splits,
            )
            offset += count

    # ------------------------------------------------------------------
    # Independent-coin fallback (per-state probabilities summing > 1)
    # ------------------------------------------------------------------
    def _plan_fallback(
        self,
        plans: Dict[int, PlannedAction],
        rng: np.random.Generator,
        group: _CoinGroup,
        counts0: np.ndarray,
        pools: TrialMemberPools,
        segments: Segments,
        trial_members: TrialMembers,
        messages: np.ndarray,
    ) -> None:
        """Legacy semantics for a state whose coin probabilities exceed 1.

        Such a state cannot be a multinomial split (the no-op remainder
        would be negative), so its actions keep fully independent
        ``Binomial(count, p)`` coins -- the pre-planner behavior, with
        possible actor overlap resolved by the engine's at-most-one-move
        rule (``disjoint_movers`` is False whenever this path exists).
        """
        actor_counts = counts0[:, group.sid]
        total = int(actor_counts.sum())
        if total == 0:
            return
        for index, action in zip(group.indices, group.actions):
            probability = action.probability
            heads = rng.binomial(actor_counts, probability)
            width = self._msg_width[index]
            if width:
                messages += width * heads
            if self._push_analytic[index]:
                if heads.any():
                    self._plan_push(
                        plans, rng, index, action, heads, counts0, segments,
                    )
                continue
            match_probability = self._match_probability(counts0, action)
            if match_probability is not None:
                heads = rng.binomial(heads, match_probability)
            if action.kind == "tokenize":
                if heads.any():
                    plans[index] = PlannedAction(
                        action, _EMPTY, prefired=True,
                        tokens=heads.astype(np.int64),
                    )
                continue
            if not heads.any():
                continue
            if probability * total >= self._dense_threshold:
                if self._probe_viable(heads, actor_counts, group.sid, pools):
                    pseudo = _CoinGroup(
                        sid=group.sid, indices=[index], actions=[action],
                        probabilities=np.array([probability]),
                    )
                    self._plan_dense(
                        plans, rng,
                        [(pseudo, heads[:, None], heads.astype(np.int64))],
                        pools,
                    )
                    continue
                grouped, bounds = segments(group.sid)
                actors = _segmented_choice(rng, grouped, bounds, heads)
            else:
                active = np.flatnonzero(heads)
                if active.size == 0:
                    continue
                actors = np.concatenate([
                    rng.choice(
                        trial_members(int(trial), group.sid),
                        size=int(heads[trial]), replace=False,
                    )
                    for trial in active
                ])
            if actors.size:
                plans[index] = PlannedAction(
                    action, actors, prefired=self._prefired[index]
                )


def _action_width(action) -> int:
    """Peer contacts per actor for one action (0 = no peer sampling)."""
    if action.kind in ("sample", "tokenize"):
        return len(action.required)
    if action.kind in ("anyof", "push"):
        return action.fanout
    return 0


def _segmented_choice(rng, pool, bounds, take):
    """Late import indirection (batch_engine defines segmented_choice)."""
    from .batch_engine import segmented_choice

    return segmented_choice(rng, pool, bounds, take)
