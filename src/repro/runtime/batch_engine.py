"""Batched multi-trial execution: M protocol instances in one array.

Every experimental claim in the paper (Figures 5-12) is an *ensemble*
statement -- means and spreads over many independent runs of N-process
groups -- and mean-field results of the Bournez et al. kind only hold
in expectation.  Running the trial axis one :class:`RoundEngine` at a
time therefore wastes both wall clock and statistical power.  This
module runs M independent trials in a single ``(M, N)`` int8 state
array.

This is the top tier of the three-engine hierarchy (agent sim -> round
engine -> batch engine; see :mod:`repro.runtime.round_engine`).  Use it
whenever the quantity of interest is an ensemble mean, quantile band,
or frequency (extinction, accuracy); drop to :class:`RoundEngine` to
study one run, and to :class:`~repro.runtime.agent_sim.AgentSimulation`
to check synchrony artifacts.

Two RNG modes trade speed against bitwise reproducibility:

* ``mode="batch"`` (default) -- all trials draw from one root stream
  and every per-action step (actor selection, target sampling,
  connection-failure masking, token routing) is vectorized across the
  whole batch; peer-target sampling is additionally *fused* into one
  ``integers`` draw per period covering every action (each period
  plans all actor selections first, then slices the fused draw in
  action order).  Actor selection adapts to the regime: when expected
  activity is *dense* (the Lotka-Volterra majority protocol, where
  every camp is a constant fraction of N) each member flips one
  vectorized Bernoulli coin -- distributionally identical to binomial
  thinning plus a uniform without-replacement pick -- and when it is
  *sparse* (heavily tails-weighted coins like the endemic protocol's
  alpha ~ 1e-6) binomial thinning plus per-trial draws skips the batch
  scan entirely.  Exact per-trial draw counts (token routing) go
  through :func:`segmented_choice`, a segmented without-replacement
  sampler.  Per-state member lists are maintained *incrementally* for
  sparse-population states (the population-protocol simulation idiom).
  Trials are statistically independent and distributionally identical
  to M serial runs, but not draw-for-draw equal to them.
* ``mode="lockstep"`` -- M embedded :class:`RoundEngine` instances
  seeded with :func:`~repro.runtime.rng.spawn_seeds` trial seeds.
  Each trial is *bitwise identical* to a serial ``RoundEngine`` run
  with the same seed; the speedup is limited to shared recording
  overhead.  This is the validation bridge (see
  ``tests/test_batch_engine.py``) and the replay mode for debugging a
  single ensemble member.

Both modes record into a :class:`BatchMetricsRecorder`, which stores
``(M, periods, states)`` count tensors and provides the mean/quantile
reducers the figure benches aggregate with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..synthesis.protocol import ProtocolSpec
from .metrics import MetricsRecorder
from .round_engine import RoundEngine, _compile, initial_state_vector
from .rng import RandomSource, spawn_seeds

#: A per-trial hook factory: called with the trial index, returns a hook
#: ``hook(view)`` where ``view`` offers the RoundEngine mutation surface
#: (``period``, ``crash``, ``crash_fraction``, ``recover``,
#: ``members_in``, ...).  Stock hooks from :mod:`repro.runtime.failures`
#: and :mod:`repro.runtime.churn` work unchanged:
#: ``lambda m: MassiveFailure(at_period=500, fraction=0.5)``.
HookFactory = Callable[[int], Callable[[object], None]]

Edge = Tuple[str, str]


def segmented_choice(
    rng: np.random.Generator,
    pool: np.ndarray,
    bounds: np.ndarray,
    take: np.ndarray,
) -> np.ndarray:
    """Without-replacement draws from every segment of a flat pool at once.

    ``pool`` is a flat array whose segment ``s`` occupies
    ``pool[bounds[s]:bounds[s + 1]]`` (``bounds`` has ``S + 1`` entries
    with ``bounds[0] == 0``); ``take[s]`` elements are chosen uniformly
    without replacement from segment ``s``.  Returns the chosen elements
    grouped by segment, in ascending pool order within each segment
    (set semantics: every ``take[s]``-subset is equally likely).

    This is the sampler that removes the batch engine's per-trial
    ``Generator.choice`` loops: actor selection for sub-1.0-probability
    actions on dense states (the LV hot path) and token routing both
    need ``take[m]`` distinct members from each trial's segment, and a
    Python loop over trials costs O(M) interpreter round trips per
    action per period.  Two vectorized strategies, chosen by the take
    fraction:

    * **rejection** (every ``take[s] <= sizes[s] / 4``): draw one
      candidate position per requested element across all segments at
      once, keep the non-colliding ones, redraw the rest.  Acceptance
      is >= 3/4 per round, so the loop terminates in O(log) rounds and
      the number of random draws is proportional to ``take.sum()`` --
      not the pool size -- which is what makes dense-state sampling
      cheap (a 3% coin on a state holding 60% of an (M, N) batch draws
      ~0.02 * M * N values instead of 0.6 * M * N keys).
    * **top-k keys** (some segment wants more than a quarter of its
      pool): one uniform key per candidate, padded to a
      ``(segments, max_size)`` matrix; the ``take[s]`` smallest keys
      per row (an axis-1 ``argpartition``) are the sample.
    """
    pool = np.asarray(pool)
    bounds = np.asarray(bounds, dtype=np.int64)
    take = np.asarray(take, dtype=np.int64)
    sizes = np.diff(bounds)
    if take.shape != sizes.shape:
        raise ValueError(
            f"take has shape {take.shape}, expected {sizes.shape}"
        )
    if np.any(take < 0) or np.any(take > sizes):
        bad = int(np.flatnonzero((take < 0) | (take > sizes))[0])
        raise ValueError(
            f"segment {bad}: cannot take {int(take[bad])} of "
            f"{int(sizes[bad])} elements without replacement"
        )
    total_take = int(take.sum())
    if total_take == 0:
        return np.empty(0, dtype=pool.dtype)
    if total_take == pool.size:
        return pool

    if np.all(take * 4 <= sizes):
        # Rejection: candidate positions are global pool coordinates,
        # so collisions (within a round or against earlier rounds) are
        # plain duplicate values.
        accepted = np.empty(0, dtype=np.int64)
        pending_base = np.repeat(bounds[:-1], take)
        pending_size = np.repeat(sizes, take)
        while pending_base.size:
            candidates = pending_base + rng.integers(
                0, pending_size, dtype=np.int64
            )
            merged = np.concatenate([accepted, candidates])
            order = np.argsort(merged, kind="stable")
            sorted_values = merged[order]
            duplicate_sorted = np.zeros(merged.size, dtype=bool)
            duplicate_sorted[1:] = sorted_values[1:] == sorted_values[:-1]
            duplicate = np.empty(merged.size, dtype=bool)
            duplicate[order] = duplicate_sorted
            # The stable sort keeps previously accepted values ahead of
            # equal new candidates, so only the new ones re-enter.
            redraw = duplicate[accepted.size:]
            accepted = np.concatenate([accepted, candidates[~redraw]])
            pending_base = pending_base[redraw]
            pending_size = pending_size[redraw]
        return pool[np.sort(accepted)]

    # Top-k random keys, padded so the extraction is one axis-1
    # partition; padding keys are +inf and can never be drawn because
    # take[s] <= sizes[s].
    n_segments = sizes.size
    max_size = int(sizes.max())
    k_max = int(take.max())
    keys = rng.random((n_segments, max_size))
    keys[np.arange(max_size)[None, :] >= sizes[:, None]] = np.inf
    if k_max < max_size:
        block = np.argpartition(keys, k_max - 1, axis=1)[:, :k_max]
        # Order the block so row s's first take[s] entries are exactly
        # its take[s] *smallest* keys -- a manifestly uniform subset
        # (argpartition's internal order is not).
        block_keys = np.take_along_axis(keys, block, axis=1)
        block = np.take_along_axis(
            block, np.argsort(block_keys, axis=1), axis=1
        )
    else:
        block = np.argsort(keys, axis=1)
    chosen = block[np.arange(block.shape[1])[None, :] < take[:, None]]
    starts = np.repeat(bounds[:-1], take)
    # Segments are disjoint ascending position ranges, so one global
    # sort yields the documented segment-grouped, ascending-pool-order
    # layout (matching the rejection branch).
    return pool[np.sort(starts + chosen)]


class BatchMetricsRecorder:
    """Per-period ensemble observations as ``(M, periods, states)`` tensors.

    The batched sibling of :class:`~repro.runtime.metrics.MetricsRecorder`:
    one :meth:`record` call stores a full ``(M, S)`` count matrix, and the
    accessors return count tensors plus mean/quantile reducers over the
    trial axis.
    """

    def __init__(
        self,
        states: Sequence[str],
        trials: int,
        track_transitions: bool = True,
        member_log_state: Optional[str] = None,
        stride: int = 1,
    ):
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.states = tuple(states)
        self.trials = trials
        self.track_transitions = track_transitions
        #: As for :class:`~repro.runtime.metrics.MetricsRecorder`: when
        #: set to a state name, each recorded period stores the host ids
        #: of that state's alive members, per trial (the Figure 8
        #: stasher log, batched).  Expensive for big groups.
        self.member_log_state = member_log_state
        self.stride = stride
        self.periods: List[int] = []
        self._counts: List[np.ndarray] = []      # each (M, S)
        self._alive: List[np.ndarray] = []       # each (M,)
        self._transitions: List[Dict[Edge, np.ndarray]] = []
        #: Per recorded period: (period, [per-trial member id arrays]).
        self.member_log: List[Tuple[int, List[np.ndarray]]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        period: int,
        counts: np.ndarray,
        alive: np.ndarray,
        transitions: Optional[Mapping[Edge, np.ndarray]] = None,
        members: Optional[List[np.ndarray]] = None,
    ) -> None:
        """Store one period's ``(M, S)`` counts (subject to the stride)."""
        if period % self.stride != 0:
            return
        counts = np.asarray(counts)
        if counts.shape != (self.trials, len(self.states)):
            raise ValueError(
                f"counts shape {counts.shape} != "
                f"({self.trials}, {len(self.states)})"
            )
        self.periods.append(period)
        self._counts.append(np.array(counts, dtype=np.int64, copy=True))
        self._alive.append(np.array(alive, dtype=np.int64, copy=True))
        if self.track_transitions:
            self._transitions.append(
                {e: np.array(v, dtype=np.int64, copy=True)
                 for e, v in (transitions or {}).items()}
            )
        if self.member_log_state is not None and members is not None:
            if len(members) != self.trials:
                raise ValueError(
                    f"got member lists for {len(members)} trials, "
                    f"expected {self.trials}"
                )
            self.member_log.append(
                (period, [np.array(m, copy=True) for m in members])
            )

    # ------------------------------------------------------------------
    # Tensors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.array(self.periods, dtype=np.int64)

    def count_tensor(self) -> np.ndarray:
        """All counts as one ``(M, periods, S)`` tensor."""
        if not self._counts:
            return np.empty((self.trials, 0, len(self.states)), dtype=np.int64)
        return np.stack(self._counts, axis=1)

    def counts(self, state: str) -> np.ndarray:
        """Count series of one state, shape ``(M, periods)``."""
        index = self.states.index(state)
        if not self._counts:
            return np.empty((self.trials, 0), dtype=np.int64)
        return np.stack([c[:, index] for c in self._counts], axis=1)

    def alive_tensor(self) -> np.ndarray:
        """Alive population per trial and period, shape ``(M, periods)``."""
        if not self._alive:
            return np.empty((self.trials, 0), dtype=np.int64)
        return np.stack(self._alive, axis=1)

    def fractions(self, state: str) -> np.ndarray:
        """Per-trial state fractions among alive, shape ``(M, periods)``."""
        alive = self.alive_tensor().astype(float)
        alive[alive == 0] = np.nan
        return self.counts(state) / alive

    def transition_tensor(self, edge: Edge) -> np.ndarray:
        """Per-trial transitions along one edge, shape ``(M, periods)``."""
        if not self.track_transitions:
            raise RuntimeError("transition tracking is disabled")
        zero = np.zeros(self.trials, dtype=np.int64)
        if not self._transitions:
            return np.empty((self.trials, 0), dtype=np.int64)
        return np.stack(
            [t.get(edge, zero) for t in self._transitions], axis=1
        )

    def trial_member_log(self, trial: int) -> List[Tuple[int, np.ndarray]]:
        """One trial's member log, in :class:`MetricsRecorder` layout.

        Feeds the Figure 8 fairness/untraceability statistics
        (:func:`repro.analysis.fairness.analyze_member_log` accepts a
        raw log list) for any single ensemble member.
        """
        if self.member_log_state is None:
            raise RuntimeError("member logging is disabled")
        if not 0 <= trial < self.trials:
            raise IndexError(f"trial {trial} out of range [0, {self.trials})")
        return [(period, members[trial]) for period, members in self.member_log]

    def edges_seen(self) -> List[Edge]:
        """Every edge that carried at least one transition in any trial."""
        seen: List[Edge] = []
        for period_transitions in self._transitions:
            for edge, counts in period_transitions.items():
                if counts.any() and edge not in seen:
                    seen.append(edge)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Reducers over the trial axis
    # ------------------------------------------------------------------
    def mean_counts(self, state: str) -> np.ndarray:
        """Ensemble-mean count series, shape ``(periods,)``."""
        return self.counts(state).mean(axis=0)

    def std_counts(self, state: str) -> np.ndarray:
        """Ensemble standard deviation series, shape ``(periods,)``."""
        return self.counts(state).std(axis=0)

    def quantile_counts(self, state: str, q) -> np.ndarray:
        """Ensemble quantiles per period (``q`` scalar or sequence)."""
        return np.quantile(self.counts(state), q, axis=0)

    def mean_fractions(self, state: str) -> np.ndarray:
        """Ensemble-mean fraction series, shape ``(periods,)``."""
        return np.nanmean(self.fractions(state), axis=0)

    def mean_alive(self) -> np.ndarray:
        """Ensemble-mean alive population per period."""
        return self.alive_tensor().mean(axis=0)

    def mean_transitions(self, edge: Edge) -> np.ndarray:
        """Ensemble-mean transition series along one edge."""
        return self.transition_tensor(edge).mean(axis=0)

    def last_counts(self) -> np.ndarray:
        """Counts at the most recent recorded period, shape ``(M, S)``."""
        if not self._counts:
            return np.zeros((self.trials, len(self.states)), dtype=np.int64)
        return self._counts[-1].copy()


@dataclass
class BatchRunResult:
    """Outcome of a :meth:`BatchRoundEngine.run` call."""

    engine: "BatchRoundEngine"
    recorder: BatchMetricsRecorder

    def final_counts(self) -> Dict[str, np.ndarray]:
        """Per-state final counts, each an ``(M,)`` array."""
        matrix = self.engine.counts_matrix()
        return {
            s: matrix[:, i].copy()
            for i, s in enumerate(self.engine.state_names)
        }

    def mean_final_counts(self) -> Dict[str, float]:
        """Ensemble means of the final per-state counts."""
        return {s: float(v.mean()) for s, v in self.final_counts().items()}


class BatchTrialView:
    """One trial of a batch-mode engine, quacking like a RoundEngine.

    Hooks written against :class:`RoundEngine` (failure injectors, churn
    replayers) receive one of these per trial.  All *mutations* must go
    through the methods below -- they keep the engine's incremental
    count and membership bookkeeping consistent; writing directly to the
    ``alive`` / ``states`` row views would corrupt it.
    """

    def __init__(self, engine: "BatchRoundEngine", trial: int):
        self._engine = engine
        self.trial = trial
        self.n = engine.n

    @property
    def period(self) -> int:
        return self._engine.period

    @property
    def alive(self) -> np.ndarray:
        """Read-only row view of this trial's alive flags."""
        return self._engine.alive[self.trial]

    @property
    def states(self) -> np.ndarray:
        """Read-only row view of this trial's state array."""
        return self._engine.states[self.trial]

    def state_id(self, name: str) -> int:
        return self._engine.state_id(name)

    def counts(self) -> Dict[str, int]:
        row = self._engine.counts_matrix()[self.trial]
        return {s: int(row[i]) for i, s in enumerate(self._engine.state_names)}

    def alive_count(self) -> int:
        return int(self._engine.alive_counts()[self.trial])

    def members_in(self, state: str) -> np.ndarray:
        sid = self._engine.state_id(state)
        return np.flatnonzero(
            (self.states == sid) & self.alive
        )

    def crash(self, hosts: np.ndarray) -> None:
        self._engine._crash(self.trial, np.asarray(hosts, dtype=np.int64))

    def crash_fraction(self, fraction: float) -> np.ndarray:
        return self._engine._crash_fraction(self.trial, fraction)

    def recover(self, hosts: np.ndarray, state: Optional[str] = None) -> None:
        self._engine._recover(
            self.trial, np.asarray(hosts, dtype=np.int64), state
        )

    def set_states(self, hosts: np.ndarray, state: str) -> None:
        self._engine._set_states(
            self.trial, np.asarray(hosts, dtype=np.int64), state
        )


class BatchRoundEngine:
    """M independent synchronous-round trials in one ``(M, N)`` array.

    Parameters
    ----------
    spec:
        The protocol to execute (same for every trial).
    n:
        Group size per trial.
    trials:
        Number of independent trials M.
    initial:
        Initial distribution, counts or fractions (resolved identically
        to :class:`RoundEngine` via ``initial_state_vector``); every
        trial starts from the same counts with its own placement
        shuffle.
    seed:
        Root seed.  In lockstep mode the trial seeds are
        ``spawn_seeds(seed, trials)`` (also exposed as
        :attr:`trial_seeds`), so trial ``m`` reproduces
        ``RoundEngine(..., seed=trial_seeds[m])`` draw for draw.
    connection_failure_rate:
        Per-connection failure probability, as for :class:`RoundEngine`.
    mode:
        ``"batch"`` (vectorized, default) or ``"lockstep"`` (bitwise
        serial-equivalent); see the module docstring.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        n: int,
        trials: int,
        initial: Mapping[str, float],
        seed: Optional[int] = None,
        connection_failure_rate: float = 0.0,
        shuffle: bool = True,
        mode: str = "batch",
    ):
        if n < 2:
            raise ValueError(f"group size must be >= 2, got {n}")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if mode not in ("batch", "lockstep"):
            raise ValueError(f"mode must be 'batch' or 'lockstep', got {mode!r}")
        if not 0.0 <= connection_failure_rate < 1.0:
            raise ValueError(
                f"connection failure rate must lie in [0, 1), got "
                f"{connection_failure_rate}"
            )
        self.spec = spec
        self.n = n
        self.trials = trials
        self.seed = seed
        self.mode = mode
        self.connection_failure_rate = connection_failure_rate
        self.state_names = spec.states
        self._index = {name: i for i, name in enumerate(spec.states)}
        self._compiled = _compile(spec)
        self.period = 0
        self.last_transitions: Dict[Edge, np.ndarray] = {}
        self.recovery_state = spec.states[0]
        self.trial_seeds = spawn_seeds(seed, trials)

        if mode == "lockstep":
            self._engines = [
                RoundEngine(
                    spec, n=n, initial=initial, seed=trial_seed,
                    connection_failure_rate=connection_failure_rate,
                    shuffle=shuffle,
                )
                for trial_seed in self.trial_seeds
            ]
            return

        n_states = len(self.state_names)
        source = RandomSource(seed)
        self._rng = source.stream("batch-protocol")
        self._fault_rngs = [
            source.stream(f"batch-faults-{m}") for m in range(trials)
        ]
        base = initial_state_vector(self.state_names, n, initial)
        self._states_arr = np.tile(base, (trials, 1))
        if shuffle:
            source.stream("batch-shuffle").permuted(
                self._states_arr, axis=1, out=self._states_arr
            )
        self._alive_arr = np.ones((trials, n), dtype=bool)
        self._states_flat = self._states_arr.reshape(-1)
        self._alive_flat = self._alive_arr.reshape(-1)
        self._any_dead = False
        base_counts = np.bincount(base, minlength=n_states).astype(np.int64)
        self._counts = np.tile(base_counts, (trials, 1))
        self._alive_counts = np.full(trials, n, dtype=np.int64)
        self._total_messages = np.zeros(trials, dtype=np.int64)

        # Incremental membership: states whose member lists are worth
        # maintaining across periods (population small relative to the
        # batch) map to flat arrays of *global* ids ``trial * n + host``
        # holding exactly the alive members.  Everything else is
        # scanned lazily per period.  ``_referenced`` are the states
        # whose member lists actions can ask for.
        self._member_cap = max(4096, (trials * n) // 8)
        # Scratch for the dense-state rejection sampler (see
        # _sample_dense_actors): a "position already drawn" mask kept
        # all-False between calls, and a last-writer slot array used to
        # break intra-round collisions (never reset: it is always
        # written before it is read).  Allocated lazily on first use so
        # sparse-regime protocols never pay the 9 bytes per host.
        self._taken: Optional[np.ndarray] = None
        self._slot: Optional[np.ndarray] = None
        self._members: Dict[int, np.ndarray] = {}
        self._referenced = {a.actor for a in self._compiled}
        self._referenced.update(
            a.token_state for a in self._compiled if a.kind == "tokenize"
        )
        self._retune_membership()

    # ------------------------------------------------------------------
    # Introspection (both modes)
    # ------------------------------------------------------------------
    @property
    def states(self) -> np.ndarray:
        """The ``(M, N)`` state array.

        In batch mode this is the live backing array (mutate only via
        views); in lockstep mode it is a stacked *snapshot* of the
        embedded engines' state vectors.
        """
        if self.mode == "lockstep":
            return np.stack([e.states for e in self._engines])
        return self._states_arr

    @property
    def alive(self) -> np.ndarray:
        """The ``(M, N)`` alive flags (see :attr:`states` for semantics)."""
        if self.mode == "lockstep":
            return np.stack([e.alive for e in self._engines])
        return self._alive_arr

    @property
    def total_messages(self) -> np.ndarray:
        """Per-trial messages sent so far, shape ``(M,)`` (both modes)."""
        if self.mode == "lockstep":
            return np.array(
                [e.total_messages for e in self._engines], dtype=np.int64
            )
        return self._total_messages

    def state_id(self, name: str) -> int:
        return self._index[name]

    def counts_matrix(self) -> np.ndarray:
        """Alive counts per state, shape ``(M, S)``."""
        if self.mode == "lockstep":
            return np.stack([
                np.bincount(
                    e.states[e.alive], minlength=len(self.state_names)
                ).astype(np.int64)
                for e in self._engines
            ])
        return self._counts.copy()

    def counts(self, state: str) -> np.ndarray:
        """Alive counts of one state across trials, shape ``(M,)``."""
        return self.counts_matrix()[:, self._index[state]]

    def mean_counts(self) -> Dict[str, float]:
        """Ensemble-mean alive count per state."""
        matrix = self.counts_matrix()
        return {
            s: float(matrix[:, i].mean())
            for i, s in enumerate(self.state_names)
        }

    def alive_counts(self) -> np.ndarray:
        """Alive population per trial, shape ``(M,)``."""
        if self.mode == "lockstep":
            return np.array([e.alive_count() for e in self._engines])
        return self._alive_counts.copy()

    def elapsed_time(self) -> float:
        """ODE time corresponding to the periods run so far."""
        return self.spec.time_for_periods(self.period)

    def trial_views(self) -> List:
        """Per-trial hook targets (RoundEngine-compatible)."""
        if self.mode == "lockstep":
            return list(self._engines)
        return [BatchTrialView(self, m) for m in range(self.trials)]

    # ------------------------------------------------------------------
    # Fault injection (batch mode; lockstep delegates to its engines)
    # ------------------------------------------------------------------
    def _crash(self, trial: int, hosts: np.ndarray) -> None:
        hosts = np.unique(hosts)
        newly = hosts[self.alive[trial, hosts]]
        if newly.size == 0:
            return
        self.alive[trial, newly] = False
        self._any_dead = True
        old_states = self.states[trial, newly]
        self._counts[trial] -= np.bincount(
            old_states, minlength=len(self.state_names)
        )
        self._alive_counts[trial] -= newly.size
        if self._members:
            gids = newly.astype(np.int64) + trial * self.n
            for sid, arr in self._members.items():
                gone = gids[old_states == sid]
                if gone.size:
                    self._members[sid] = arr[
                        ~np.isin(arr, gone, assume_unique=True)
                    ]

    def _crash_fraction(self, trial: int, fraction: float) -> np.ndarray:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
        alive_ids = np.flatnonzero(self.alive[trial])
        count = int(round(fraction * alive_ids.size))
        victims = self._fault_rngs[trial].choice(
            alive_ids, size=count, replace=False
        )
        self._crash(trial, victims)
        return victims

    def _recover(
        self, trial: int, hosts: np.ndarray, state: Optional[str] = None
    ) -> None:
        sid = self._index[state or self.recovery_state]
        hosts = np.unique(hosts)
        was_alive = self.alive[trial, hosts]
        revived = hosts[~was_alive]
        already = hosts[was_alive]
        if already.size:
            # RoundEngine.recover also resets already-alive hosts.
            self._set_states_by_id(trial, already, sid)
        if revived.size == 0:
            return
        self.alive[trial, revived] = True
        self.states[trial, revived] = sid
        self._counts[trial, sid] += revived.size
        self._alive_counts[trial] += revived.size
        if sid in self._members:
            gids = revived.astype(np.int64) + trial * self.n
            self._members[sid] = np.concatenate([self._members[sid], gids])
        if self._alive_counts.sum() == self.alive.size:
            self._any_dead = False

    def _set_states(self, trial: int, hosts: np.ndarray, state: str) -> None:
        self._set_states_by_id(trial, hosts, self._index[state])

    def _set_states_by_id(
        self, trial: int, hosts: np.ndarray, sid: int
    ) -> None:
        if hosts.size == 0:
            return
        # Duplicate ids would double-count in the bincount updates
        # below; RoundEngine.set_states tolerates them, so must we.
        hosts = np.unique(hosts)
        live = hosts[self.alive[trial, hosts]]
        if live.size:
            old_states = self.states[trial, live]
            keep = live[old_states != sid]
            old_states = old_states[old_states != sid]
            if keep.size:
                self._counts[trial] -= np.bincount(
                    old_states, minlength=len(self.state_names)
                )
                self._counts[trial, sid] += keep.size
                gids = keep.astype(np.int64) + trial * self.n
                for tracked, arr in list(self._members.items()):
                    gone = gids[old_states == tracked]
                    if gone.size:
                        self._members[tracked] = arr[
                            ~np.isin(arr, gone, assume_unique=True)
                        ]
                if sid in self._members:
                    self._members[sid] = np.concatenate(
                        [self._members[sid], gids]
                    )
        # Dead hosts carry the new state but stay out of counts and
        # membership, exactly like RoundEngine.set_states.
        self.states[trial, hosts] = sid

    # ------------------------------------------------------------------
    # Membership bookkeeping (batch mode)
    # ------------------------------------------------------------------
    def _retune_membership(self) -> None:
        """Start/stop incremental tracking as populations cross the cap."""
        totals = self._counts.sum(axis=0)
        for sid in list(self._members):
            if totals[sid] > self._member_cap:
                del self._members[sid]
        for sid in self._referenced:
            if sid not in self._members and totals[sid] <= self._member_cap // 2:
                mask = self._states_flat == sid
                if self._any_dead:
                    mask &= self._alive_flat
                self._members[sid] = np.flatnonzero(mask)

    def _validate_consistency(self) -> None:
        """Debug invariant check: counts and members match the arrays."""
        if self.mode == "lockstep":
            return
        n_states = len(self.state_names)
        for m in range(self.trials):
            expected = np.bincount(
                self.states[m][self.alive[m]], minlength=n_states
            )
            if not np.array_equal(expected, self._counts[m]):
                raise AssertionError(
                    f"trial {m}: counts {self._counts[m]} != {expected}"
                )
        assert np.array_equal(
            self._alive_counts, self.alive.sum(axis=1)
        ), "alive counts out of sync"
        for sid, arr in self._members.items():
            mask = self._states_flat == sid
            mask &= self._alive_flat
            expected_ids = np.flatnonzero(mask)
            if not np.array_equal(np.sort(arr), expected_ids):
                raise AssertionError(f"member list of state {sid} out of sync")

    # ------------------------------------------------------------------
    # The batched synchronous round
    # ------------------------------------------------------------------
    def step(self) -> Dict[Edge, np.ndarray]:
        """One period for every trial; returns per-edge ``(M,)`` counts."""
        if self.mode == "lockstep":
            return self._step_lockstep()
        m_trials, n = self.trials, self.n
        snapshot = self._states_flat.copy()
        alive_flat = self._alive_flat
        moved = np.zeros(m_trials * n, dtype=bool)
        counts0 = self._counts.copy()
        transitions: Dict[Edge, np.ndarray] = {}
        member_adds: Dict[int, List[np.ndarray]] = {}
        member_removes: Dict[int, List[np.ndarray]] = {}
        segment_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        scan_cache: Dict[Tuple[int, int], np.ndarray] = {}

        def segments(sid: int) -> Tuple[np.ndarray, np.ndarray]:
            """Period-start alive members of one state, grouped by trial.

            Returns ``(grouped, bounds)``: global ids sorted by trial
            (within-trial order preserved) and the ``(M + 1,)`` offsets
            of each trial's slice -- the layout ``segmented_choice``
            consumes.  One grouping pass per state per period serves
            every action and token route this period.  Costs O(M * N)
            for untracked (dense) states; the sparse code paths below
            avoid calling it when expected activity is low.
            """
            got = segment_cache.get(sid)
            if got is None:
                tracked = self._members.get(sid)
                if tracked is not None:
                    keys = tracked // n
                    order = np.argsort(keys, kind="stable")
                    got = (
                        tracked[order],
                        np.searchsorted(
                            keys[order], np.arange(m_trials + 1)
                        ),
                    )
                else:
                    mask = snapshot == sid
                    if self._any_dead:
                        mask &= alive_flat
                    grouped = np.flatnonzero(mask)
                    got = (
                        grouped,
                        np.searchsorted(
                            grouped, np.arange(m_trials + 1) * n
                        ),
                    )
                segment_cache[sid] = got
            return got

        def trial_members(trial: int, sid: int) -> np.ndarray:
            """Period-start alive members of one trial, as global ids.

            The sparse-regime lookup: tracked states slice the shared
            grouping, untracked states scan only this trial's row, so a
            period with one or two active trials never touches the full
            ``(M, N)`` array.
            """
            if sid in self._members:
                grouped, bounds = segments(sid)
                return grouped[bounds[trial]:bounds[trial + 1]]
            key = (trial, sid)
            got = scan_cache.get(key)
            if got is None:
                lo = trial * n
                mask = snapshot[lo:lo + n] == sid
                if self._any_dead:
                    mask &= self.alive[trial]
                got = np.flatnonzero(mask) + lo
                scan_cache[key] = got
            return got

        # A sub-1.0-probability action fires a Binomial(count, p) number
        # of actors per trial, chosen uniformly without replacement.
        # When the expected number of heads across the batch is large
        # (the dense LV regime) that choice runs through
        # ``segmented_choice`` -- one vectorized draw for all trials.
        # When it is small (sparse regimes like the endemic protocol's
        # alpha ~ 1e-6 coin) the per-trial fast path skips the O(M * N)
        # member grouping entirely and only the few active trials pay
        # for a scan.  The switch depends only on period-start counts
        # and the action's probability, so replays are deterministic.
        dense_threshold = max(4.0, m_trials / 4.0)

        # Phase 1 -- actor selection for every action.  All selections
        # observe the start-of-period snapshot (RoundEngine semantics),
        # so no action's actors depend on another's execution and the
        # selections can be planned up front.
        plans: List[Tuple] = []
        for action in self._compiled:
            probability = action.probability
            if probability <= 0.0:
                continue
            actor_counts = counts0[:, action.actor]
            total_actors = int(actor_counts.sum())
            if total_actors == 0:
                continue
            if probability >= 1.0:
                actors = segments(action.actor)[0]
            elif probability * total_actors >= dense_threshold:
                heads = self._rng.binomial(actor_counts, probability)
                if not heads.any():
                    continue
                if (total_actors * 8 >= m_trials * n
                        and np.all(heads * 4 <= actor_counts)):
                    # The state holds >= 1/8 of the batch: probing host
                    # ids directly beats materializing the member list.
                    actors = self._sample_dense_actors(
                        action.actor, heads, actor_counts,
                        snapshot, alive_flat,
                    )
                else:
                    grouped, group_bounds = segments(action.actor)
                    actors = segmented_choice(
                        self._rng, grouped, group_bounds, heads
                    )
            else:
                heads = self._rng.binomial(actor_counts, probability)
                active = np.flatnonzero(heads)
                if active.size == 0:
                    continue
                actors = np.concatenate([
                    self._rng.choice(
                        trial_members(int(trial), action.actor),
                        size=int(heads[trial]), replace=False,
                    )
                    for trial in active
                ])
            if actors.size:
                plans.append((action, actors))

        # Phase 2 -- one fused target draw for the whole period.  Every
        # action's peer sampling needs ``actors.size * width`` uniform
        # draws from [0, n-1); drawing them in one ``integers`` call
        # replaces one RNG invocation per action with one per period
        # (the ROADMAP's ``_sample_other_flat`` fusion).  Slices are
        # handed out in declaration order, so the draw layout is a
        # deterministic function of the plan.
        widths = [self._target_width(action) for action, _ in plans]
        needs = [actors.size * w for (_, actors), w in zip(plans, widths)]
        raw_targets = (
            self._rng.integers(0, n - 1, size=sum(needs))
            if any(needs) else None
        )

        # Phase 3 -- execution, in action declaration order (token
        # delivery and the at-most-one-move rule stay sequential).
        offset = 0
        for (action, actors), need in zip(plans, needs):
            raw = raw_targets[offset:offset + need] if need else None
            offset += need
            movers, edge_from = self._execute_batch(
                action, actors, snapshot, alive_flat, moved,
                segments, trial_members, raw,
            )
            if movers.size == 0:
                continue
            movers = movers[~moved[movers]]
            if movers.size == 0:
                continue
            moved[movers] = True
            self._states_flat[movers] = action.target
            per_trial = np.bincount(movers // n, minlength=m_trials)
            self._counts[:, edge_from] -= per_trial
            self._counts[:, action.target] += per_trial
            edge = (
                self.state_names[edge_from], self.state_names[action.target]
            )
            if edge in transitions:
                transitions[edge] += per_trial
            else:
                transitions[edge] = per_trial
            member_removes.setdefault(edge_from, []).append(movers)
            member_adds.setdefault(action.target, []).append(movers)

        # Membership deltas are applied only now: during the period all
        # member lookups must observe the start-of-period snapshot,
        # matching RoundEngine's semantics.
        for sid, chunks in member_removes.items():
            arr = self._members.get(sid)
            if arr is not None:
                gone = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                self._members[sid] = arr[
                    ~np.isin(arr, gone, assume_unique=True)
                ]
        for sid, chunks in member_adds.items():
            if sid in self._members:
                self._members[sid] = np.concatenate(
                    [self._members[sid]] + chunks
                )
        self._retune_membership()
        self.period += 1
        self.last_transitions = transitions
        return transitions

    @staticmethod
    def _target_width(action) -> int:
        """Peer draws per actor for one action (0 = no peer sampling)."""
        if action.kind in ("sample", "tokenize"):
            return len(action.required)
        if action.kind in ("anyof", "push"):
            return action.fanout
        return 0

    def _execute_batch(
        self,
        action,
        actors: np.ndarray,
        snapshot: np.ndarray,
        alive_flat: np.ndarray,
        moved: np.ndarray,
        segments: Callable[[int], Tuple[np.ndarray, np.ndarray]],
        trial_members: Callable[[int, int], np.ndarray],
        raw: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, int]:
        """Run one action's sampling for the whole batch at once."""
        failure = self.connection_failure_rate
        if action.kind == "flip":
            return actors, action.edge_from

        if action.kind in ("sample", "tokenize"):
            width = len(action.required)
            if width == 0:
                fired = actors
            else:
                targets = self._sample_other_flat(actors, width, raw)
                self._count_messages(actors, width)
                ok = alive_flat[targets] & (
                    snapshot[targets] == action.required[None, :]
                )
                if failure > 0.0:
                    ok &= self._rng.random(targets.shape) >= failure
                fired = actors[ok.all(axis=1)]
            if action.kind == "sample":
                return fired, action.edge_from
            return self._deliver_tokens_batch(
                action, fired, moved, segments, trial_members
            )

        if action.kind == "anyof":
            targets = self._sample_other_flat(actors, action.fanout, raw)
            self._count_messages(actors, action.fanout)
            ok = alive_flat[targets] & (snapshot[targets] == action.match)
            if failure > 0.0:
                ok &= self._rng.random(targets.shape) >= failure
            return actors[ok.any(axis=1)], action.edge_from

        if action.kind == "push":
            targets = self._sample_other_flat(actors, action.fanout, raw)
            self._count_messages(actors, action.fanout)
            ok = alive_flat[targets] & (snapshot[targets] == action.match)
            if failure > 0.0:
                ok &= self._rng.random(targets.shape) >= failure
            converted = np.unique(targets[ok])
            return converted, action.edge_from

        raise AssertionError(f"unknown compiled kind {action.kind}")

    def _deliver_tokens_batch(
        self,
        action,
        fired: np.ndarray,
        moved: np.ndarray,
        segments: Callable[[int], Tuple[np.ndarray, np.ndarray]],
        trial_members: Callable[[int, int], np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """Route fired tokens per trial (same semantics as RoundEngine).

        Token delivery needs *exact* per-trial draw counts (trial ``m``
        delivers ``min(tokens[m], pool[m])`` tokens), so the dense path
        runs through :func:`segmented_choice`.  When only a handful of
        trials fired a token, the per-trial loop is kept instead: it
        scans just those trials' rows, which is cheaper than grouping an
        untracked token state across the whole batch.
        """
        empty = np.empty(0, dtype=np.int64)
        if fired.size == 0:
            return empty, action.edge_from
        tokens = np.bincount(fired // self.n, minlength=self.trials)
        active = np.flatnonzero(tokens)
        if (action.token_state not in self._members
                and active.size <= max(1, self.trials // 4)):
            chunks: List[np.ndarray] = []
            for trial in active:
                pool = trial_members(int(trial), action.token_state)
                pool = pool[~moved[pool]]
                if pool.size == 0:
                    continue
                count = int(tokens[trial])
                if action.ttl is not None:
                    alive_total = int(self._alive_counts[trial])
                    fraction = pool.size / alive_total if alive_total else 0.0
                    reach = 1.0 - (1.0 - fraction) ** action.ttl
                    count = int(self._rng.binomial(count, reach))
                    if count == 0:
                        continue
                take = min(count, pool.size)
                chunks.append(
                    self._rng.choice(pool, size=take, replace=False)
                )
            if not chunks:
                return empty, action.edge_from
            return np.concatenate(chunks), action.edge_from

        grouped, _ = segments(action.token_state)
        pool = grouped[~moved[grouped]]
        if pool.size == 0:
            return empty, action.edge_from
        # Filtering preserves within-trial grouping, so the filtered
        # pool's segment bounds are one bincount + cumsum away.
        sizes = np.bincount(pool // self.n, minlength=self.trials)
        if action.ttl is not None:
            fractions = np.divide(
                sizes, self._alive_counts,
                out=np.zeros(self.trials), where=self._alive_counts > 0,
            )
            reach = 1.0 - (1.0 - fractions) ** action.ttl
            tokens = self._rng.binomial(tokens, reach)
        take = np.minimum(tokens, sizes)
        if not take.any():
            return empty, action.edge_from
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        return segmented_choice(self._rng, pool, bounds, take), action.edge_from

    def _sample_dense_actors(
        self,
        sid: int,
        heads: np.ndarray,
        actor_counts: np.ndarray,
        snapshot: np.ndarray,
        alive_flat: np.ndarray,
    ) -> np.ndarray:
        """Draw ``heads[m]`` distinct members of ``sid`` per trial.

        Dense-state rejection sampling: each trial probes uniform host
        ids in its own row and keeps those that are in the state (alive,
        not yet drawn), oversampling by the inverse acceptance estimate
        so nearly every deficit resolves in the first round; leftovers
        redraw.  Callers gate on density >= 1/8 and take <= 1/4 of the
        state, so acceptance is bounded below and the number of random
        draws stays proportional to ``heads.sum()`` -- not to M * N and
        not to the state's population, which is what makes a 3% coin on
        a 60%-dense state cheap.  Keeping the first ``heads[m]`` valid
        probes in draw order is sequential uniform sampling without
        replacement, i.e. the ``segmented_choice`` distribution on the
        same member lists.
        """
        n = self.n
        if self._taken is None:
            self._taken = np.zeros(self.trials * n, dtype=bool)
            self._slot = np.zeros(self.trials * n, dtype=np.int64)
        taken, slot = self._taken, self._slot
        # Acceptance is at least (members - take) / n per probe;
        # oversample by its inverse (x1.5, +8) so round one almost
        # always finishes the trial.
        inverse_acceptance = n / np.maximum(actor_counts - heads, 1)
        need = heads.astype(np.int64).copy()
        chunks: List[np.ndarray] = []
        while True:
            active = np.flatnonzero(need)
            if active.size == 0:
                break
            draws = (
                (need[active] * inverse_acceptance[active] * 1.5)
                .astype(np.int64) + 8
            )
            candidates = np.repeat(active * n, draws) + self._rng.integers(
                0, n, int(draws.sum()), dtype=np.int64
            )
            ok = snapshot[candidates] == sid
            if self._any_dead:
                ok &= alive_flat[candidates]
            ok &= ~taken[candidates]
            index = np.flatnonzero(ok)
            good = candidates[index]
            # Duplicate probes of one position within this round: the
            # last writer wins, the rest are dropped (they are surplus
            # -- the deficit recount below redraws if needed).
            slot[good] = index
            winners = good[slot[good] == index]
            # Winners are in draw order and therefore trial-grouped;
            # keep each trial's first need[m] of them.
            winner_trials = winners // n
            winner_counts = np.bincount(winner_trials, minlength=self.trials)
            starts = np.concatenate(
                [[0], np.cumsum(winner_counts)[:-1]]
            )
            rank = np.arange(winners.size) - starts[winner_trials]
            kept = winners[rank < need[winner_trials]]
            taken[kept] = True
            chunks.append(kept)
            need -= np.bincount(kept // n, minlength=self.trials)
        actors = np.sort(np.concatenate(chunks))
        taken[actors] = False
        return actors

    def _sample_other_flat(
        self, actors: np.ndarray, k: int, raw: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Uniform non-self targets for actors from any trial.

        Flat-global-id variant of :func:`repro.runtime.rng.sample_other`:
        one draw covers every trial's actors, and targets stay within
        each actor's own trial row.  ``raw`` is this action's slice of
        the period's fused ``integers(0, n - 1)`` draw (see
        :meth:`step` phase 2); without it the draw happens here.
        """
        hosts = actors % self.n
        if raw is None:
            targets = self._rng.integers(0, self.n - 1, size=(actors.size, k))
        else:
            targets = raw.reshape(actors.size, k)
        targets += targets >= hosts[:, None]
        return (actors - hosts)[:, None] + targets

    def _count_messages(self, actors: np.ndarray, k: int) -> None:
        self._total_messages += k * np.bincount(
            actors // self.n, minlength=self.trials
        )

    def _step_lockstep(self) -> Dict[Edge, np.ndarray]:
        transitions: Dict[Edge, np.ndarray] = {}
        for m, engine in enumerate(self._engines):
            for edge, count in engine.step().items():
                if edge not in transitions:
                    transitions[edge] = np.zeros(self.trials, dtype=np.int64)
                transitions[edge][m] = count
        self.period += 1
        self.last_transitions = transitions
        return transitions

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self,
        periods: int,
        recorder: Optional[BatchMetricsRecorder] = None,
        hook_factories: Iterable[HookFactory] = (),
        record_initial: bool = True,
        stop: Optional[Callable[["BatchRoundEngine"], bool]] = None,
    ) -> BatchRunResult:
        """Run ``periods`` rounds of every trial.

        ``hook_factories`` are called once per trial index and must
        return fresh hook instances (stock hooks are stateful); each
        trial's hooks fire against its own view before every period,
        exactly as in :meth:`RoundEngine.run`.

        ``stop`` is an optional early-exit predicate, called with the
        engine after each period is stepped and recorded; returning
        True ends the run.  This is how ensemble drivers interleave
        per-period measurements (e.g. :class:`LVEnsemble` convergence
        detection) without re-implementing the loop.
        """
        if recorder is None:
            recorder = BatchMetricsRecorder(self.state_names, self.trials)
        factories = list(hook_factories)
        views = self.trial_views() if factories else []
        trial_hooks = [
            [factory(m) for factory in factories]
            for m in range(self.trials if factories else 0)
        ]
        if record_initial and self.period == 0:
            self._record(recorder)
        for _ in range(periods):
            for m, view in enumerate(views):
                for hook in trial_hooks[m]:
                    hook(view)
            self.step()
            self._record(recorder)
            if stop is not None and stop(self):
                break
        return BatchRunResult(engine=self, recorder=recorder)

    def _record(self, recorder: BatchMetricsRecorder) -> None:
        members = None
        if (recorder.member_log_state is not None
                and self.period % recorder.stride == 0):
            sid = self.state_id(recorder.member_log_state)
            mask = (self.states == sid) & self.alive
            members = [np.flatnonzero(mask[m]) for m in range(self.trials)]
        recorder.record(
            self.period,
            self.counts_matrix(),
            self.alive_counts(),
            transitions=self.last_transitions,
            members=members,
        )

    # ------------------------------------------------------------------
    # Lockstep conveniences
    # ------------------------------------------------------------------
    def trial_engine(self, trial: int) -> RoundEngine:
        """The embedded RoundEngine of one lockstep trial."""
        if self.mode != "lockstep":
            raise RuntimeError("trial_engine is only available in lockstep mode")
        return self._engines[trial]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BatchRoundEngine({self.spec.name!r}, n={self.n}, "
            f"trials={self.trials}, mode={self.mode!r}, period={self.period})"
        )


def serial_ensemble(
    spec: ProtocolSpec,
    n: int,
    trials: int,
    initial: Mapping[str, float],
    periods: int,
    seed: Optional[int] = None,
    connection_failure_rate: float = 0.0,
    stride: int = 1,
) -> Tuple[List[MetricsRecorder], List[int]]:
    """Reference implementation: M serial RoundEngine runs.

    Runs the trial loop the way the benches did before the batch engine
    existed, with the same spawned trial seeds the batch engine uses.
    Kept as the baseline for ``benchmarks/bench_batch_throughput.py``
    and the equivalence tests; returns the per-trial recorders and the
    trial seeds.
    """
    seeds = spawn_seeds(seed, trials)
    recorders = []
    for trial_seed in seeds:
        engine = RoundEngine(
            spec, n=n, initial=initial, seed=trial_seed,
            connection_failure_rate=connection_failure_rate,
        )
        recorder = MetricsRecorder(spec.states, stride=stride)
        engine.run(periods, recorder=recorder)
        recorders.append(recorder)
    return recorders, seeds
