"""Batched multi-trial execution: M protocol instances in one array.

Every experimental claim in the paper (Figures 5-12) is an *ensemble*
statement -- means and spreads over many independent runs of N-process
groups -- and mean-field results of the Bournez et al. kind only hold
in expectation.  Running the trial axis one :class:`RoundEngine` at a
time therefore wastes both wall clock and statistical power.  This
module runs M independent trials in a single ``(M, N)`` int8 state
array.

This is the top tier of the three-engine hierarchy (agent sim -> round
engine -> batch engine; see :mod:`repro.runtime.round_engine`).  Use it
whenever the quantity of interest is an ensemble mean, quantile band,
or frequency (extinction, accuracy); drop to :class:`RoundEngine` to
study one run, and to :class:`~repro.runtime.agent_sim.AgentSimulation`
to check synchrony artifacts.

Two RNG modes trade speed against bitwise reproducibility:

* ``mode="batch"`` (default) -- all trials draw from one root stream
  and every per-action step (actor selection, target sampling,
  connection-failure masking, token routing) is vectorized across the
  whole batch.  Each period is *planned* first
  (:class:`~repro.runtime.planner.ActionPlanner`): one broadcast
  multinomial draw splits every (trial, state) occupancy across that
  state's actions plus the no-op remainder, one selection pass per
  state picks the winning actors (dense states share a single
  rejection-probe loop over host ids; sparse regimes like the endemic
  protocol's alpha ~ 1e-6 coin keep per-trial scans; exact per-trial
  draw counts go through :func:`segmented_choice`, a segmented
  without-replacement sampler), and the selection is partitioned
  across the state's actions.  Peer-target sampling is fused into one
  ``integers`` draw per period covering every action.  Per-state
  member lists are maintained *incrementally* for sparse-population
  states (the population-protocol simulation idiom).  Trials are
  statistically independent, with per-action marginals identical to M
  serial runs; actors fire at most one action of their state per
  period (the paper's multi-way coin), where the serial engine flips
  independent per-action coins -- the two agree to the ``O((p c)^2)``
  conflict order the normalizing constant bounds.
* ``mode="lockstep"`` -- M embedded :class:`RoundEngine` instances
  seeded with :func:`~repro.runtime.rng.spawn_seeds` trial seeds.
  Each trial is *bitwise identical* to a serial ``RoundEngine`` run
  with the same seed; the speedup is limited to shared recording
  overhead.  This is the validation bridge (see
  ``tests/test_batch_engine.py``) and the replay mode for debugging a
  single ensemble member.

Both modes record into a :class:`BatchMetricsRecorder`, which stores
``(M, periods, states)`` count tensors and provides the mean/quantile
reducers the figure benches aggregate with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..synthesis.protocol import ProtocolSpec
from .metrics import MetricsRecorder
from .planner import ActionPlanner, TrialMemberPools, _action_width
from .round_engine import RoundEngine, _compile, initial_state_vector
from .rng import RandomSource, spawn_seeds

#: A per-trial hook factory: called with the trial index, returns a hook
#: ``hook(view)`` where ``view`` offers the RoundEngine mutation surface
#: (``period``, ``crash``, ``crash_fraction``, ``recover``,
#: ``members_in``, ...).  Stock hooks from :mod:`repro.runtime.failures`
#: and :mod:`repro.runtime.churn` work unchanged:
#: ``lambda m: MassiveFailure(at_period=500, fraction=0.5)``.
HookFactory = Callable[[int], Callable[[object], None]]

Edge = Tuple[str, str]


def segmented_choice(
    rng: np.random.Generator,
    pool: np.ndarray,
    bounds: np.ndarray,
    take: np.ndarray,
) -> np.ndarray:
    """Without-replacement draws from every segment of a flat pool at once.

    ``pool`` is a flat array whose segment ``s`` occupies
    ``pool[bounds[s]:bounds[s + 1]]`` (``bounds`` has ``S + 1`` entries
    with ``bounds[0] == 0``); ``take[s]`` elements are chosen uniformly
    without replacement from segment ``s``.  Returns the chosen elements
    grouped by segment, in ascending pool order within each segment
    (set semantics: every ``take[s]``-subset is equally likely).

    This is the sampler that removes the batch engine's per-trial
    ``Generator.choice`` loops: actor selection for sub-1.0-probability
    actions on dense states (the LV hot path) and token routing both
    need ``take[m]`` distinct members from each trial's segment, and a
    Python loop over trials costs O(M) interpreter round trips per
    action per period.  Two vectorized strategies, chosen by the take
    fraction:

    * **rejection** (every ``take[s] <= sizes[s] / 4``): draw one
      candidate position per requested element across all segments at
      once, keep the non-colliding ones, redraw the rest.  Acceptance
      is >= 3/4 per round, so the loop terminates in O(log) rounds and
      the number of random draws is proportional to ``take.sum()`` --
      not the pool size -- which is what makes dense-state sampling
      cheap (a 3% coin on a state holding 60% of an (M, N) batch draws
      ~0.02 * M * N values instead of 0.6 * M * N keys).
    * **top-k keys** (some segment wants more than a quarter of its
      pool): one uniform key per candidate, padded to a
      ``(segments, max_size)`` matrix; the ``take[s]`` smallest keys
      per row (an axis-1 ``argpartition``) are the sample.
    """
    pool = np.asarray(pool)
    bounds = np.asarray(bounds, dtype=np.int64)
    take = np.asarray(take, dtype=np.int64)
    sizes = np.diff(bounds)
    if take.shape != sizes.shape:
        raise ValueError(
            f"take has shape {take.shape}, expected {sizes.shape}"
        )
    if np.any(take < 0) or np.any(take > sizes):
        bad = int(np.flatnonzero((take < 0) | (take > sizes))[0])
        raise ValueError(
            f"segment {bad}: cannot take {int(take[bad])} of "
            f"{int(sizes[bad])} elements without replacement"
        )
    total_take = int(take.sum())
    if total_take == 0:
        return np.empty(0, dtype=pool.dtype)
    if total_take == pool.size:
        return pool

    if np.all(take * 4 <= sizes):
        # Rejection: candidate positions are global pool coordinates,
        # so collisions (within a round or against earlier rounds) are
        # plain duplicate values.
        accepted = np.empty(0, dtype=np.int64)
        pending_base = np.repeat(bounds[:-1], take)
        pending_size = np.repeat(sizes, take)
        while pending_base.size:
            candidates = pending_base + rng.integers(
                0, pending_size, dtype=np.int64
            )
            merged = np.concatenate([accepted, candidates])
            order = np.argsort(merged, kind="stable")
            sorted_values = merged[order]
            duplicate_sorted = np.zeros(merged.size, dtype=bool)
            duplicate_sorted[1:] = sorted_values[1:] == sorted_values[:-1]
            duplicate = np.empty(merged.size, dtype=bool)
            duplicate[order] = duplicate_sorted
            # The stable sort keeps previously accepted values ahead of
            # equal new candidates, so only the new ones re-enter.
            redraw = duplicate[accepted.size:]
            accepted = np.concatenate([accepted, candidates[~redraw]])
            pending_base = pending_base[redraw]
            pending_size = pending_size[redraw]
        return pool[np.sort(accepted)]

    # Top-k random keys, padded so the extraction is one axis-1
    # partition; padding keys are +inf and can never be drawn because
    # take[s] <= sizes[s].
    n_segments = sizes.size
    max_size = int(sizes.max())
    k_max = int(take.max())
    keys = rng.random((n_segments, max_size))
    keys[np.arange(max_size)[None, :] >= sizes[:, None]] = np.inf
    if k_max < max_size:
        block = np.argpartition(keys, k_max - 1, axis=1)[:, :k_max]
        # Order the block so row s's first take[s] entries are exactly
        # its take[s] *smallest* keys -- a manifestly uniform subset
        # (argpartition's internal order is not).
        block_keys = np.take_along_axis(keys, block, axis=1)
        block = np.take_along_axis(
            block, np.argsort(block_keys, axis=1), axis=1
        )
    else:
        block = np.argsort(keys, axis=1)
    chosen = block[np.arange(block.shape[1])[None, :] < take[:, None]]
    starts = np.repeat(bounds[:-1], take)
    # Segments are disjoint ascending position ranges, so one global
    # sort yields the documented segment-grouped, ascending-pool-order
    # layout (matching the rejection branch).
    return pool[np.sort(starts + chosen)]


class BatchMetricsRecorder:
    """Per-period ensemble observations as ``(M, periods, states)`` tensors.

    The batched sibling of :class:`~repro.runtime.metrics.MetricsRecorder`:
    one :meth:`record` call stores a full ``(M, S)`` count matrix, and the
    accessors return count tensors plus mean/quantile reducers over the
    trial axis.
    """

    def __init__(
        self,
        states: Sequence[str],
        trials: int,
        track_transitions: bool = True,
        member_log_state: Optional[str] = None,
        stride: int = 1,
    ):
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.states = tuple(states)
        self.trials = trials
        self.track_transitions = track_transitions
        #: As for :class:`~repro.runtime.metrics.MetricsRecorder`: when
        #: set to a state name, each recorded period stores the host ids
        #: of that state's alive members, per trial (the Figure 8
        #: stasher log, batched).  Expensive for big groups.
        self.member_log_state = member_log_state
        self.stride = stride
        self.periods: List[int] = []
        self._counts: List[np.ndarray] = []      # each (M, S)
        self._alive: List[np.ndarray] = []       # each (M,)
        self._transitions: List[Dict[Edge, np.ndarray]] = []
        #: Per recorded period: (period, [per-trial member id arrays]).
        self.member_log: List[Tuple[int, List[np.ndarray]]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        period: int,
        counts: np.ndarray,
        alive: np.ndarray,
        transitions: Optional[Mapping[Edge, np.ndarray]] = None,
        members: Optional[List[np.ndarray]] = None,
    ) -> None:
        """Store one period's ``(M, S)`` counts (subject to the stride)."""
        if period % self.stride != 0:
            return
        counts = np.asarray(counts)
        if counts.shape != (self.trials, len(self.states)):
            raise ValueError(
                f"counts shape {counts.shape} != "
                f"({self.trials}, {len(self.states)})"
            )
        self.periods.append(period)
        self._counts.append(np.array(counts, dtype=np.int64, copy=True))
        self._alive.append(np.array(alive, dtype=np.int64, copy=True))
        if self.track_transitions:
            self._transitions.append(
                {e: np.array(v, dtype=np.int64, copy=True)
                 for e, v in (transitions or {}).items()}
            )
        if self.member_log_state is not None and members is not None:
            if len(members) != self.trials:
                raise ValueError(
                    f"got member lists for {len(members)} trials, "
                    f"expected {self.trials}"
                )
            self.member_log.append(
                (period, [np.array(m, copy=True) for m in members])
            )

    # ------------------------------------------------------------------
    # Merging (trial-sharded execution)
    # ------------------------------------------------------------------
    @classmethod
    def merge(
        cls, parts: Sequence["BatchMetricsRecorder"]
    ) -> "BatchMetricsRecorder":
        """Concatenate shard recorders along the trial axis, exactly.

        The merge behind :class:`repro.runtime.parallel.ShardedBatchExecutor`:
        per recorded period the shards' ``(M_k, S)`` count matrices (and
        alive vectors, transition matrices, member logs) concatenate in
        shard order -- integer concatenation, no arithmetic -- so the
        merged recorder is bitwise independent of how the shards were
        scheduled.  All parts must agree on states, stride, recording
        schedule and tracking configuration.
        """
        if not parts:
            raise ValueError("cannot merge zero recorders")
        first = parts[0]
        for other in parts[1:]:
            if other.states != first.states:
                raise ValueError("shard recorders disagree on states")
            if other.periods != first.periods:
                raise ValueError(
                    "shard recorders disagree on the recording schedule"
                )
            if (other.track_transitions != first.track_transitions
                    or other.member_log_state != first.member_log_state
                    or other.stride != first.stride):
                raise ValueError(
                    "shard recorders disagree on tracking configuration"
                )
        merged = cls(
            first.states,
            sum(p.trials for p in parts),
            track_transitions=first.track_transitions,
            member_log_state=first.member_log_state,
            stride=first.stride,
        )
        merged.periods = list(first.periods)
        merged._counts = [
            np.concatenate([p._counts[i] for p in parts], axis=0)
            for i in range(len(first.periods))
        ]
        merged._alive = [
            np.concatenate([p._alive[i] for p in parts])
            for i in range(len(first.periods))
        ]
        if first.track_transitions:
            zeros = [np.zeros(p.trials, dtype=np.int64) for p in parts]
            for i in range(len(first.periods)):
                edges: List[Edge] = []
                for p in parts:
                    for edge in p._transitions[i]:
                        if edge not in edges:
                            edges.append(edge)
                merged._transitions.append({
                    edge: np.concatenate([
                        p._transitions[i].get(edge, zeros[k])
                        for k, p in enumerate(parts)
                    ])
                    for edge in edges
                })
        if first.member_log_state is not None:
            for i, (period, _) in enumerate(first.member_log):
                merged.member_log.append((
                    period,
                    [m for p in parts for m in p.member_log[i][1]],
                ))
        return merged

    # ------------------------------------------------------------------
    # Tensors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.array(self.periods, dtype=np.int64)

    def count_tensor(self) -> np.ndarray:
        """All counts as one ``(M, periods, S)`` tensor."""
        if not self._counts:
            return np.empty((self.trials, 0, len(self.states)), dtype=np.int64)
        return np.stack(self._counts, axis=1)

    def counts(self, state: str) -> np.ndarray:
        """Count series of one state, shape ``(M, periods)``."""
        index = self.states.index(state)
        if not self._counts:
            return np.empty((self.trials, 0), dtype=np.int64)
        return np.stack([c[:, index] for c in self._counts], axis=1)

    def alive_tensor(self) -> np.ndarray:
        """Alive population per trial and period, shape ``(M, periods)``."""
        if not self._alive:
            return np.empty((self.trials, 0), dtype=np.int64)
        return np.stack(self._alive, axis=1)

    def fractions(self, state: str) -> np.ndarray:
        """Per-trial state fractions among alive, shape ``(M, periods)``."""
        alive = self.alive_tensor().astype(float)
        alive[alive == 0] = np.nan
        return self.counts(state) / alive

    def transition_tensor(self, edge: Edge) -> np.ndarray:
        """Per-trial transitions along one edge, shape ``(M, periods)``."""
        if not self.track_transitions:
            raise RuntimeError("transition tracking is disabled")
        zero = np.zeros(self.trials, dtype=np.int64)
        if not self._transitions:
            return np.empty((self.trials, 0), dtype=np.int64)
        return np.stack(
            [t.get(edge, zero) for t in self._transitions], axis=1
        )

    def trial_member_log(self, trial: int) -> List[Tuple[int, np.ndarray]]:
        """One trial's member log, in :class:`MetricsRecorder` layout.

        Feeds the Figure 8 fairness/untraceability statistics
        (:func:`repro.analysis.fairness.analyze_member_log` accepts a
        raw log list) for any single ensemble member.
        """
        if self.member_log_state is None:
            raise RuntimeError("member logging is disabled")
        if not 0 <= trial < self.trials:
            raise IndexError(f"trial {trial} out of range [0, {self.trials})")
        return [(period, members[trial]) for period, members in self.member_log]

    def edges_seen(self) -> List[Edge]:
        """Every edge that carried at least one transition in any trial."""
        seen: List[Edge] = []
        for period_transitions in self._transitions:
            for edge, counts in period_transitions.items():
                if counts.any() and edge not in seen:
                    seen.append(edge)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Reducers over the trial axis
    # ------------------------------------------------------------------
    def mean_counts(self, state: str) -> np.ndarray:
        """Ensemble-mean count series, shape ``(periods,)``."""
        return self.counts(state).mean(axis=0)

    def std_counts(self, state: str) -> np.ndarray:
        """Ensemble standard deviation series, shape ``(periods,)``."""
        return self.counts(state).std(axis=0)

    def quantile_counts(self, state: str, q) -> np.ndarray:
        """Ensemble quantiles per period (``q`` scalar or sequence)."""
        return np.quantile(self.counts(state), q, axis=0)

    def mean_fractions(self, state: str) -> np.ndarray:
        """Ensemble-mean fraction series, shape ``(periods,)``."""
        return np.nanmean(self.fractions(state), axis=0)

    def mean_alive(self) -> np.ndarray:
        """Ensemble-mean alive population per period."""
        return self.alive_tensor().mean(axis=0)

    def mean_transitions(self, edge: Edge) -> np.ndarray:
        """Ensemble-mean transition series along one edge."""
        return self.transition_tensor(edge).mean(axis=0)

    def last_counts(self) -> np.ndarray:
        """Counts at the most recent recorded period, shape ``(M, S)``."""
        if not self._counts:
            return np.zeros((self.trials, len(self.states)), dtype=np.int64)
        return self._counts[-1].copy()


@dataclass
class BatchRunResult:
    """Outcome of a :meth:`BatchRoundEngine.run` call."""

    engine: "BatchRoundEngine"
    recorder: BatchMetricsRecorder

    def final_counts(self) -> Dict[str, np.ndarray]:
        """Per-state final counts, each an ``(M,)`` array."""
        matrix = self.engine.counts_matrix()
        return {
            s: matrix[:, i].copy()
            for i, s in enumerate(self.engine.state_names)
        }

    def mean_final_counts(self) -> Dict[str, float]:
        """Ensemble means of the final per-state counts."""
        return {s: float(v.mean()) for s, v in self.final_counts().items()}


class BatchTrialView:
    """One trial of a batch-mode engine, quacking like a RoundEngine.

    Hooks written against :class:`RoundEngine` (failure injectors, churn
    replayers) receive one of these per trial.  All *mutations* must go
    through the methods below -- they keep the engine's incremental
    count and membership bookkeeping consistent; writing directly to the
    ``alive`` / ``states`` row views would corrupt it.
    """

    def __init__(self, engine: "BatchRoundEngine", trial: int):
        self._engine = engine
        self.trial = trial
        self.n = engine.n

    @property
    def period(self) -> int:
        return self._engine.period

    @property
    def alive(self) -> np.ndarray:
        """Read-only row view of this trial's alive flags."""
        return self._engine.alive[self.trial]

    @property
    def states(self) -> np.ndarray:
        """Read-only row view of this trial's state array."""
        return self._engine.states[self.trial]

    def state_id(self, name: str) -> int:
        return self._engine.state_id(name)

    def counts(self) -> Dict[str, int]:
        row = self._engine.counts_matrix()[self.trial]
        return {s: int(row[i]) for i, s in enumerate(self._engine.state_names)}

    def alive_count(self) -> int:
        return int(self._engine.alive_counts()[self.trial])

    def members_in(self, state: str) -> np.ndarray:
        sid = self._engine.state_id(state)
        return np.flatnonzero(
            (self.states == sid) & self.alive
        )

    def crash(self, hosts: np.ndarray) -> None:
        self._engine._crash(self.trial, np.asarray(hosts, dtype=np.int64))

    def crash_fraction(self, fraction: float) -> np.ndarray:
        return self._engine._crash_fraction(self.trial, fraction)

    def recover(self, hosts: np.ndarray, state: Optional[str] = None) -> None:
        self._engine._recover(
            self.trial, np.asarray(hosts, dtype=np.int64), state
        )

    def set_states(self, hosts: np.ndarray, state: str) -> None:
        self._engine._set_states(
            self.trial, np.asarray(hosts, dtype=np.int64), state
        )


class BatchRoundEngine:
    """M independent synchronous-round trials in one ``(M, N)`` array.

    Parameters
    ----------
    spec:
        The protocol to execute (same for every trial).
    n:
        Group size per trial.
    trials:
        Number of independent trials M.
    initial:
        Initial distribution, counts or fractions (resolved identically
        to :class:`RoundEngine` via ``initial_state_vector``); every
        trial starts from the same counts with its own placement
        shuffle.
    seed:
        Root seed.  In lockstep mode the trial seeds are
        ``spawn_seeds(seed, trials)`` (also exposed as
        :attr:`trial_seeds`), so trial ``m`` reproduces
        ``RoundEngine(..., seed=trial_seeds[m])`` draw for draw.
    connection_failure_rate:
        Per-connection failure probability, as for :class:`RoundEngine`.
    mode:
        ``"batch"`` (vectorized, default) or ``"lockstep"`` (bitwise
        serial-equivalent); see the module docstring.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        n: int,
        trials: int,
        initial: Mapping[str, float],
        seed: Optional[int] = None,
        connection_failure_rate: float = 0.0,
        shuffle: bool = True,
        mode: str = "batch",
    ):
        if n < 2:
            raise ValueError(f"group size must be >= 2, got {n}")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if mode not in ("batch", "lockstep"):
            raise ValueError(f"mode must be 'batch' or 'lockstep', got {mode!r}")
        if not 0.0 <= connection_failure_rate < 1.0:
            raise ValueError(
                f"connection failure rate must lie in [0, 1), got "
                f"{connection_failure_rate}"
            )
        self.spec = spec
        self.n = n
        self.trials = trials
        self.seed = seed
        self.mode = mode
        self.connection_failure_rate = connection_failure_rate
        self.state_names = spec.states
        self._index = {name: i for i, name in enumerate(spec.states)}
        self._compiled = _compile(spec)
        self.period = 0
        self.last_transitions: Dict[Edge, np.ndarray] = {}
        self.recovery_state = spec.states[0]
        self.trial_seeds = spawn_seeds(seed, trials)

        if mode == "lockstep":
            self._engines = [
                RoundEngine(
                    spec, n=n, initial=initial, seed=trial_seed,
                    connection_failure_rate=connection_failure_rate,
                    shuffle=shuffle,
                )
                for trial_seed in self.trial_seeds
            ]
            return

        n_states = len(self.state_names)
        source = RandomSource(seed)
        self._rng = source.stream("batch-protocol")
        self._fault_rngs = [
            source.stream(f"batch-faults-{m}") for m in range(trials)
        ]
        base = initial_state_vector(self.state_names, n, initial)
        self._states_arr = np.tile(base, (trials, 1))
        if shuffle:
            source.stream("batch-shuffle").permuted(
                self._states_arr, axis=1, out=self._states_arr
            )
        self._alive_arr = np.ones((trials, n), dtype=bool)
        self._states_flat = self._states_arr.reshape(-1)
        self._alive_flat = self._alive_arr.reshape(-1)
        self._any_dead = False
        base_counts = np.bincount(base, minlength=n_states).astype(np.int64)
        self._counts = np.tile(base_counts, (trials, 1))
        self._alive_counts = np.full(trials, n, dtype=np.int64)
        self._total_messages = np.zeros(trials, dtype=np.int64)

        # The per-period action planner (one multinomial split per
        # state, fused dense probing; see repro.runtime.planner) plus
        # the period-scoped scratch buffers it and step() reuse -- the
        # hot path makes no per-period O(M * N) allocations.
        self._planner = ActionPlanner(
            self._compiled, trials, n,
            connection_failure_rate=connection_failure_rate,
        )
        self._moved_buf: Optional[np.ndarray] = None
        self._counts0_buf = np.empty_like(self._counts)
        # Incremental membership: every state whose members actions can
        # ask for (actor states, token states) keeps per-trial member
        # pools with O(movers) swap-delete maintenance -- the planner
        # probes them directly and the segment lookups read them
        # without re-scanning the batch.
        self._referenced = {a.actor for a in self._compiled}
        self._referenced.update(
            a.token_state for a in self._compiled if a.kind == "tokenize"
        )
        self._pools = TrialMemberPools(
            sorted(self._referenced), trials, n, self._states_flat
        )

    # ------------------------------------------------------------------
    # Introspection (both modes)
    # ------------------------------------------------------------------
    @property
    def states(self) -> np.ndarray:
        """The ``(M, N)`` state array.

        In batch mode this is the live backing array (mutate only via
        views); in lockstep mode it is a stacked *snapshot* of the
        embedded engines' state vectors.
        """
        if self.mode == "lockstep":
            return np.stack([e.states for e in self._engines])
        return self._states_arr

    @property
    def alive(self) -> np.ndarray:
        """The ``(M, N)`` alive flags (see :attr:`states` for semantics)."""
        if self.mode == "lockstep":
            return np.stack([e.alive for e in self._engines])
        return self._alive_arr

    @property
    def total_messages(self) -> np.ndarray:
        """Per-trial messages sent so far, shape ``(M,)`` (both modes)."""
        if self.mode == "lockstep":
            return np.array(
                [e.total_messages for e in self._engines], dtype=np.int64
            )
        return self._total_messages

    def state_id(self, name: str) -> int:
        return self._index[name]

    def counts_matrix(self) -> np.ndarray:
        """Alive counts per state, shape ``(M, S)``."""
        if self.mode == "lockstep":
            return np.stack([
                np.bincount(
                    e.states[e.alive], minlength=len(self.state_names)
                ).astype(np.int64)
                for e in self._engines
            ])
        return self._counts.copy()

    def counts(self, state: str) -> np.ndarray:
        """Alive counts of one state across trials, shape ``(M,)``."""
        return self.counts_matrix()[:, self._index[state]]

    def mean_counts(self) -> Dict[str, float]:
        """Ensemble-mean alive count per state."""
        matrix = self.counts_matrix()
        return {
            s: float(matrix[:, i].mean())
            for i, s in enumerate(self.state_names)
        }

    def alive_counts(self) -> np.ndarray:
        """Alive population per trial, shape ``(M,)``."""
        if self.mode == "lockstep":
            return np.array([e.alive_count() for e in self._engines])
        return self._alive_counts.copy()

    def elapsed_time(self) -> float:
        """ODE time corresponding to the periods run so far."""
        return self.spec.time_for_periods(self.period)

    def trial_views(self) -> List:
        """Per-trial hook targets (RoundEngine-compatible)."""
        if self.mode == "lockstep":
            return list(self._engines)
        return [BatchTrialView(self, m) for m in range(self.trials)]

    # ------------------------------------------------------------------
    # Fault injection (batch mode; lockstep delegates to its engines)
    # ------------------------------------------------------------------
    def _crash(self, trial: int, hosts: np.ndarray) -> None:
        hosts = np.unique(hosts)
        newly = hosts[self.alive[trial, hosts]]
        if newly.size == 0:
            return
        self.alive[trial, newly] = False
        self._any_dead = True
        old_states = self.states[trial, newly]
        self._counts[trial] -= np.bincount(
            old_states, minlength=len(self.state_names)
        )
        self._alive_counts[trial] -= newly.size
        gids = newly.astype(np.int64) + trial * self.n
        for sid in self._pools.slots:
            self._pools.remove(sid, gids[old_states == sid])

    def _crash_fraction(self, trial: int, fraction: float) -> np.ndarray:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
        alive_ids = np.flatnonzero(self.alive[trial])
        count = int(round(fraction * alive_ids.size))
        victims = self._fault_rngs[trial].choice(
            alive_ids, size=count, replace=False
        )
        self._crash(trial, victims)
        return victims

    def _recover(
        self, trial: int, hosts: np.ndarray, state: Optional[str] = None
    ) -> None:
        sid = self._index[state or self.recovery_state]
        hosts = np.unique(hosts)
        was_alive = self.alive[trial, hosts]
        revived = hosts[~was_alive]
        already = hosts[was_alive]
        if already.size:
            # RoundEngine.recover also resets already-alive hosts.
            self._set_states_by_id(trial, already, sid)
        if revived.size == 0:
            return
        self.alive[trial, revived] = True
        self.states[trial, revived] = sid
        self._counts[trial, sid] += revived.size
        self._alive_counts[trial] += revived.size
        self._pools.add(sid, revived.astype(np.int64) + trial * self.n)
        if self._alive_counts.sum() == self.alive.size:
            self._any_dead = False

    def _set_states(self, trial: int, hosts: np.ndarray, state: str) -> None:
        self._set_states_by_id(trial, hosts, self._index[state])

    def _set_states_by_id(
        self, trial: int, hosts: np.ndarray, sid: int
    ) -> None:
        if hosts.size == 0:
            return
        # Duplicate ids would double-count in the bincount updates
        # below; RoundEngine.set_states tolerates them, so must we.
        hosts = np.unique(hosts)
        live = hosts[self.alive[trial, hosts]]
        if live.size:
            old_states = self.states[trial, live]
            keep = live[old_states != sid]
            old_states = old_states[old_states != sid]
            if keep.size:
                self._counts[trial] -= np.bincount(
                    old_states, minlength=len(self.state_names)
                )
                self._counts[trial, sid] += keep.size
                gids = keep.astype(np.int64) + trial * self.n
                for tracked in self._pools.slots:
                    if tracked != sid:
                        self._pools.remove(tracked, gids[old_states == tracked])
                self._pools.add(sid, gids)
        # Dead hosts carry the new state but stay out of counts and
        # membership, exactly like RoundEngine.set_states.
        self.states[trial, hosts] = sid

    def _validate_consistency(self) -> None:
        """Debug invariant check: counts and members match the arrays."""
        if self.mode == "lockstep":
            return
        n_states = len(self.state_names)
        for m in range(self.trials):
            expected = np.bincount(
                self.states[m][self.alive[m]], minlength=n_states
            )
            if not np.array_equal(expected, self._counts[m]):
                raise AssertionError(
                    f"trial {m}: counts {self._counts[m]} != {expected}"
                )
        assert np.array_equal(
            self._alive_counts, self.alive.sum(axis=1)
        ), "alive counts out of sync"
        for sid in sorted(self._pools.tracked - set(self._pools.slots)):
            # The lazy-allocation invariant: a tracked state without a
            # row has no alive members (gains always go through add()).
            mask = self._states_flat == sid
            mask &= self._alive_flat
            if mask.any():
                raise AssertionError(
                    f"state {sid} has members but no allocated pool row"
                )
        for sid in list(self._pools.slots):
            mask = self._states_flat == sid
            mask &= self._alive_flat
            expected_ids = np.flatnonzero(mask)
            grouped, bounds = self._pools.grouped(sid)
            if not np.array_equal(np.sort(grouped), expected_ids):
                raise AssertionError(f"member pool of state {sid} out of sync")
            pos = self._pools.pos[grouped]
            slot = self._pools.slots[sid]
            if not np.array_equal(
                self._pools.pool[slot].reshape(-1)[
                    (grouped // self.n) * self.n + pos
                ],
                grouped,
            ):
                raise AssertionError(f"pool index of state {sid} out of sync")

    # ------------------------------------------------------------------
    # The batched synchronous round
    # ------------------------------------------------------------------
    def step(self) -> Dict[Edge, np.ndarray]:
        """One period for every trial; returns per-edge ``(M,)`` counts."""
        if self.mode == "lockstep":
            return self._step_lockstep()
        m_trials, n = self.trials, self.n
        # All period reads (peer checks, member lookups) must observe
        # the start-of-period state; state writes are deferred to the
        # end of the period, so the live array IS that snapshot and no
        # O(M * N) copy is needed.
        snapshot = self._states_flat
        alive_flat = self._alive_flat
        if self._planner.disjoint_movers:
            # Every planned mover is a distinct actor (see
            # ActionPlanner.disjoint_movers), so the at-most-one-move
            # mask would never filter anything: skip it entirely.
            moved = None
        else:
            if self._moved_buf is None:
                self._moved_buf = np.zeros(m_trials * n, dtype=bool)
            # Kept all-False between periods: the touched entries are
            # reset from the mover batches at the end of the period.
            moved = self._moved_buf
        counts0 = self._counts0_buf
        np.copyto(counts0, self._counts)
        transitions: Dict[Edge, np.ndarray] = {}
        member_adds: Dict[int, List[np.ndarray]] = {}
        member_removes: Dict[int, List[np.ndarray]] = {}
        segment_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        scan_cache: Dict[Tuple[int, int], np.ndarray] = {}

        def segments(sid: int) -> Tuple[np.ndarray, np.ndarray]:
            """Period-start alive members of one state, grouped by trial.

            Returns ``(grouped, bounds)``: global ids grouped by trial
            (within-trial order arbitrary) and the ``(M + 1,)`` offsets
            of each trial's slice -- the layout ``segmented_choice``
            consumes.  Pooled states (every state actions reference)
            gather their member pools in O(members); the scan fallback
            exists only for non-referenced states.
            """
            got = segment_cache.get(sid)
            if got is None:
                if sid in self._pools.tracked:
                    got = self._pools.grouped(sid)
                else:
                    mask = snapshot == sid
                    if self._any_dead:
                        mask &= alive_flat
                    grouped = np.flatnonzero(mask)
                    got = (
                        grouped,
                        np.searchsorted(
                            grouped, np.arange(m_trials + 1) * n
                        ),
                    )
                segment_cache[sid] = got
            return got

        def trial_members(trial: int, sid: int) -> np.ndarray:
            """Period-start alive members of one trial, as global ids.

            The sparse-regime lookup: pooled states return their pool
            row view in O(1); non-referenced states scan only this
            trial's row, so a period with one or two active trials
            never touches the full ``(M, N)`` array.
            """
            if sid in self._pools.tracked:
                return self._pools.members(sid, trial)
            key = (trial, sid)
            got = scan_cache.get(key)
            if got is None:
                lo = trial * n
                mask = snapshot[lo:lo + n] == sid
                if self._any_dead:
                    mask &= self.alive[trial]
                got = np.flatnonzero(mask) + lo
                scan_cache[key] = got
            return got

        # Phase 1 -- actor selection for every action, via the fused
        # per-state multinomial planner (repro.runtime.planner): one
        # multinomial split per state across its actions, one selection
        # pass per state (dense states share a single rejection-probe
        # loop), partitioned across the winning actions.  All
        # selections observe the start-of-period snapshot (RoundEngine
        # semantics), so no action's actors depend on another's
        # execution; strategy switches depend only on period-start
        # counts and prior draws, so replays are deterministic.
        plans, period_messages = self._planner.plan(
            self._rng, counts0, self._pools, segments, trial_members,
        )
        self._total_messages += period_messages

        # Phase 2 -- one fused target draw for the whole period.  Every
        # action's peer sampling needs ``actors.size * width`` uniform
        # draws from [0, n-1); drawing them in one ``integers`` call
        # replaces one RNG invocation per action with one per period
        # (the ROADMAP's ``_sample_other_flat`` fusion).  Slices are
        # handed out in declaration order, so the draw layout is a
        # deterministic function of the plan.
        widths = [
            0 if entry.prefired else self._target_width(entry.action)
            for entry in plans
        ]
        needs = [
            entry.actors.size * width
            for entry, width in zip(plans, widths)
        ]
        raw_targets = (
            self._rng.integers(0, n - 1, size=sum(needs))
            if any(needs) else None
        )

        # Phase 3 -- execution, in action declaration order (token
        # delivery and the at-most-one-move rule stay sequential).
        deferred_writes: List[Tuple[np.ndarray, int]] = []
        offset = 0
        for entry, need in zip(plans, needs):
            action = entry.action
            raw = raw_targets[offset:offset + need] if need else None
            offset += need
            if entry.tokens is not None:
                movers, edge_from = self._deliver_tokens_counts(
                    action, entry.tokens, moved, segments, trial_members
                )
            elif entry.prefired:
                # The planner already applied the action's interaction
                # condition analytically: the actors ARE the movers.
                movers, edge_from = entry.actors, action.edge_from
            else:
                movers, edge_from = self._execute_batch(
                    action, entry.actors, snapshot, alive_flat, moved,
                    segments, trial_members, raw,
                )
            if movers.size == 0:
                continue
            if moved is not None:
                movers = movers[~moved[movers]]
                if movers.size == 0:
                    continue
                moved[movers] = True
            deferred_writes.append((movers, action.target))
            per_trial = np.bincount(movers // n, minlength=m_trials)
            self._counts[:, edge_from] -= per_trial
            self._counts[:, action.target] += per_trial
            edge = (
                self.state_names[edge_from], self.state_names[action.target]
            )
            if edge in transitions:
                transitions[edge] += per_trial
            else:
                transitions[edge] = per_trial
            member_removes.setdefault(edge_from, []).append(movers)
            member_adds.setdefault(action.target, []).append(movers)

        # State writes, the moved-mask reset and the membership deltas
        # are applied only now: during the period every lookup must
        # observe the start-of-period snapshot, matching RoundEngine's
        # semantics.
        for movers, target in deferred_writes:
            self._states_flat[movers] = target
            if moved is not None:
                moved[movers] = False
        self._pools.apply_deltas(member_removes, member_adds)
        self.period += 1
        self.last_transitions = transitions
        return transitions

    @staticmethod
    def _target_width(action) -> int:
        """Peer draws per actor for one action (0 = no peer sampling).

        The same rule the planner's message accounting uses -- one
        definition, so the fused target-draw sizing can never
        desynchronize from the per-period message tally.
        """
        return _action_width(action)

    def _execute_batch(
        self,
        action,
        actors: np.ndarray,
        snapshot: np.ndarray,
        alive_flat: np.ndarray,
        moved: Optional[np.ndarray],
        segments: Callable[[int], Tuple[np.ndarray, np.ndarray]],
        trial_members: Callable[[int, int], np.ndarray],
        raw: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, int]:
        """Run one action's sampling for the whole batch at once.

        Message accounting happens once per period from the planner's
        split counts (see :meth:`ActionPlanner.plan`), not here.
        """
        failure = self.connection_failure_rate
        if action.kind == "flip":
            return actors, action.edge_from

        if action.kind in ("sample", "tokenize"):
            width = len(action.required)
            if width == 0:
                fired = actors
            elif width == 1 and failure == 0.0:
                # Flat fast path: one peer, no loss -- skip the 2D
                # reshape and the axis reduction.
                targets = self._sample_other_flat(actors, 1, raw).reshape(-1)
                ok = snapshot[targets] == action.required[0]
                if self._any_dead:
                    ok &= alive_flat[targets]
                fired = actors[ok]
            else:
                targets = self._sample_other_flat(actors, width, raw)
                ok = snapshot[targets] == action.required[None, :]
                if self._any_dead:
                    ok &= alive_flat[targets]
                if failure > 0.0:
                    ok &= self._rng.random(targets.shape) >= failure
                fired = actors[ok.all(axis=1)]
            if action.kind == "sample":
                return fired, action.edge_from
            return self._deliver_tokens_batch(
                action, fired, moved, segments, trial_members
            )

        if action.kind == "anyof":
            targets = self._sample_other_flat(actors, action.fanout, raw)
            ok = snapshot[targets] == action.match
            if self._any_dead:
                ok &= alive_flat[targets]
            if failure > 0.0:
                ok &= self._rng.random(targets.shape) >= failure
            return actors[ok.any(axis=1)], action.edge_from

        if action.kind == "push":
            targets = self._sample_other_flat(actors, action.fanout, raw)
            ok = snapshot[targets] == action.match
            if self._any_dead:
                ok &= alive_flat[targets]
            if failure > 0.0:
                ok &= self._rng.random(targets.shape) >= failure
            converted = np.unique(targets[ok])
            return converted, action.edge_from

        raise AssertionError(f"unknown compiled kind {action.kind}")

    def _deliver_tokens_batch(
        self,
        action,
        fired: np.ndarray,
        moved: np.ndarray,
        segments: Callable[[int], Tuple[np.ndarray, np.ndarray]],
        trial_members: Callable[[int, int], np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """Route fired tokens per trial (same semantics as RoundEngine).

        Token delivery needs *exact* per-trial draw counts (trial ``m``
        delivers ``min(tokens[m], pool[m])`` tokens), so the dense path
        runs through :func:`segmented_choice`.  When only a handful of
        trials fired a token, the per-trial loop is kept instead: it
        reads just those trials' pool rows, which is cheaper than
        gathering the token state's full batch-wide grouping.
        """
        if fired.size == 0:
            return np.empty(0, dtype=np.int64), action.edge_from
        tokens = np.bincount(fired // self.n, minlength=self.trials)
        return self._deliver_tokens_counts(
            action, tokens, moved, segments, trial_members
        )

    def _deliver_tokens_counts(
        self,
        action,
        tokens: np.ndarray,
        moved: Optional[np.ndarray],
        segments: Callable[[int], Tuple[np.ndarray, np.ndarray]],
        trial_members: Callable[[int, int], np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """Route ``tokens[m]`` fired tokens per trial to the token state.

        The counts-based core of :meth:`_deliver_tokens_batch`: the
        planner's thinned tokenize path lands here directly, since
        token routing never needs the firing actors' identities.
        """
        empty = np.empty(0, dtype=np.int64)
        active = np.flatnonzero(tokens)
        if active.size <= max(1, self.trials // 4):
            chunks: List[np.ndarray] = []
            for trial in active:
                pool = trial_members(int(trial), action.token_state)
                pool = pool[~moved[pool]]
                if pool.size == 0:
                    continue
                count = int(tokens[trial])
                if action.ttl is not None:
                    alive_total = int(self._alive_counts[trial])
                    fraction = pool.size / alive_total if alive_total else 0.0
                    reach = 1.0 - (1.0 - fraction) ** action.ttl
                    count = int(self._rng.binomial(count, reach))
                    if count == 0:
                        continue
                take = min(count, pool.size)
                chunks.append(
                    self._rng.choice(pool, size=take, replace=False)
                )
            if not chunks:
                return empty, action.edge_from
            return np.concatenate(chunks), action.edge_from

        grouped, _ = segments(action.token_state)
        pool = grouped[~moved[grouped]]
        if pool.size == 0:
            return empty, action.edge_from
        # Filtering preserves within-trial grouping, so the filtered
        # pool's segment bounds are one bincount + cumsum away.
        sizes = np.bincount(pool // self.n, minlength=self.trials)
        if action.ttl is not None:
            fractions = np.divide(
                sizes, self._alive_counts,
                out=np.zeros(self.trials), where=self._alive_counts > 0,
            )
            reach = 1.0 - (1.0 - fractions) ** action.ttl
            tokens = self._rng.binomial(tokens, reach)
        take = np.minimum(tokens, sizes)
        if not take.any():
            return empty, action.edge_from
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        return segmented_choice(self._rng, pool, bounds, take), action.edge_from

    def _sample_other_flat(
        self, actors: np.ndarray, k: int, raw: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Uniform non-self targets for actors from any trial.

        Flat-global-id variant of :func:`repro.runtime.rng.sample_other`:
        one draw covers every trial's actors, and targets stay within
        each actor's own trial row.  ``raw`` is this action's slice of
        the period's fused ``integers(0, n - 1)`` draw (see
        :meth:`step` phase 2); without it the draw happens here.
        """
        hosts = actors % self.n
        if raw is None:
            targets = self._rng.integers(0, self.n - 1, size=(actors.size, k))
        else:
            targets = raw.reshape(actors.size, k)
        targets += targets >= hosts[:, None]
        return (actors - hosts)[:, None] + targets

    def _step_lockstep(self) -> Dict[Edge, np.ndarray]:
        transitions: Dict[Edge, np.ndarray] = {}
        for m, engine in enumerate(self._engines):
            for edge, count in engine.step().items():
                if edge not in transitions:
                    transitions[edge] = np.zeros(self.trials, dtype=np.int64)
                transitions[edge][m] = count
        self.period += 1
        self.last_transitions = transitions
        return transitions

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self,
        periods: int,
        recorder: Optional[BatchMetricsRecorder] = None,
        hook_factories: Iterable[HookFactory] = (),
        record_initial: bool = True,
        stop: Optional[Callable[["BatchRoundEngine"], bool]] = None,
    ) -> BatchRunResult:
        """Run ``periods`` rounds of every trial.

        ``hook_factories`` are called once per trial index and must
        return fresh hook instances (stock hooks are stateful); each
        trial's hooks fire against its own view before every period,
        exactly as in :meth:`RoundEngine.run`.

        ``stop`` is an optional early-exit predicate, called with the
        engine after each period is stepped and recorded; returning
        True ends the run.  This is how ensemble drivers interleave
        per-period measurements (e.g. :class:`LVEnsemble` convergence
        detection) without re-implementing the loop.
        """
        if recorder is None:
            recorder = BatchMetricsRecorder(self.state_names, self.trials)
        factories = list(hook_factories)
        views = self.trial_views() if factories else []
        trial_hooks = [
            [factory(m) for factory in factories]
            for m in range(self.trials if factories else 0)
        ]
        if record_initial and self.period == 0:
            self._record(recorder)
        for _ in range(periods):
            for m, view in enumerate(views):
                for hook in trial_hooks[m]:
                    hook(view)
            self.step()
            self._record(recorder)
            if stop is not None and stop(self):
                break
        return BatchRunResult(engine=self, recorder=recorder)

    def _record(self, recorder: BatchMetricsRecorder) -> None:
        members = None
        if (recorder.member_log_state is not None
                and self.period % recorder.stride == 0):
            sid = self.state_id(recorder.member_log_state)
            mask = (self.states == sid) & self.alive
            members = [np.flatnonzero(mask[m]) for m in range(self.trials)]
        recorder.record(
            self.period,
            self.counts_matrix(),
            self.alive_counts(),
            transitions=self.last_transitions,
            members=members,
        )

    # ------------------------------------------------------------------
    # Lockstep conveniences
    # ------------------------------------------------------------------
    def trial_engine(self, trial: int) -> RoundEngine:
        """The embedded RoundEngine of one lockstep trial."""
        if self.mode != "lockstep":
            raise RuntimeError("trial_engine is only available in lockstep mode")
        return self._engines[trial]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BatchRoundEngine({self.spec.name!r}, n={self.n}, "
            f"trials={self.trials}, mode={self.mode!r}, period={self.period})"
        )


def serial_ensemble(
    spec: ProtocolSpec,
    n: int,
    trials: int,
    initial: Mapping[str, float],
    periods: int,
    seed: Optional[int] = None,
    connection_failure_rate: float = 0.0,
    stride: int = 1,
) -> Tuple[List[MetricsRecorder], List[int]]:
    """Reference implementation: M serial RoundEngine runs.

    Runs the trial loop the way the benches did before the batch engine
    existed, with the same spawned trial seeds the batch engine uses.
    Kept as the baseline for ``benchmarks/bench_batch_throughput.py``
    and the equivalence tests; returns the per-trial recorders and the
    trial seeds.
    """
    seeds = spawn_seeds(seed, trials)
    recorders = []
    for trial_seed in seeds:
        engine = RoundEngine(
            spec, n=n, initial=initial, seed=trial_seed,
            connection_failure_rate=connection_failure_rate,
        )
        recorder = MetricsRecorder(spec.states, stride=stride)
        engine.run(periods, recorder=recorder)
        recorders.append(recorder)
    return recorders, seeds
