"""Per-process protocol agents for the asynchronous simulator.

Each :class:`Agent` runs one process of a synthesized protocol as a DES
coroutine: its protocol period starts at an arbitrary phase, ticks with
its own (possibly drifting) clock, and all sampling happens through
RPC-style contacts over the unreliable :class:`~repro.runtime.network.Network`.
State queries reflect the *target's state at message delivery time* --
the asynchronous reality that the paper's analysis abstracts into
synchronized rounds (and which the agent simulator exists to validate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..synthesis.actions import (
    Action,
    AnyOfSampleAction,
    FlipAction,
    PushAction,
    SampleAction,
    TokenizeAction,
)
from ..synthesis.protocol import ProtocolSpec
from .des import Environment
from .network import ContactFailed, Network

# Message vocabulary (payload tuples on the wire).
STATE_QUERY = "state?"
PUSH_CONVERT = "push"
TOKEN = "token"


class Agent:
    """One process executing a protocol spec asynchronously.

    Parameters
    ----------
    simulation:
        The owning :class:`~repro.runtime.agent_sim.AgentSimulation`
        (provides membership sampling, token oracle and counters).
    agent_id:
        This process's address.
    state:
        Initial protocol state name.
    period:
        Nominal protocol period duration.
    clock_factor:
        Multiplier on the period modeling this process's clock speed
        (1.0 = perfect clock); results hold for the group average.
    phase:
        Offset of the first period start (periods start at arbitrary
        times at different processes -- paper Section 3.1).
    """

    def __init__(
        self,
        simulation: "AgentSimulationProtocol",
        agent_id: int,
        state: str,
        period: float,
        clock_factor: float = 1.0,
        phase: float = 0.0,
    ):
        self.sim = simulation
        self.id = agent_id
        self.state = state
        self.period = period * clock_factor
        self.phase = phase
        self.alive = True
        self.transitions = 0

    # ------------------------------------------------------------------
    # Message handling (runs at delivery time)
    # ------------------------------------------------------------------
    def handle(self, payload: Tuple) -> Any:
        kind = payload[0]
        if kind == STATE_QUERY:
            return self.state
        if kind == PUSH_CONVERT:
            _, match_state, target_state = payload
            if self.alive and self.state == match_state:
                self._transition(target_state, edge_from=match_state)
            return None
        if kind == TOKEN:
            _, token_state, target_state, ttl = payload
            if self.alive and self.state == token_state:
                self._transition(target_state, edge_from=token_state)
                return True
            if ttl is not None and ttl > 1:
                # Forward along the random walk with decremented TTL.
                peer = int(self.sim.sample_peer(self.id))
                self.sim.network.fire_and_forget(
                    peer, (TOKEN, token_state, target_state, ttl - 1)
                )
            return False
        raise ValueError(f"unknown payload {payload!r}")

    def _transition(self, new_state: str, edge_from: Optional[str] = None) -> None:
        edge = (edge_from or self.state, new_state)
        self.state = new_state
        self.transitions += 1
        self.sim.note_transition(edge)

    # ------------------------------------------------------------------
    # The periodic protocol loop (a DES process)
    # ------------------------------------------------------------------
    def run(self):
        yield self.sim.env.timeout(self.phase)
        while True:
            yield self.sim.env.timeout(self.period)
            if not self.alive:
                return
            state_at_tick = self.state
            for action in self.sim.spec.actions_of(state_at_tick):
                if self.state != state_at_tick:
                    break  # already transitioned this period
                yield from self._execute(action)

    def _execute(self, action: Action):
        rng = self.sim.rng
        if isinstance(action, FlipAction):
            if rng.random() < action.probability:
                self._transition(action.target_state)
            return

        if isinstance(action, SampleAction):
            if rng.random() >= action.probability:
                return
            matched = yield from self._check_pattern(action.required_states)
            if matched:
                self._transition(action.target_state)
            return

        if isinstance(action, AnyOfSampleAction):
            if rng.random() >= action.probability:
                return
            for _ in range(action.fanout):
                reply = yield from self._query_random_peer()
                if reply == action.match_state:
                    self._transition(action.target_state)
                    return
            return

        if isinstance(action, PushAction):
            if rng.random() >= action.probability:
                return
            for _ in range(action.fanout):
                peer = int(self.sim.sample_peer(self.id))
                self.sim.network.fire_and_forget(
                    peer, (PUSH_CONVERT, action.match_state, action.target_state)
                )
            return

        if isinstance(action, TokenizeAction):
            if rng.random() >= action.probability:
                return
            matched = yield from self._check_pattern(action.required_states)
            if not matched:
                return
            if action.ttl is None:
                # Membership-oracle routing: deliver to a current member
                # of the token state, if any exists (else drop).
                recipient = self.sim.oracle_member(action.token_state)
                if recipient is not None:
                    self.sim.network.fire_and_forget(
                        recipient,
                        (TOKEN, action.token_state, action.target_state, None),
                    )
            else:
                peer = int(self.sim.sample_peer(self.id))
                self.sim.network.fire_and_forget(
                    peer,
                    (TOKEN, action.token_state, action.target_state, action.ttl),
                )
            return

        raise TypeError(f"agent cannot execute action kind {action.kind}")

    def _check_pattern(self, required_states: Tuple[str, ...]):
        """Contact one peer per required state; all must match."""
        for needed in required_states:
            reply = yield from self._query_random_peer()
            if reply != needed:
                return False
        return True

    def _query_random_peer(self):
        peer = int(self.sim.sample_peer(self.id))
        try:
            reply = yield self.sim.network.contact(peer, (STATE_QUERY,))
        except ContactFailed:
            return None
        return reply


class AgentSimulationProtocol:
    """Interface agents expect from their simulation (documentation aid)."""

    env: Environment
    network: Network
    spec: ProtocolSpec
    rng: np.random.Generator

    def sample_peer(self, caller: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def oracle_member(self, state: str) -> Optional[int]:  # pragma: no cover
        raise NotImplementedError

    def note_transition(self, edge: Tuple[str, str]) -> None:  # pragma: no cover
        raise NotImplementedError
