"""The cluster backend: process-isolated workers with re-dispatch.

:func:`~repro.runtime.exec.run_plan`'s default ``pool`` backend is a
local ``multiprocessing.Pool`` -- fast, but brittle exactly where the
paper's protocols are robust: one SIGKILLed worker poisons the pool,
one hung worker stalls the plan forever, and the worker count is fixed
at fork time.  This module is the ``backend="cluster"`` alternative: a
**coordinator** (in the calling process) and **workers** that are fully
independent OS processes speaking a length-prefixed pickle protocol
over TCP sockets.  Workers are spawned locally today and dial in over
the same protocol a remote (SSH- or k8s-launched) worker would use;
``python -m repro worker --connect HOST:PORT`` starts a standalone one
that can join a plan already in flight.

Robustness model
----------------

* **Heartbeats.**  Every worker sends a heartbeat on an interval
  (``FaultPolicy.heartbeat_seconds``); any message counts as liveness.
  A worker silent for ``heartbeat_seconds * heartbeat_misses`` is
  *fenced*: its socket is closed, its process (if locally spawned) is
  SIGKILLed -- a fenced worker can never land a stale result.
* **Re-dispatch.**  A fenced or dead worker's in-flight unit goes back
  to the front of the queue and is re-dispatched to a survivor.  The
  dispatch payload is the *same* pre-pickled blob
  (:func:`~repro.runtime.exec._encode_units` serializes once per
  plan), and unit seeds never depend on workers, so a re-dispatched
  run is bitwise identical to an undisturbed one -- plan contract
  clause 5.  A unit that out-lives ``FaultPolicy.max_dispatches``
  workers is treated as the unit's own fault and becomes a
  :class:`~repro.runtime.exec.UnitFailure` carrying provenance (the
  last worker id, re-dispatch count, heartbeat misses observed), which
  flows into the ordinary ``on_error`` machinery -- so campaign
  checkpoint/resume composes unchanged.
* **Elastic workers.**  The coordinator accepts joins for as long as
  the plan runs (pin the port with ``REPRO_CLUSTER_PORT`` to make it
  discoverable), dead local workers are respawned under a bounded
  budget, and losing every worker mid-plan is recoverable as long as
  some worker eventually serves each unit.
* **Graceful drain.**  SIGTERM stops dispatching, waits for in-flight
  units to land (checkpoint callbacks included), shuts workers down,
  and raises :class:`ClusterDrained` -- a campaign interrupted this
  way resumes from its manifest exactly like a pool-backend kill.

Faults for testing all of the above are scripted with
:mod:`repro.runtime.chaos` and injected into workers via their
environment, so chaos runs use the very same code paths as production
runs.
"""

from __future__ import annotations

import os
import pickle
import selectors
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.chaos import (
    FAULTS_ENV,
    SCHEDULE_ENV,
    ChaosSchedule,
    WorkerFault,
    faults_env_value,
    faults_from_env,
)
from repro.runtime.exec import (
    FaultPolicy,
    UnitFailure,
    _attempt_unit,
    _normalize_traceback,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterDrained",
    "WorkerSession",
    "worker_main",
]

#: Environment variables pinning the coordinator's listen address.
#: Default is an ephemeral port on loopback; pin the port to let
#: standalone ``python -m repro worker`` processes find the plan.
HOST_ENV = "REPRO_CLUSTER_HOST"
PORT_ENV = "REPRO_CLUSTER_PORT"

#: Set per spawned worker so its hello can report which launch slot it
#: fills (external joiners have none and report ``None``).
LAUNCH_ENV = "REPRO_CLUSTER_LAUNCH"

_HEADER = struct.Struct("!Q")

#: Refuse to decode a frame longer than this (a corrupt or hostile
#: length prefix must not trigger a multi-GiB allocation).
_MAX_FRAME = 1 << 31


class ClusterDrained(RuntimeError):
    """The coordinator drained on SIGTERM before finishing the plan.

    Raised only after every in-flight unit has landed (and fired its
    ``on_unit`` checkpoint callbacks), so a campaign that catches the
    coordinating process's SIGTERM can be resumed from its manifest.
    """

    def __init__(self, label: str, completed: int, total: int):
        self.completed = completed
        self.total = total
        super().__init__(
            f"{label}: cluster drained on SIGTERM with {completed}/{total} "
            f"units complete; re-run with resume to finish"
        )


def encode_message(message: Tuple) -> bytes:
    """Frame a message: 8-byte big-endian length prefix + pickle."""
    blob = pickle.dumps(message)
    return _HEADER.pack(len(blob)) + blob


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Tuple]:
    """Read one framed message from a blocking socket (None on EOF)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise ValueError(f"frame length {length} exceeds limit")
    blob = _recv_exact(sock, length)
    if blob is None:
        return None
    return pickle.loads(blob)


class MessageBuffer:
    """Reassembles framed messages from a non-blocking byte stream."""

    def __init__(self):
        self._data = bytearray()

    def feed(self, chunk: bytes) -> None:
        self._data.extend(chunk)

    def pop(self) -> Optional[Tuple]:
        if len(self._data) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack(self._data[: _HEADER.size])
        if length > _MAX_FRAME:
            raise ValueError(f"frame length {length} exceeds limit")
        end = _HEADER.size + length
        if len(self._data) < end:
            return None
        blob = bytes(self._data[_HEADER.size:end])
        del self._data[:end]
        return pickle.loads(blob)


@dataclass
class _Connection:
    """Coordinator-side state for one connected worker."""

    sock: socket.socket
    last_seen: float
    worker_id: str = ""
    launch_index: Optional[int] = None
    unit: Optional[int] = None
    ready: bool = False
    buffer: MessageBuffer = field(default_factory=MessageBuffer)
    outbox: bytearray = field(default_factory=bytearray)


@dataclass
class _UnitState:
    """Dispatch bookkeeping for one unit (provenance on failure)."""

    dispatches: int = 0
    misses: int = 0
    last_worker: str = ""
    done: bool = False


class ClusterCoordinator:
    """Runs one encoded plan over socket-connected worker processes.

    Instantiated by :func:`~repro.runtime.exec.run_plan` with the plan
    already serialized (``blobs`` from ``_encode_units``); ``run``
    drives the event loop in the calling thread and lands every unit
    through the same ``land(index, output, failure)`` callback the
    pool backend uses, so fault-policy semantics are identical.
    """

    def __init__(
        self,
        label: str,
        blobs: Sequence[bytes],
        labels: Sequence[str],
        policy: FaultPolicy,
        workers: int,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        chaos: Optional[ChaosSchedule] = None,
    ):
        self.label = label
        self._blobs = list(blobs)
        self._labels = list(labels)
        self._policy = policy
        self._workers = max(1, min(workers, len(self._blobs)))
        self._initializer = initializer
        self._initargs = initargs
        self._chaos = chaos if chaos is not None else ChaosSchedule.from_env()
        self._host = os.environ.get(HOST_ENV, "127.0.0.1")
        self._port = int(os.environ.get(PORT_ENV, "0"))
        self._pending: deque = deque(range(len(self._blobs)))
        self._states = [_UnitState() for _ in self._blobs]
        self._connections: Dict[int, _Connection] = {}
        self._procs: Dict[int, subprocess.Popen] = {}
        self._fenced: Dict[int, subprocess.Popen] = {}
        self._spawned = 0
        self._next_worker_id = 0
        self._done_count = 0
        self._draining = False
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        #: Observable run statistics (tests and drain messages read these).
        self.stats = {
            "spawned": 0,
            "external_joins": 0,
            "workers_lost": 0,
            "redispatches": 0,
            "dispatches": 0,
        }
        # A worker that dies instantly on every unit must not spawn
        # replacements forever: the budget covers every allowed
        # re-dispatch plus headroom for slow starters.
        self._spawn_budget = self._workers * max(2, policy.max_dispatches) + 2

    # -- lifecycle -----------------------------------------------------

    def run(self, land: Callable[[int, Any, Optional[UnitFailure]], None]):
        """Execute the plan, landing every unit through ``land``."""
        total = len(self._blobs)
        previous_sigterm = None
        in_main_thread = (
            threading.current_thread() is threading.main_thread()
        )
        if in_main_thread and hasattr(signal, "SIGTERM"):
            def drain(signum, frame):
                self._draining = True

            previous_sigterm = signal.signal(signal.SIGTERM, drain)
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        try:
            self._listener.bind((self._host, self._port))
            self._listener.listen(64)
            self._listener.setblocking(False)
            self._port = self._listener.getsockname()[1]
            self._selector.register(
                self._listener, selectors.EVENT_READ, None
            )
            self._event_loop(land, total)
        finally:
            self._cleanup()
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
        if self._draining and self._done_count < total:
            raise ClusterDrained(self.label, self._done_count, total)

    def _event_loop(self, land, total: int) -> None:
        tick = min(0.5, max(0.01, self._policy.heartbeat_seconds / 4.0))
        while self._done_count < total:
            if self._draining and not self._in_flight():
                return
            self._maintain_workers()
            events = self._selector.select(timeout=tick)
            for key, mask in events:
                if key.fileobj is self._listener:
                    self._accept()
                    continue
                conn: _Connection = key.data
                if mask & selectors.EVENT_WRITE:
                    self._flush(conn)
                if mask & selectors.EVENT_READ:
                    self._read(conn, land)
            self._scan_heartbeats(land)
            self._stall_guard()

    def _in_flight(self) -> List[int]:
        return [
            conn.unit
            for conn in self._connections.values()
            if conn.unit is not None
        ]

    def _stall_guard(self) -> None:
        if self._draining or self._done_count >= len(self._blobs):
            return
        if self._connections or self._live_spawns():
            return
        if self._spawned < self._spawn_budget:
            return
        raise RuntimeError(
            f"{self.label}: cluster stalled -- no workers connected, "
            f"spawn budget ({self._spawn_budget}) exhausted, "
            f"{len(self._pending)} unit(s) still pending; pin "
            f"{PORT_ENV} and attach standalone workers, or raise "
            f"FaultPolicy.max_dispatches"
        )

    def _cleanup(self) -> None:
        for conn in list(self._connections.values()):
            try:
                conn.sock.setblocking(True)
                conn.sock.settimeout(0.5)
                conn.sock.sendall(encode_message(("shutdown",)))
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self._connections.clear()
        for proc in list(self._procs.values()) + list(self._fenced.values()):
            if proc.poll() is None:
                proc.kill()
        for proc in list(self._procs.values()) + list(self._fenced.values()):
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass
        self._procs.clear()
        self._fenced.clear()
        if self._listener is not None:
            self._listener.close()
        if self._selector is not None:
            self._selector.close()

    # -- worker processes ----------------------------------------------

    def _live_spawns(self) -> List[int]:
        """Launch indices of spawned procs alive but not yet connected."""
        connected = [
            conn.launch_index
            for conn in self._connections.values()
            if conn.launch_index is not None
        ]
        alive = []
        for launch_index, proc in list(self._procs.items()):
            if proc.poll() is not None:
                del self._procs[launch_index]
                continue
            if launch_index not in connected:
                alive.append(launch_index)
        return alive

    def _maintain_workers(self) -> None:
        if self._draining:
            return
        remaining = len(self._pending) + len(self._in_flight())
        if remaining == 0:
            return
        capacity = len(self._connections) + len(self._live_spawns())
        want = min(self._workers, remaining)
        while capacity < want and self._spawned < self._spawn_budget:
            self._spawn_worker()
            capacity += 1

    def _spawn_worker(self) -> None:
        launch_index = self._spawned
        self._spawned += 1
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        python_path = env.get("PYTHONPATH", "")
        if src_root not in python_path.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + python_path if python_path else "")
            )
        env[LAUNCH_ENV] = str(launch_index)
        env.pop(SCHEDULE_ENV, None)
        faults: Tuple[WorkerFault, ...] = ()
        if self._chaos is not None:
            faults = self._chaos.for_worker(launch_index)
        if faults:
            env[FAULTS_ENV] = faults_env_value(faults)
        else:
            env.pop(FAULTS_ENV, None)
        self._procs[launch_index] = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.cluster",
                "--connect",
                f"{self._host}:{self._port}",
            ],
            env=env,
            stdin=subprocess.DEVNULL,
        )
        self.stats["spawned"] += 1

    # -- connection handling -------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            conn = _Connection(sock=sock, last_seen=time.monotonic())
            self._connections[sock.fileno()] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _events_for(self, conn: _Connection) -> int:
        events = selectors.EVENT_READ
        if conn.outbox:
            events |= selectors.EVENT_WRITE
        return events

    def _queue_send(self, conn: _Connection, message: Tuple) -> None:
        conn.outbox.extend(encode_message(message))
        self._selector.modify(conn.sock, self._events_for(conn), conn)
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        while conn.outbox:
            try:
                sent = conn.sock.send(bytes(conn.outbox[: 1 << 20]))
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                # The read path (EOF) or heartbeat scan will fence it.
                break
            if sent == 0:
                break
            del conn.outbox[:sent]
        try:
            self._selector.modify(conn.sock, self._events_for(conn), conn)
        except KeyError:
            pass

    def _read(self, conn: _Connection, land) -> None:
        while True:
            try:
                chunk = conn.sock.recv(1 << 20)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._lose_worker(conn, land, reason="connection error")
                return
            if not chunk:
                self._lose_worker(conn, land, reason="connection closed")
                return
            conn.buffer.feed(chunk)
        conn.last_seen = time.monotonic()
        while True:
            try:
                message = conn.buffer.pop()
            except Exception:
                self._lose_worker(conn, land, reason="protocol error")
                return
            if message is None:
                return
            self._handle_message(conn, message, land)

    def _handle_message(self, conn: _Connection, message: Tuple, land):
        kind = message[0]
        if kind == "hello":
            info = message[1] if len(message) > 1 else {}
            conn.worker_id = f"w{self._next_worker_id}"
            self._next_worker_id += 1
            launch = info.get("launch") if isinstance(info, dict) else None
            conn.launch_index = launch
            if launch is None:
                self.stats["external_joins"] += 1
            self._queue_send(conn, (
                "setup",
                conn.worker_id,
                self._policy.heartbeat_seconds,
                self._initializer,
                self._initargs,
            ))
            conn.ready = True
            self._dispatch(conn)
        elif kind == "heartbeat":
            pass  # liveness already recorded in _read
        elif kind == "result":
            _, index, output, failure = message
            if conn.unit == index:
                conn.unit = None
            state = self._states[index]
            if not state.done:
                state.done = True
                self._done_count += 1
                if failure is not None:
                    failure = self._stamp_provenance(failure, conn, state)
                land(index, output, failure)
            self._dispatch(conn)
        elif kind == "fatal":
            self._lose_worker(
                conn, land, reason=f"worker fatal: {message[1]}"
            )

    def _stamp_provenance(
        self, failure: UnitFailure, conn: _Connection, state: _UnitState
    ) -> UnitFailure:
        return UnitFailure(
            index=failure.index,
            label=failure.label,
            error=failure.error,
            traceback=failure.traceback,
            attempts=failure.attempts,
            worker=conn.worker_id,
            redispatches=max(0, state.dispatches - 1),
            heartbeat_misses=state.misses,
        )

    def _dispatch(self, conn: _Connection) -> None:
        if (
            self._draining
            or not conn.ready
            or conn.unit is not None
            or not self._pending
        ):
            return
        index = self._pending.popleft()
        state = self._states[index]
        state.dispatches += 1
        state.last_worker = conn.worker_id
        if state.dispatches > 1:
            self.stats["redispatches"] += 1
        conn.unit = index
        self._queue_send(conn, (
            "unit",
            index,
            self._blobs[index],
            self._labels[index],
            self._policy,
        ))
        self.stats["dispatches"] += 1

    # -- failure detection ---------------------------------------------

    def _scan_heartbeats(self, land) -> None:
        deadline = self._policy.heartbeat_deadline
        now = time.monotonic()
        for conn in list(self._connections.values()):
            silence = now - conn.last_seen
            if silence > deadline:
                misses = int(silence / self._policy.heartbeat_seconds)
                self._lose_worker(
                    conn,
                    land,
                    reason=(
                        f"missed {misses} heartbeats "
                        f"({silence:.2f}s silent)"
                    ),
                    misses=misses,
                )

    def _lose_worker(
        self, conn: _Connection, land, reason: str, misses: int = 0
    ) -> None:
        """Fence a dead/hung worker and requeue its in-flight unit."""
        fileno = conn.sock.fileno()
        if fileno in self._connections:
            del self._connections[fileno]
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn.launch_index is not None:
            proc = self._procs.pop(conn.launch_index, None)
            if proc is not None:
                if proc.poll() is None:
                    # SIGKILL, not SIGTERM: a SIGSTOPped (hung) process
                    # never receives SIGTERM, but SIGKILL ends it even
                    # while stopped.
                    proc.kill()
                self._fenced[conn.launch_index] = proc
        if conn.ready:
            self.stats["workers_lost"] += 1
        if conn.unit is None:
            return
        index = conn.unit
        conn.unit = None
        state = self._states[index]
        state.misses += misses
        state.last_worker = conn.worker_id or state.last_worker
        if state.dispatches >= self._policy.max_dispatches:
            state.done = True
            self._done_count += 1
            land(index, None, UnitFailure(
                index=index,
                label=self._labels[index],
                error=(
                    f"worker {state.last_worker!r} lost ({reason}) and "
                    f"unit exhausted its {self._policy.max_dispatches} "
                    f"dispatch(es)"
                ),
                traceback="",
                attempts=state.dispatches,
                worker=state.last_worker,
                redispatches=max(0, state.dispatches - 1),
                heartbeat_misses=state.misses,
            ))
            return
        self._pending.appendleft(index)
        # Offer the requeued unit to an idle survivor immediately.
        for survivor in self._connections.values():
            if survivor.ready and survivor.unit is None:
                self._dispatch(survivor)
                if not self._pending:
                    break


# -- worker side -------------------------------------------------------


class WorkerSession:
    """One worker's dialogue with the coordinator, over any socket.

    Separated from :func:`worker_main` so tests can drive a session
    in-process against a ``socket.socketpair`` coordinator stub; the
    real entry point wraps it around a TCP connection.
    """

    def __init__(
        self,
        sock: socket.socket,
        faults: Sequence[WorkerFault] = (),
        launch_index: Optional[int] = None,
    ):
        self.sock = sock
        self.faults = tuple(faults)
        self.launch_index = launch_index
        self.worker_id = ""
        self._send_lock = threading.Lock()
        self._heartbeat_seconds = 0.5
        self._units_received = 0
        self._stop = threading.Event()

    def _send(self, message: Tuple) -> None:
        payload = encode_message(message)
        with self._send_lock:
            self.sock.sendall(payload)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_seconds):
            try:
                self._send(("heartbeat",))
            except OSError:
                return

    def _apply_faults(self) -> None:
        for fault in self.faults:
            if fault.kind == "slow-start":
                continue
            if fault.after_units != self._units_received:
                continue
            if fault.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.kind == "hang":
                os.kill(os.getpid(), signal.SIGSTOP)
            elif fault.kind == "delay":
                time.sleep(fault.seconds)

    def _send_result(
        self, index: int, label: str, output: Any,
        failure: Optional[UnitFailure],
    ) -> None:
        try:
            payload = encode_message(("result", index, output, failure))
        except Exception as exc:
            fallback = UnitFailure(
                index=index,
                label=label,
                error=(
                    f"unit output could not be pickled for the "
                    f"coordinator: {exc!r}"
                ),
                traceback=_normalize_traceback(
                    traceback_module.format_exc()
                ),
                attempts=1,
                worker=self.worker_id,
            )
            payload = encode_message(("result", index, None, fallback))
        with self._send_lock:
            self.sock.sendall(payload)

    def run(self) -> int:
        self._send(("hello", {
            "pid": os.getpid(),
            "launch": self.launch_index,
        }))
        message = recv_message(self.sock)
        if message is None or message[0] != "setup":
            return 1
        _, worker_id, heartbeat_seconds, initializer, initargs = message
        self.worker_id = worker_id
        self._heartbeat_seconds = heartbeat_seconds
        if initializer is not None:
            try:
                initializer(*initargs)
            except Exception:
                self._send((
                    "fatal",
                    _normalize_traceback(traceback_module.format_exc()),
                ))
                return 1
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, daemon=True
        )
        heartbeat.start()
        try:
            while True:
                message = recv_message(self.sock)
                if message is None:
                    return 0
                kind = message[0]
                if kind == "shutdown":
                    return 0
                if kind != "unit":
                    continue
                _, index, blob, label, policy = message
                self._units_received += 1
                self._apply_faults()
                runner, payload = pickle.loads(blob)
                _index, output, failure = _attempt_unit(
                    index, runner, payload, label, policy
                )
                self._send_result(index, label, output, failure)
        finally:
            self._stop.set()
            heartbeat.join(timeout=2.0)


def _parse_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port:
        raise ValueError(
            f"worker address must be HOST:PORT, got {address!r}"
        )
    return host, int(port)


def _connect_with_retry(
    host: str, port: int, give_up_seconds: float = 20.0
) -> Optional[socket.socket]:
    """Dial the coordinator, retrying while it may still be binding."""
    deadline = time.monotonic() + give_up_seconds
    pause = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(pause)
            pause = min(pause * 2, 0.5)


def worker_main(
    address: str,
    faults: Optional[Sequence[WorkerFault]] = None,
) -> int:
    """Entry point for one worker process: dial in and serve units.

    ``faults`` defaults to the worker's own chaos fault list from the
    environment (:data:`~repro.runtime.chaos.FAULTS_ENV`); slow-start
    faults delay the dial-in itself, which is how elastic mid-plan
    joins are exercised.  Returns a process exit status.
    """
    host, port = _parse_address(address)
    fault_list = tuple(faults) if faults is not None else faults_from_env()
    for fault in fault_list:
        if fault.kind == "slow-start":
            time.sleep(fault.seconds)
    launch_env = os.environ.get(LAUNCH_ENV)
    launch_index = int(launch_env) if launch_env is not None else None
    sock = _connect_with_retry(host, port)
    if sock is None:
        return 1
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return WorkerSession(
            sock, faults=fault_list, launch_index=launch_index
        ).run()
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.cluster",
        description="Run one cluster worker process that dials in to a "
        "coordinator (see also: python -m repro worker).",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to dial",
    )
    args = parser.parse_args(argv)
    return worker_main(args.connect)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(_main())
