"""Unreliable asynchronous network model for the DES agent simulator.

The paper's system model assumes an asynchronous network that "can drop
messages or connections".  This module models point-to-point contacts
with configurable latency distributions and a per-connection failure
probability; it is used by :mod:`repro.runtime.agent` for the
high-fidelity (non-synchronous) simulations that check the round-engine
results are not artifacts of synchrony.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

import numpy as np

from .des import Environment
from .events import Event


class ContactFailed(Exception):
    """The contact attempt failed (loss, or target crashed)."""


@dataclass
class LatencyModel:
    """Round-trip latency distribution for contacts.

    ``base`` plus an exponential tail of mean ``jitter_mean`` -- a
    common model of wide-area RPC latency.  All values are expressed in
    protocol-period units (e.g. 0.01 = 1% of a period).
    """

    base: float = 0.01
    jitter_mean: float = 0.02

    def draw(self, rng: np.random.Generator) -> float:
        jitter = rng.exponential(self.jitter_mean) if self.jitter_mean > 0 else 0.0
        return self.base + jitter


class Network:
    """Point-to-point contact fabric between registered endpoints.

    Endpoints register a synchronous ``handler(payload) -> reply``;
    :meth:`contact` returns an event that either succeeds with the reply
    after a latency draw, or fails with :class:`ContactFailed` when the
    connection drops (probability ``loss_rate``) or the destination is
    not registered/alive.

    The handler runs at *delivery* time, so the reply reflects the
    target's state when the message arrives -- the asynchronous-reality
    detail the synchronous round engine abstracts away.
    """

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        loss_rate: float = 0.0,
        latency: Optional[LatencyModel] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must lie in [0, 1), got {loss_rate}")
        self.env = env
        self.rng = rng
        self.loss_rate = loss_rate
        self.latency = latency or LatencyModel()
        self._endpoints: Dict[int, Callable[[Any], Any]] = {}
        self.contacts_attempted = 0
        self.contacts_failed = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, address: int, handler: Callable[[Any], Any]) -> None:
        """Attach an endpoint; replaces any previous handler."""
        self._endpoints[address] = handler

    def unregister(self, address: int) -> None:
        """Detach an endpoint (crashed host): future contacts fail."""
        self._endpoints.pop(address, None)

    def is_registered(self, address: int) -> bool:
        return address in self._endpoints

    # ------------------------------------------------------------------
    # Contacts
    # ------------------------------------------------------------------
    def contact(self, destination: int, payload: Any) -> Event:
        """Initiate a round-trip contact; returns a result event.

        The event fails with :class:`ContactFailed` if the connection
        drops or the destination is unregistered **at delivery time**.
        """
        self.contacts_attempted += 1
        result = Event()
        delay = self.latency.draw(self.rng)
        dropped = self.rng.random() < self.loss_rate

        def deliver() -> None:
            handler = self._endpoints.get(destination)
            if dropped or handler is None:
                self.contacts_failed += 1
                result.fail(ContactFailed(destination))
                return
            try:
                reply = handler(payload)
            except Exception as exc:  # endpoint bug: surface as failure
                self.contacts_failed += 1
                result.fail(ContactFailed(f"handler error: {exc!r}"))
                return
            result.succeed(reply)

        self.env.schedule(delay, deliver)
        return result

    def fire_and_forget(self, destination: int, payload: Any) -> None:
        """One-way message (used by push-style actions and tokens)."""
        self.contacts_attempted += 1
        dropped = self.rng.random() < self.loss_rate
        delay = self.latency.draw(self.rng)

        def deliver() -> None:
            handler = self._endpoints.get(destination)
            if dropped or handler is None:
                self.contacts_failed += 1
                return
            handler(payload)

        self.env.schedule(delay, deliver)
