"""Event primitives for the discrete-event simulation kernel.

There is no simpy available in this environment, so the repository
ships its own minimal-but-real DES core.  This module provides the
:class:`Event` future-like object and the time-ordered
:class:`EventQueue`; :mod:`repro.runtime.des` builds the process model
on top.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class EventAlreadySettled(RuntimeError):
    """Raised when an event is succeeded or failed twice."""


class Event:
    """A one-shot future: callbacks run when the event settles.

    Events carry either a value (:meth:`succeed`) or an exception
    (:meth:`fail`).  Processes created by the DES environment can
    ``yield`` an event to suspend until it settles.
    """

    __slots__ = ("callbacks", "_value", "_exception", "_settled")

    def __init__(self):
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._settled = False

    @property
    def settled(self) -> bool:
        return self._settled

    @property
    def ok(self) -> bool:
        """True when the event settled successfully."""
        return self._settled and self._exception is None

    @property
    def value(self) -> Any:
        if not self._settled:
            raise RuntimeError("event has not settled yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._settled:
            raise EventAlreadySettled("event already settled")
        self._settled = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._settled:
            raise EventAlreadySettled("event already settled")
        self._settled = True
        self._exception = exception
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when settled (immediately if already)."""
        if self._settled:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class EventQueue:
    """Min-heap of ``(time, sequence, callback)`` entries.

    The sequence number makes ordering of same-time events FIFO and
    deterministic, which matters for reproducible simulations.
    """

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def pop(self) -> Tuple[float, Callable[[], None]]:
        time, _, callback = heapq.heappop(self._heap)
        return time, callback

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
