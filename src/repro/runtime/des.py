"""A generator-based discrete-event simulation kernel.

This is the repository's simpy substitute: processes are Python
generators that ``yield`` events to suspend.  The kernel supports the
features the asynchronous protocol simulations need -- timeouts,
futures, interruption of processes (crash injection), and a bounded
run loop -- and nothing more.

Example::

    env = Environment()

    def ticker(env, period):
        while True:
            yield env.timeout(period)
            print("tick at", env.now)

    env.spawn(ticker(env, 1.0))
    env.run(until=5.0)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .events import Event, EventQueue


class Interrupted(Exception):
    """Thrown into a process generator when it is interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """A running coroutine driven by the environment.

    The wrapped generator may ``yield``:

    * an :class:`Event` -- suspends until the event settles; the event's
      value is sent back into the generator (exceptions are thrown in);
    * ``None`` -- yields control for one scheduling step at the same
      simulated time (rarely needed).

    A process is itself observable through :attr:`completion`, an event
    that settles with the generator's return value.
    """

    def __init__(self, env: "Environment", generator: Generator):
        self.env = env
        self.generator = generator
        self.completion = Event()
        self._waiting_on: Optional[Event] = None
        self._interrupt: Optional[Interrupted] = None
        env._schedule_now(self._step, None)

    @property
    def alive(self) -> bool:
        return not self.completion.settled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its next step.

        If the process is waiting on an event, it is woken immediately
        (the event remains pending for other waiters).
        """
        if not self.alive:
            return
        self._interrupt = Interrupted(cause)
        if self._waiting_on is not None:
            waiting, self._waiting_on = self._waiting_on, None
            self.env._schedule_now(self._step, None)
            # Disconnect: the original callback checks identity below.
            self._wait_token += 1

    def _step(self, triggering_event: Optional[Event]) -> None:
        if not self.alive:
            return
        try:
            if self._interrupt is not None:
                interrupt, self._interrupt = self._interrupt, None
                target = self.generator.throw(interrupt)
            elif triggering_event is not None and not triggering_event.ok:
                try:
                    triggering_event.value  # raises the stored exception
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    target = self.generator.throw(exc)
                else:  # pragma: no cover - unreachable
                    raise AssertionError
            elif triggering_event is not None:
                target = self.generator.send(triggering_event.value)
            else:
                target = next(self.generator)
        except StopIteration as stop:
            self.completion.succeed(stop.value)
            return
        except Interrupted as exc:
            # Process chose not to handle the interruption: it dies.
            self.completion.succeed(exc)
            return
        self._wait_for(target)

    _wait_token = 0

    def _wait_for(self, target: Any) -> None:
        if target is None:
            self.env._schedule_now(self._step, None)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; expected an Event or None"
            )
        self._waiting_on = target
        self._wait_token += 1
        token = self._wait_token

        def resume(event: Event, token=token) -> None:
            # Ignore stale wake-ups after an interrupt detached us.
            if self._wait_token != token or not self.alive:
                return
            self._waiting_on = None
            self._step(event)

        target.add_callback(resume)


class Environment:
    """The simulation clock, scheduler and process factory."""

    def __init__(self):
        self.now: float = 0.0
        self._queue = EventQueue()
        self._processes: List[Process] = []

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh unsettled event (a future)."""
        return Event()

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event()
        self._queue.push(self.now + delay, lambda: event.succeed(value))
        return event

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run a bare callback ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._queue.push(self.now + delay, callback)

    def _schedule_now(
        self, step: Callable[[Optional[Event]], None], event: Optional[Event]
    ) -> None:
        self._queue.push(self.now, lambda: step(event))

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        process = Process(self, generator)
        self._processes.append(process)
        return process

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulation time at exit.  ``max_events`` guards
        against runaway loops in buggy protocols.
        """
        executed = 0
        while self._queue:
            next_time = self._queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                self.now = until
                return self.now
            time, callback = self._queue.pop()
            self.now = time
            callback()
            executed += 1
            if executed >= max_events:
                raise RuntimeError(
                    f"run loop exceeded {max_events} events (runaway simulation?)"
                )
        if until is not None:
            self.now = until
        return self.now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event (None when idle)."""
        return self._queue.peek_time()
