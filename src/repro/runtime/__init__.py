"""Simulation substrates for synthesized protocols.

Three engines execute any :class:`~repro.synthesis.protocol.ProtocolSpec`,
ordered from most faithful to fastest:

* :class:`~repro.runtime.agent_sim.AgentSimulation` -- one DES coroutine
  per process over an unreliable latency network with arbitrary period
  phases and clock drift; validates that results are not artifacts of
  synchrony.
* :class:`~repro.runtime.round_engine.RoundEngine` -- vectorized
  synchronous rounds for one protocol instance; the faithful
  reproduction of the paper's C simulator, fast enough for
  100,000-host, 10,000-period experiments.
* :class:`~repro.runtime.batch_engine.BatchRoundEngine` -- M independent
  trials in one ``(M, N)`` state array with per-trial or batched RNG
  streams; the substrate for every ensemble measurement (means,
  quantile bands, extinction frequencies) and for the campaign runner
  (:mod:`repro.campaign`).

Support modules: the DES kernel (:mod:`~repro.runtime.des`,
:mod:`~repro.runtime.events`), the network model
(:mod:`~repro.runtime.network`), membership views and overlays,
failure injection (:mod:`~repro.runtime.failures`), synthetic Overnet-
style churn traces (:mod:`~repro.runtime.churn`), metrics recording and
Mersenne Twister stream management (:mod:`~repro.runtime.rng`).
"""

from .agent_sim import AgentSimulation
from .batch_engine import (
    BatchMetricsRecorder,
    BatchRoundEngine,
    BatchRunResult,
    BatchTrialView,
    segmented_choice,
    serial_ensemble,
)
from .churn import ChurnEvent, ChurnReplayer, ChurnTrace, generate_trace
from .des import Environment, Interrupted, Process
from .events import Event, EventQueue
from .failures import CrashRecoveryNoise, DirectedAttack, MassiveFailure, OpenGroupJoins, ScheduledRecovery
from .membership import FullMembership, PartialMembership
from .metrics import MetricsRecorder, WindowStats
from .network import ContactFailed, LatencyModel, Network
from .overlay import erdos_renyi_overlay, log_degree, overlay_stats, random_regular_overlay
from .chaos import ChaosSchedule, WorkerFault
from .exec import (
    BACKENDS,
    ExecutionPlan,
    FaultPolicy,
    UnitExecutionError,
    UnitFailure,
    UnitTimeout,
    WorkUnit,
    run_plan,
)
from .parallel import (
    SHARD_DOMAIN,
    AgentEnsemble,
    AgentEnsembleResult,
    ShardedBatchExecutor,
    ShardedRunResult,
    shard_layout,
)
from .planner import ActionPlanner, PlannedAction, TrialMemberPools
from .rng import RandomSource, make_generator, sample_other, spawn_seeds
from .round_engine import RoundEngine, RunResult, initial_state_vector

__all__ = [
    "RoundEngine",
    "RunResult",
    "BatchRoundEngine",
    "BatchRunResult",
    "BatchMetricsRecorder",
    "BatchTrialView",
    "segmented_choice",
    "serial_ensemble",
    "ActionPlanner",
    "PlannedAction",
    "TrialMemberPools",
    "BACKENDS",
    "ChaosSchedule",
    "ExecutionPlan",
    "FaultPolicy",
    "UnitExecutionError",
    "UnitFailure",
    "UnitTimeout",
    "WorkUnit",
    "WorkerFault",
    "run_plan",
    "ShardedBatchExecutor",
    "ShardedRunResult",
    "AgentEnsemble",
    "AgentEnsembleResult",
    "shard_layout",
    "SHARD_DOMAIN",
    "initial_state_vector",
    "AgentSimulation",
    "Environment",
    "Process",
    "Interrupted",
    "Event",
    "EventQueue",
    "Network",
    "LatencyModel",
    "ContactFailed",
    "FullMembership",
    "PartialMembership",
    "MetricsRecorder",
    "WindowStats",
    "MassiveFailure",
    "OpenGroupJoins",
    "CrashRecoveryNoise",
    "DirectedAttack",
    "ScheduledRecovery",
    "ChurnTrace",
    "ChurnEvent",
    "ChurnReplayer",
    "generate_trace",
    "RandomSource",
    "make_generator",
    "sample_other",
    "spawn_seeds",
    "log_degree",
    "random_regular_overlay",
    "erdos_renyi_overlay",
    "overlay_stats",
]
