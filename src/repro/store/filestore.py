"""A migratory replicated file store built on endemic replication.

The paper positions endemic replication as the replica-*location* layer
of a persistent distributed file system ("a concept similar to the
eternity storage service"): every file runs its own endemic protocol
instance on its behalf, and at any time the file's replicas live
exactly on the processes in the *stash* state of that instance.

:class:`MigratoryFileStore` packages that design: files share one host
population (and one failure/churn schedule) but each file has an
independent :class:`~repro.runtime.round_engine.RoundEngine`.  The
store exposes insert/locate/fetch operations, per-file safety and flux
accounting, and the Section 5.1 bandwidth bookkeeping.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..protocols.endemic import (
    AVERSE,
    RECEPTIVE,
    STASH,
    EndemicParams,
    figure1_protocol,
)
from ..runtime.metrics import MetricsRecorder
from ..runtime.rng import make_generator
from ..runtime.round_engine import RoundEngine
from .snapshots import (
    SnapshotError,
    generator_from_array,
    generator_to_array,
    load_snapshot,
    save_snapshot,
)


@dataclass
class StoredFile:
    """Bookkeeping for one file's endemic instance."""

    name: str
    size_bytes: float
    engine: RoundEngine
    recorder: MetricsRecorder
    inserted_period: int
    transfers: int = 0
    lost_at_period: Optional[int] = None
    params: Optional[EndemicParams] = None  # recorded for persistence

    @property
    def lost(self) -> bool:
        return self.lost_at_period is not None


@dataclass
class FetchResult:
    """Outcome of a fetch: where the file was found and the probe cost."""

    name: str
    found: bool
    probes: int
    replica_host: Optional[int]


class MigratoryFileStore:
    """A persistent file store with endemic (migratory) replica location.

    Parameters
    ----------
    n:
        Host population size.
    params:
        Endemic protocol parameters shared by all files (per-file
        parameters are possible via :meth:`insert`'s override).
    period_seconds:
        Wall-clock length of a protocol period (bandwidth accounting).
    seed:
        Base seed; per-file engines derive independent streams.
    """

    def __init__(
        self,
        n: int,
        params: EndemicParams,
        *,
        period_seconds: float = 360.0,
        seed: Optional[int] = None,
    ):
        if n < 2:
            raise ValueError(f"need at least 2 hosts, got {n}")
        self.n = n
        self.params = params
        self.period_seconds = period_seconds
        self._seed = seed if seed is not None else 0
        self.period = 0
        self.files: Dict[str, StoredFile] = {}
        self._fetch_rng = make_generator(self._seed ^ 0x5EED)
        self._down_hosts: set = set()

    # ------------------------------------------------------------------
    # File lifecycle
    # ------------------------------------------------------------------
    def insert(
        self,
        name: str,
        size_bytes: float = 88.2e3,
        initial_replicas: int = 1,
        params: Optional[EndemicParams] = None,
    ) -> StoredFile:
        """Insert a file: seed ``initial_replicas`` stashers.

        A single initial stasher suffices: the trivial equilibrium is a
        saddle (Theorem 3 corollary), so "inclusion of even a single
        stasher will drive the system towards the second, more stable
        equilibrium".
        """
        if name in self.files:
            raise ValueError(f"file {name!r} already stored")
        if not 1 <= initial_replicas <= self.n:
            raise ValueError(f"initial replicas must lie in [1, {self.n}]")
        file_params = params or self.params
        spec = figure1_protocol(file_params)
        engine = RoundEngine(
            spec,
            n=self.n,
            initial={
                RECEPTIVE: self.n - initial_replicas,
                STASH: initial_replicas,
                AVERSE: 0,
            },
            seed=self._seed + len(self.files) * 7919 + 1,
        )
        # Keep host availability consistent with the store's view.
        if self._down_hosts:
            engine.crash(np.fromiter(self._down_hosts, dtype=np.int64))
        recorder = MetricsRecorder(spec.states)
        stored = StoredFile(
            name=name,
            size_bytes=size_bytes,
            engine=engine,
            recorder=recorder,
            inserted_period=self.period,
            params=file_params,
        )
        self.files[name] = stored
        return stored

    def remove(self, name: str) -> None:
        """Drop a file from the store (administrative delete)."""
        del self.files[name]

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def tick(self, periods: int = 1) -> None:
        """Advance every file's protocol by ``periods`` rounds."""
        for _ in range(periods):
            self.period += 1
            for stored in self.files.values():
                engine = stored.engine
                engine.step()
                stored.recorder.record(
                    self.period,
                    engine.counts(),
                    engine.alive_count(),
                    transitions=engine.last_transitions,
                )
                stored.transfers += engine.last_transitions.get(
                    (RECEPTIVE, STASH), 0
                )
                if (
                    stored.lost_at_period is None
                    and engine.counts()[STASH] == 0
                ):
                    stored.lost_at_period = self.period

    # ------------------------------------------------------------------
    # Host availability (applies to every file's engine)
    # ------------------------------------------------------------------
    def crash_hosts(self, hosts: Iterable[int]) -> None:
        """Crash hosts across all files (replicas on them are lost)."""
        host_array = np.fromiter((int(h) for h in hosts), dtype=np.int64)
        self._down_hosts.update(host_array.tolist())
        for stored in self.files.values():
            stored.engine.crash(host_array)

    def crash_random_fraction(self, fraction: float) -> np.ndarray:
        """Crash a uniform random fraction of currently-up hosts."""
        up = np.array(
            [h for h in range(self.n) if h not in self._down_hosts],
            dtype=np.int64,
        )
        count = int(round(fraction * len(up)))
        victims = self._fetch_rng.choice(up, size=count, replace=False)
        self.crash_hosts(victims.tolist())
        return victims

    def recover_hosts(self, hosts: Iterable[int]) -> None:
        """Hosts rejoin receptive toward every file (no startup copies)."""
        host_array = np.fromiter((int(h) for h in hosts), dtype=np.int64)
        self._down_hosts.difference_update(host_array.tolist())
        for stored in self.files.values():
            stored.engine.recover(host_array, state=RECEPTIVE)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def locate(self, name: str) -> np.ndarray:
        """Current replica holders (stashers) of a file."""
        return self.files[name].engine.members_in(STASH)

    def fetch(self, name: str, max_probes: Optional[int] = None) -> FetchResult:
        """Client fetch by random probing (no directory).

        Contacts uniformly random hosts until one holds a replica; the
        expected probe count is ``n / stashers``.  A directory-less
        fetch is the honest cost model for a protocol whose *point* is
        that replica locations are untraceable.
        """
        stored = self.files[name]
        engine = stored.engine
        stash_id = engine.state_id(STASH)
        if max_probes is None:
            max_probes = 50 * self.n // max(1, len(self.locate(name)) or 1)
        probes = 0
        for _ in range(max_probes):
            probes += 1
            host = int(self._fetch_rng.integers(0, self.n))
            if engine.alive[host] and engine.states[host] == stash_id:
                return FetchResult(name, True, probes, host)
        return FetchResult(name, False, probes, None)

    def replica_count(self, name: str) -> int:
        return int(len(self.locate(name)))

    def lost_files(self) -> List[str]:
        return [name for name, f in self.files.items() if f.lost]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    SNAPSHOT_KIND = "migratory-filestore"

    def save(self, path: os.PathLike) -> Path:
        """Checkpoint the store to a snapshot file (atomic write).

        Captures every bit that affects future behaviour: each file's
        engine state (states, alive mask, RNG streams), the fetch/crash
        RNG, the down-host set and the store clock.  Recorder *history*
        is deliberately not persisted -- it is derived observability
        data, so a restored store reports bandwidth only over periods
        ticked after the restore (see ``docs/service.md``).
        """
        arrays: Dict[str, np.ndarray] = {
            "fetch_rng": generator_to_array(self._fetch_rng),
        }
        files_meta = []
        for index, stored in enumerate(self.files.values()):
            state = stored.engine.state_snapshot()
            arrays[f"file{index}.states"] = state["states"]
            arrays[f"file{index}.alive"] = state["alive"]
            arrays[f"file{index}.rng"] = np.frombuffer(
                state["rng_pickle"], dtype=np.uint8
            )
            arrays[f"file{index}.fault_rng"] = np.frombuffer(
                state["fault_rng_pickle"], dtype=np.uint8
            )
            files_meta.append({
                "name": stored.name,
                "size_bytes": stored.size_bytes,
                "inserted_period": stored.inserted_period,
                "transfers": stored.transfers,
                "lost_at_period": stored.lost_at_period,
                "params": asdict(stored.params or self.params),
                "engine_period": state["period"],
                "engine_total_messages": state["total_messages"],
            })
        meta = {
            "kind": self.SNAPSHOT_KIND,
            "n": self.n,
            "params": asdict(self.params),
            "period_seconds": self.period_seconds,
            "seed": self._seed,
            "period": self.period,
            "down_hosts": sorted(self._down_hosts),
            "files": files_meta,
        }
        return save_snapshot(path, arrays, meta)

    @classmethod
    def load(cls, path: os.PathLike) -> "MigratoryFileStore":
        arrays, meta = load_snapshot(path)
        if meta.get("kind") != cls.SNAPSHOT_KIND:
            raise SnapshotError(
                f"{path}: snapshot kind {meta.get('kind')!r}, "
                f"expected {cls.SNAPSHOT_KIND!r}"
            )
        store = cls(
            int(meta["n"]),
            EndemicParams(**meta["params"]),
            period_seconds=float(meta["period_seconds"]),
            seed=int(meta["seed"]),
        )
        store.period = int(meta["period"])
        store._down_hosts = set(int(h) for h in meta["down_hosts"])
        store._fetch_rng = generator_from_array(arrays["fetch_rng"])
        for index, file_meta in enumerate(meta["files"]):
            file_params = EndemicParams(**file_meta["params"])
            spec = figure1_protocol(file_params)
            # Same construction seed as insert() used; the restored RNG
            # pickles below overwrite whatever the constructor drew.
            engine = RoundEngine(
                spec,
                n=store.n,
                initial={RECEPTIVE: store.n - 1, STASH: 1, AVERSE: 0},
                seed=store._seed + index * 7919 + 1,
            )
            engine.restore_state({
                "states": arrays[f"file{index}.states"],
                "alive": arrays[f"file{index}.alive"],
                "period": file_meta["engine_period"],
                "total_messages": file_meta["engine_total_messages"],
                "rng_pickle": arrays[f"file{index}.rng"].tobytes(),
                "fault_rng_pickle": arrays[f"file{index}.fault_rng"].tobytes(),
            })
            store.files[file_meta["name"]] = StoredFile(
                name=file_meta["name"],
                size_bytes=float(file_meta["size_bytes"]),
                engine=engine,
                recorder=MetricsRecorder(spec.states),
                inserted_period=int(file_meta["inserted_period"]),
                transfers=int(file_meta["transfers"]),
                lost_at_period=(
                    None if file_meta["lost_at_period"] is None
                    else int(file_meta["lost_at_period"])
                ),
                params=file_params,
            )
        return store

    # ------------------------------------------------------------------
    # Accounting (Section 5.1 reality check)
    # ------------------------------------------------------------------
    def bandwidth_bps_per_host(self, name: str, window_periods: int = 100) -> float:
        """Measured steady-state transfer bandwidth, bits/s/host.

        Counts receptive->stash transfers (each moves the file once:
        one send + one receive across the population) over the last
        ``window_periods`` recorded periods.
        """
        stored = self.files[name]
        series = stored.recorder.transition_series((RECEPTIVE, STASH))
        if len(series) == 0:
            return 0.0
        window = series[-window_periods:]
        transfers_per_period = float(np.mean(window))
        bytes_per_second = (
            transfers_per_period * stored.size_bytes / self.period_seconds
        )
        return 2.0 * 8.0 * bytes_per_second / self.n

    def storage_load(self) -> np.ndarray:
        """Bytes currently stored per host, across all files."""
        load = np.zeros(self.n)
        for stored in self.files.values():
            load[self.locate(stored.name)] += stored.size_bytes
        return load
