"""Example applications built on the synthesized protocols.

* :class:`~repro.store.filestore.MigratoryFileStore` -- a persistent
  file store using endemic replication for replica location (the
  paper's motivating application, Section 4.1).
* :class:`~repro.store.majority_service.MajorityService` -- a
  LOCKSS-style repeated majority-polling service on the LV protocol
  (Section 4.2).
"""

from .filestore import FetchResult, MigratoryFileStore, StoredFile
from .majority_service import MajorityService, PollRecord

__all__ = [
    "MigratoryFileStore",
    "StoredFile",
    "FetchResult",
    "MajorityService",
    "PollRecord",
]
