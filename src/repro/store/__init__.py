"""Example applications built on the synthesized protocols.

* :class:`~repro.store.filestore.MigratoryFileStore` -- a persistent
  file store using endemic replication for replica location (the
  paper's motivating application, Section 4.1).
* :class:`~repro.store.majority_service.MajorityService` -- a
  LOCKSS-style repeated majority-polling service on the LV protocol
  (Section 4.2).

Plus the persistence primitives the live service tier sits on:

* :mod:`~repro.store.eventlog` -- append-only JSONL event log with
  torn-tail-tolerant reads (the replay source of truth);
* :mod:`~repro.store.snapshots` -- checksummed, atomically-written
  ``.npz`` state snapshots.
"""

from .eventlog import (
    EVENTS_NAME,
    EventLog,
    EventLogError,
    LoggedEvent,
    MemoryEventLog,
    read_events,
)
from .filestore import FetchResult, MigratoryFileStore, StoredFile
from .majority_service import MajorityService, PollRecord
from .snapshots import (
    SnapshotError,
    generator_from_array,
    generator_to_array,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "MigratoryFileStore",
    "StoredFile",
    "FetchResult",
    "MajorityService",
    "PollRecord",
    "EventLog",
    "EventLogError",
    "EVENTS_NAME",
    "LoggedEvent",
    "MemoryEventLog",
    "read_events",
    "SnapshotError",
    "save_snapshot",
    "load_snapshot",
    "generator_to_array",
    "generator_from_array",
]
