"""Append-only JSONL event log for the live protocol service.

The log is the replay contract's source of truth: every externally
visible mutation of a live population -- construction, membership
events, clock ticks, snapshots, shutdown -- is appended here as one
JSON object per line, stamped with a monotonically increasing ``seq``.
Replaying the log through the same code with the same recorded seeds
must reproduce the exact state stream (see ``docs/service.md``).

Two durability properties matter and are both tested:

* **appends are atomic at line granularity** -- each record is written
  as one ``write()`` of a complete line and flushed, so a crash leaves
  at most one torn *final* line;
* **reads tolerate exactly that** -- ``read_events`` drops a torn
  final line (reporting it) but refuses mid-file corruption, which can
  only mean the log was edited or the filesystem lied.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

EVENTS_NAME = "events.jsonl"

#: Event kinds with engine-side effects, in the vocabulary clients use.
MEMBERSHIP_KINDS = ("join", "leave", "fail")

#: Every kind that may legally appear in a log.
ALL_KINDS = ("init", "tick", "snapshot", "close") + MEMBERSHIP_KINDS


class EventLogError(ValueError):
    """A log line that cannot be explained by a torn final write."""


@dataclass(frozen=True)
class LoggedEvent:
    """One decoded log line."""

    seq: int
    period: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "period": self.period,
            "kind": self.kind,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LoggedEvent":
        try:
            return cls(
                seq=int(payload["seq"]),
                period=int(payload["period"]),
                kind=str(payload["kind"]),
                data=dict(payload.get("data", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EventLogError(f"malformed event record: {payload!r}") from exc


def _decode_line(line: str, lineno: int) -> LoggedEvent:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise EventLogError(f"line {lineno}: invalid JSON: {line!r}") from exc
    if not isinstance(payload, dict):
        raise EventLogError(f"line {lineno}: expected object, got {payload!r}")
    event = LoggedEvent.from_dict(payload)
    if event.kind not in ALL_KINDS:
        raise EventLogError(f"line {lineno}: unknown event kind {event.kind!r}")
    return event


def read_events(
    path: os.PathLike, *, tolerate_torn_tail: bool = True
) -> Tuple[List[LoggedEvent], bool]:
    """Read a log file; returns ``(events, tail_was_torn)``.

    A final line that is incomplete (no newline and/or invalid JSON)
    is treated as a torn crash-time write and dropped when
    ``tolerate_torn_tail`` is set; any other defect -- bad JSON in the
    middle, a ``seq`` gap, an unknown kind -- raises
    :class:`EventLogError`.
    """
    raw = Path(path).read_text(encoding="utf-8")
    lines = raw.split("\n")
    # A well-formed log ends with a newline, leaving one trailing "".
    terminated = lines and lines[-1] == ""
    if terminated:
        lines = lines[:-1]
    events: List[LoggedEvent] = []
    torn = False
    for index, line in enumerate(lines):
        final = index == len(lines) - 1
        try:
            event = _decode_line(line, index + 1)
        except EventLogError:
            if final and tolerate_torn_tail:
                torn = True
                break
            raise
        if final and not terminated:
            # Complete-looking JSON but the newline never landed:
            # still a torn write (the flush was cut mid-line).
            if tolerate_torn_tail:
                torn = True
                break
            raise EventLogError("final line not newline-terminated")
        if event.seq != len(events):
            raise EventLogError(
                f"line {index + 1}: seq {event.seq}, expected {len(events)}"
            )
        events.append(event)
    return events, torn


class EventLog:
    """Writable append-only log backed by one JSONL file.

    ``append`` assigns the next ``seq``, writes one complete line and
    flushes it to the OS, so an abrupt kill (SIGKILL, power loss mid
    page write) can tear at most the final line -- which ``read_events``
    knows to drop.
    """

    def __init__(self, path: os.PathLike, *, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            raise FileExistsError(
                f"event log already exists: {self.path} "
                f"(refusing to interleave two runs; use replay instead)"
            )
        self._fh: Optional[io.TextIOBase] = self.path.open(
            "w", encoding="utf-8"
        )
        self._next_seq = 0

    @property
    def next_seq(self) -> int:
        """The ``seq`` the next ``append`` will assign."""
        return self._next_seq

    def append(
        self, kind: str, period: int, data: Optional[Dict[str, Any]] = None
    ) -> LoggedEvent:
        if self._fh is None:
            raise EventLogError(f"event log is closed: {self.path}")
        if kind not in ALL_KINDS:
            raise EventLogError(f"unknown event kind {kind!r}")
        event = LoggedEvent(
            seq=self._next_seq, period=int(period), kind=kind,
            data=dict(data or {}),
        )
        line = json.dumps(event.to_dict(), sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._next_seq += 1
        return event

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryEventLog:
    """In-memory stand-in with the same ``append`` interface.

    Used by replay (which must not write to the directory it is
    verifying) and by property tests that drive thousands of short
    event streams without touching disk.
    """

    def __init__(self, start_seq: int = 0):
        # start_seq lets a replay that begins mid-stream (from a
        # snapshot) assign the same seq numbers the original run did,
        # so replayed records compare 1:1 against the log tail.
        self._start_seq = int(start_seq)
        self.events: List[LoggedEvent] = []

    @property
    def next_seq(self) -> int:
        return self._start_seq + len(self.events)

    def append(
        self, kind: str, period: int, data: Optional[Dict[str, Any]] = None
    ) -> LoggedEvent:
        if kind not in ALL_KINDS:
            raise EventLogError(f"unknown event kind {kind!r}")
        event = LoggedEvent(
            seq=self.next_seq, period=int(period), kind=kind,
            data=dict(data or {}),
        )
        self.events.append(event)
        return event

    def close(self) -> None:
        pass
