"""Checksummed, atomically-written state snapshots.

A snapshot is one ``.npz`` holding named arrays plus a JSON metadata
blob, sealed by a SHA-256 digest over both.  The write goes through
the repo-standard tmp + ``os.replace`` dance, so a crash mid-write
leaves either the previous snapshot or none -- never a half-written
file -- and the digest turns silent corruption (truncated zip, bit
rot, hand editing) into a loud :class:`SnapshotError` at load time
instead of a wrong replay.

The format is deliberately dumb: plain numpy arrays and a JSON dict.
Callers (``LiveEngine``, ``MajorityService``, ``MigratoryFileStore``)
decide what goes in; this module only guarantees that what comes out
is byte-for-byte what went in.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zipfile
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple

import numpy as np

_ARRAY_PREFIX = "array."
_META_KEY = "__meta_json__"
_DIGEST_KEY = "__sha256__"


class SnapshotError(ValueError):
    """A snapshot file that cannot be trusted."""


def _digest(arrays: Mapping[str, np.ndarray], meta_json: str) -> str:
    """SHA-256 over array names, dtypes, shapes, bytes and metadata."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(array.dtype.str.encode("ascii"))
        h.update(repr(array.shape).encode("ascii"))
        h.update(array.tobytes())
    h.update(meta_json.encode("utf-8"))
    return h.hexdigest()


def save_snapshot(
    path: os.PathLike,
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any],
) -> Path:
    """Atomically write ``arrays`` + ``meta`` to ``path`` (.npz)."""
    path = Path(path)
    payload: Dict[str, np.ndarray] = {}
    for name, array in arrays.items():
        array = np.asarray(array)
        if array.dtype == object:
            raise SnapshotError(f"array {name!r}: object dtype not allowed")
        payload[_ARRAY_PREFIX + name] = array
    meta_json = json.dumps(dict(meta), sort_keys=True)
    payload[_META_KEY] = np.frombuffer(
        meta_json.encode("utf-8"), dtype=np.uint8
    )
    digest = _digest(
        {k[len(_ARRAY_PREFIX):]: v for k, v in payload.items()
         if k.startswith(_ARRAY_PREFIX)},
        meta_json,
    )
    payload[_DIGEST_KEY] = np.frombuffer(
        digest.encode("ascii"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(
    path: os.PathLike,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Load and verify a snapshot; returns ``(arrays, meta)``.

    Raises :class:`SnapshotError` for anything short of a pristine
    file: unreadable zip, missing keys, digest mismatch.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as bundle:
            keys = set(bundle.files)
            if _META_KEY not in keys or _DIGEST_KEY not in keys:
                raise SnapshotError(f"{path}: not a snapshot (missing keys)")
            arrays = {
                key[len(_ARRAY_PREFIX):]: bundle[key]
                for key in keys
                if key.startswith(_ARRAY_PREFIX)
            }
            meta_json = bundle[_META_KEY].tobytes().decode("utf-8")
            stored_digest = bundle[_DIGEST_KEY].tobytes().decode("ascii")
    except SnapshotError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile, KeyError) as exc:
        raise SnapshotError(f"{path}: unreadable snapshot: {exc}") from exc
    if _digest(arrays, meta_json) != stored_digest:
        raise SnapshotError(f"{path}: checksum mismatch (corrupt snapshot)")
    try:
        meta = json.loads(meta_json)
    except json.JSONDecodeError as exc:  # digest passed => impossible unless
        raise SnapshotError(f"{path}: bad metadata JSON") from exc  # forged
    return arrays, meta


def generator_to_array(rng: np.random.Generator) -> np.ndarray:
    """Serialize a Generator to a uint8 array for snapshot storage.

    Pickle round-trips the *entire* generator -- bit-generator state
    plus any buffered output (e.g. the spare uint32 MT19937 keeps
    between 32-bit draws) -- which raw ``bit_generator.state`` dicts do
    not, and that buffered word is exactly the kind of hidden state
    that breaks bit-reproducible replay.
    """
    return np.frombuffer(
        pickle.dumps(rng, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )


def generator_from_array(data: np.ndarray) -> np.random.Generator:
    """Inverse of :func:`generator_to_array`.

    Only ever called on arrays that came out of :func:`load_snapshot`,
    whose checksum already vouches for the bytes.
    """
    rng = pickle.loads(np.asarray(data, dtype=np.uint8).tobytes())
    if not isinstance(rng, np.random.Generator):
        raise SnapshotError(
            f"expected a pickled Generator, got {type(rng).__name__}"
        )
    return rng
