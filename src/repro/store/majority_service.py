"""A repeated majority-polling service on the LV protocol.

The paper motivates probabilistic majority selection with applications
"where the decision value is allowed to be set multiple times", naming
the LOCKSS digital-preservation system: peers repeatedly poll each
other about the correct version of a document and repair from the
majority.  :class:`MajorityService` packages that pattern: a population
of processes, each holding one of two versions of an object, runs the
LV protocol to settle on the majority version; divergent processes then
repair to the winning version, and the service can be re-polled after
further corruption events.

Because majority selection is impossible to solve exactly in an
asynchronous system (it would solve consensus), the service is
explicitly probabilistic: :meth:`poll` reports the winner, whether it
matched the pre-poll majority, and the convergence time.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..protocols.lv import ONE, ZERO, LVMajority
from ..runtime.rng import make_generator
from .snapshots import (
    SnapshotError,
    generator_from_array,
    generator_to_array,
    load_snapshot,
    save_snapshot,
)


@dataclass
class PollRecord:
    """One completed poll."""

    started_period: int
    winner: Optional[str]
    matched_majority: Optional[bool]
    convergence_periods: Optional[int]
    pre_poll_split: Tuple[int, int]


class MajorityService:
    """Repeated LV majority polling over a replicated object.

    Parameters
    ----------
    n:
        Number of participating processes.
    initial_versions:
        Array of 0/1 version tags, one per process (length ``n``).
    p:
        LV normalizing constant (coin bias ``3p`` per action).
    """

    def __init__(
        self,
        n: int,
        initial_versions: np.ndarray,
        *,
        p: float = 0.01,
        seed: Optional[int] = None,
    ):
        versions = np.asarray(initial_versions, dtype=np.int8)
        if versions.shape != (n,):
            raise ValueError(f"initial_versions must have shape ({n},)")
        if not np.isin(versions, (0, 1)).all():
            raise ValueError("versions must be 0 or 1")
        self.n = n
        self.p = p
        self._seed = seed if seed is not None else 0
        self.versions = versions.copy()
        self.polls: List[PollRecord] = []
        self.clock_periods = 0
        self._rng = make_generator(self._seed ^ 0xFACE)

    # ------------------------------------------------------------------
    # Corruption model
    # ------------------------------------------------------------------
    def corrupt(self, fraction: float, to_version: int = 1) -> int:
        """Flip a random fraction of processes to ``to_version``.

        Models at-rest corruption or an attacker planting bad copies
        between polls (the LOCKSS threat model).  Returns the number of
        processes changed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        count = int(round(fraction * self.n))
        victims = self._rng.choice(self.n, size=count, replace=False)
        changed = int(np.count_nonzero(self.versions[victims] != to_version))
        self.versions[victims] = to_version
        return changed

    def split(self) -> Tuple[int, int]:
        """Current (zeros, ones) version counts."""
        ones = int(self.versions.sum())
        return self.n - ones, ones

    def true_majority(self) -> Optional[int]:
        zeros, ones = self.split()
        if zeros == ones:
            return None
        return 0 if zeros > ones else 1

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def poll(self, max_periods: int = 5000) -> PollRecord:
        """Run one LV majority selection over the current versions.

        On convergence, every process repairs its copy to the winning
        version (the LOCKSS repair step).  If the poll does not converge
        within ``max_periods`` the versions are left untouched.
        """
        zeros, ones = self.split()
        instance = LVMajority(
            self.n,
            zeros=zeros,
            ones=ones,
            p=self.p,
            seed=self._seed + 31 * len(self.polls) + 1,
        )
        outcome = instance.run(max_periods)
        winner_version: Optional[int] = None
        if outcome.winner == ZERO:
            winner_version = 0
        elif outcome.winner == ONE:
            winner_version = 1
        matched = None
        majority = self.true_majority()
        if winner_version is not None and majority is not None:
            matched = winner_version == majority
        record = PollRecord(
            started_period=self.clock_periods,
            winner=outcome.winner,
            matched_majority=matched,
            convergence_periods=outcome.convergence_period,
            pre_poll_split=(zeros, ones),
        )
        self.polls.append(record)
        if outcome.convergence_period is not None:
            self.clock_periods += outcome.convergence_period
        else:
            self.clock_periods += max_periods
        if winner_version is not None:
            self.versions[:] = winner_version  # repair divergent copies
        return record

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    SNAPSHOT_KIND = "majority-service"

    def save(self, path: os.PathLike) -> Path:
        """Checkpoint the full service state to a snapshot file.

        Everything that affects future behaviour is captured: version
        tags, the corruption RNG (with its buffered draws), the poll
        history (it seeds the next poll via ``len(self.polls)``) and the
        logical clock.  ``load`` restores a service whose subsequent
        ``corrupt``/``poll`` calls are bit-identical to the original's.
        """
        arrays = {
            "versions": self.versions,
            "rng": generator_to_array(self._rng),
        }
        meta = {
            "kind": self.SNAPSHOT_KIND,
            "n": self.n,
            "p": self.p,
            "seed": self._seed,
            "clock_periods": self.clock_periods,
            "polls": [asdict(record) for record in self.polls],
        }
        return save_snapshot(path, arrays, meta)

    @classmethod
    def load(cls, path: os.PathLike) -> "MajorityService":
        arrays, meta = load_snapshot(path)
        if meta.get("kind") != cls.SNAPSHOT_KIND:
            raise SnapshotError(
                f"{path}: snapshot kind {meta.get('kind')!r}, "
                f"expected {cls.SNAPSHOT_KIND!r}"
            )
        service = cls(
            int(meta["n"]),
            arrays["versions"],
            p=float(meta["p"]),
            seed=int(meta["seed"]),
        )
        service.clock_periods = int(meta["clock_periods"])
        service.polls = [
            PollRecord(
                started_period=record["started_period"],
                winner=record["winner"],
                matched_majority=record["matched_majority"],
                convergence_periods=record["convergence_periods"],
                pre_poll_split=tuple(record["pre_poll_split"]),
            )
            for record in meta["polls"]
        ]
        service._rng = generator_from_array(arrays["rng"])
        return service

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def accuracy(self) -> float:
        """Fraction of completed polls that selected the true majority."""
        judged = [p for p in self.polls if p.matched_majority is not None]
        if not judged:
            return float("nan")
        return sum(p.matched_majority for p in judged) / len(judged)

    def summary(self) -> Dict[str, float]:
        converged = [p for p in self.polls if p.convergence_periods is not None]
        return {
            "polls": len(self.polls),
            "converged": len(converged),
            "accuracy": self.accuracy(),
            "mean_convergence_periods": (
                float(np.mean([p.convergence_periods for p in converged]))
                if converged
                else float("nan")
            ),
        }
