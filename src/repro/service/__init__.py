"""The live tier: a continuously-running protocol population.

The paper's protocols are designed to run forever -- equilibria are
stationary properties of a never-halting population -- yet the agent,
round and batch tiers all execute finite runs.  This package promotes
a :class:`~repro.runtime.round_engine.RoundEngine` to a long-lived
*service*:

* :mod:`~repro.service.clock` -- wall and virtual clocks; every tier-1
  test of the service runs on the virtual clock, wall-clock-free;
* :mod:`~repro.service.live` -- :class:`LiveEngine`, one continuously
  advancing population with snapshot/restore;
* :mod:`~repro.service.core` -- :class:`ServiceCore`, the deterministic
  (synchronous) heart: event log, queries, checkpoints;
* :mod:`~repro.service.service` -- :class:`ProtocolService`, the
  asyncio shell: tick loop, concurrent clients, TCP endpoint;
* :mod:`~repro.service.replay` -- the replay verifier: snapshot +
  event log + recorded seeds => bit-identical state stream.
"""

from .clock import VirtualClock, WallClock
from .core import ServiceCore, StreamRow
from .live import LiveConfig, LiveEngine
from .replay import ReplayMismatch, ReplayReport, latest_snapshot, replay_directory, replay_events
from .service import ProtocolService, ServiceClient, serve_tcp

__all__ = [
    "VirtualClock",
    "WallClock",
    "LiveConfig",
    "LiveEngine",
    "ServiceCore",
    "StreamRow",
    "ProtocolService",
    "ServiceClient",
    "serve_tcp",
    "ReplayMismatch",
    "ReplayReport",
    "replay_directory",
    "replay_events",
    "latest_snapshot",
]
