"""Wall and virtual clocks for the live service.

The service only ever talks to a clock through two methods --
``time()`` and ``await sleep(delay)`` -- so swapping the wall clock
for :class:`VirtualClock` makes every timing-dependent test
deterministic and instantaneous: the test *advances* virtual time
explicitly and the service's sleeping coroutines wake in exactly
deadline order, with ties broken by who went to sleep first.

This is the repo's standing answer to the "no sleep-based timing
assertions in tier-1" rule: a test that needs "two ticks to elapse"
calls ``await clock.advance(2 * tick_seconds)`` and is done, whether
the suite runs on a loaded CI box or a laptop.
"""

from __future__ import annotations

import asyncio
import heapq
import time as _time
from typing import List, Tuple


class WallClock:
    """Real time: ``time.monotonic`` + ``asyncio.sleep``."""

    def time(self) -> float:
        return _time.monotonic()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)


class VirtualClock:
    """Deterministic manual-advance clock for asyncio tests.

    ``sleep`` parks the caller on a heap of ``(deadline, seq, future)``
    waiters; ``advance`` moves time forward and releases every waiter
    whose deadline has arrived, yielding to the event loop after each
    release so the woken coroutine can run -- and typically go back to
    sleep -- before the next waiter fires.  ``seq`` makes the wake
    order total (FIFO among equal deadlines), so runs are reproducible
    down to task interleaving.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._seq = 0
        self._waiters: List[Tuple[float, int, asyncio.Future]] = []

    def time(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Number of coroutines currently parked in ``sleep``."""
        return len(self._waiters)

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            await asyncio.sleep(0)
            return
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        heapq.heappush(self._waiters, (self._now + delay, self._seq, future))
        self._seq += 1
        await future

    async def advance(self, dt: float) -> None:
        """Move virtual time forward by ``dt``, waking due sleepers.

        Waking happens one waiter at a time, in deadline order, with
        the clock already set to that waiter's deadline -- so a service
        loop that sleeps again immediately lands back on the heap with
        the correct next deadline before later waiters run.
        """
        if dt < 0:
            raise ValueError(f"cannot advance backwards (dt={dt})")
        # Let tasks created just before this call run up to their first
        # sleep() and register a waiter; without this a driver doing
        # ``while ...: await clock.advance(dt)`` would never yield (an
        # await that resolves without suspending does not reschedule)
        # and would starve the very coroutines it is trying to drive.
        for _ in range(10):
            await asyncio.sleep(0)
        target = self._now + dt
        while self._waiters and self._waiters[0][0] <= target:
            deadline, _, future = heapq.heappop(self._waiters)
            self._now = max(self._now, deadline)
            if not future.done():
                future.set_result(None)
            # Give the woken coroutine (and anything it unblocks) a few
            # scheduler turns to run up to its next await point.
            for _ in range(10):
                await asyncio.sleep(0)
        self._now = target

    async def run_until(
        self, predicate, *, step: float, limit: float
    ) -> None:
        """Advance in ``step`` increments until ``predicate()`` holds.

        Raises ``TimeoutError`` after ``limit`` virtual seconds -- a
        deterministic stand-in for a wall-clock test timeout.
        """
        spent = 0.0
        while not predicate():
            if spent >= limit:
                raise TimeoutError(
                    f"predicate still false after {spent} virtual seconds"
                )
            await self.advance(step)
            spent += step
