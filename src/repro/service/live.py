"""One continuously-advancing protocol population.

:class:`LiveEngine` wraps a :class:`~repro.runtime.round_engine.RoundEngine`
behind the three things the live tier needs:

* a *replayable identity* -- :class:`LiveConfig` is plain data (a
  registry protocol name plus numbers), so the ``init`` event in the
  log reconstructs the exact same engine, seeds included;
* a *membership vocabulary* -- ``join`` / ``leave`` / ``fail`` events
  map onto the maximal-membership semantics the engines already have
  (join = recover with volatile state lost, leave = crash-stop,
  fail = crash a random fraction drawn from the engine's own fault
  stream, so replay re-draws the same victims);
* *checkpointing* -- ``snapshot``/``restore`` round-trip the full
  dynamic state, RNG buffers included, through the checksummed
  snapshot format in :mod:`repro.store.snapshots`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..experiment.protocol import Protocol
from ..store.snapshots import SnapshotError
from ..runtime.round_engine import RoundEngine

LIVE_SNAPSHOT_KIND = "live-engine"


@dataclass(frozen=True)
class LiveConfig:
    """Replayable construction recipe for a live population.

    ``protocol`` must be a campaign-registry name (not an equations
    file path): the log has to reconstruct the engine on a different
    machine, so the recipe may reference only names the code resolves.
    """

    protocol: str
    n: int
    seed: int
    loss_rate: float = 0.0
    initial: Optional[Mapping[str, float]] = None

    def __post_init__(self):
        if self.n < 2:
            raise ValueError(f"population must be >= 2, got {self.n}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss rate must lie in [0, 1), got {self.loss_rate}"
            )
        if self.initial is not None:
            object.__setattr__(self, "initial", dict(self.initial))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "seed": self.seed,
            "loss_rate": self.loss_rate,
            "initial": None if self.initial is None else dict(self.initial),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LiveConfig":
        return cls(
            protocol=str(payload["protocol"]),
            n=int(payload["n"]),
            seed=int(payload["seed"]),
            loss_rate=float(payload.get("loss_rate", 0.0)),
            initial=payload.get("initial"),
        )


class LiveEngine:
    """A protocol population that advances period by period, forever."""

    def __init__(self, config: LiveConfig):
        self.config = config
        self.protocol = Protocol.named(config.protocol)
        resolved = self.protocol.resolve(config.n)
        initial = (
            dict(config.initial) if config.initial is not None
            else resolved.initial
        )
        self.engine = RoundEngine(
            resolved.spec,
            n=config.n,
            initial=initial,
            seed=config.seed,
            connection_failure_rate=config.loss_rate,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def period(self) -> int:
        return self.engine.period

    @property
    def state_names(self) -> Tuple[str, ...]:
        return tuple(self.engine.state_names)

    def counts(self) -> Dict[str, int]:
        return self.engine.counts()

    def fractions(self) -> Dict[str, float]:
        return self.engine.fractions()

    def alive_count(self) -> int:
        return self.engine.alive_count()

    def equilibrium_fractions(self) -> Optional[Dict[str, float]]:
        return self.protocol.equilibrium_fractions(self.config.n)

    # ------------------------------------------------------------------
    # Mutation (only the service core calls these)
    # ------------------------------------------------------------------
    def advance(self, periods: int = 1) -> None:
        for _ in range(int(periods)):
            self.engine.step()

    def apply(self, kind: str, data: Mapping[str, Any]) -> Dict[str, Any]:
        """Apply one membership event; returns an effect summary.

        ``fail`` with a ``fraction`` draws victims from the engine's
        own fault stream, so the effect is a pure function of the
        engine state -- replaying the same event at the same state
        kills the same hosts.
        """
        if kind == "join":
            hosts = self._hosts(data)
            state = data.get("state")
            self.engine.recover(hosts, state=state)
            return {"joined": len(hosts)}
        if kind == "leave":
            hosts = self._hosts(data)
            self.engine.crash(hosts)
            return {"left": len(hosts)}
        if kind == "fail":
            if "fraction" in data:
                fraction = float(data["fraction"])
                victims = self.engine.crash_fraction(fraction)
                return {"failed": int(len(victims))}
            hosts = self._hosts(data)
            self.engine.crash(hosts)
            return {"failed": len(hosts)}
        raise ValueError(f"unknown membership event kind {kind!r}")

    def _hosts(self, data: Mapping[str, Any]) -> np.ndarray:
        try:
            hosts = np.asarray(
                [int(h) for h in data["hosts"]], dtype=np.int64
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"event needs a 'hosts' list: {dict(data)!r}") from exc
        if hosts.size and (hosts.min() < 0 or hosts.max() >= self.config.n):
            raise ValueError(
                f"host ids must lie in [0, {self.config.n}), got {hosts}"
            )
        return hosts

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """(arrays, meta) for :func:`repro.store.snapshots.save_snapshot`."""
        state = self.engine.state_snapshot()
        arrays = {
            "states": state["states"],
            "alive": state["alive"],
            "rng": np.frombuffer(state["rng_pickle"], dtype=np.uint8),
            "fault_rng": np.frombuffer(
                state["fault_rng_pickle"], dtype=np.uint8
            ),
        }
        meta = {
            "kind": LIVE_SNAPSHOT_KIND,
            "config": self.config.to_dict(),
            "period": state["period"],
            "total_messages": state["total_messages"],
        }
        return arrays, meta

    @classmethod
    def restore(
        cls,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
    ) -> "LiveEngine":
        if meta.get("kind") != LIVE_SNAPSHOT_KIND:
            raise SnapshotError(
                f"snapshot kind {meta.get('kind')!r}, "
                f"expected {LIVE_SNAPSHOT_KIND!r}"
            )
        live = cls(LiveConfig.from_dict(meta["config"]))
        live.engine.restore_state({
            "states": arrays["states"],
            "alive": arrays["alive"],
            "period": meta["period"],
            "total_messages": meta["total_messages"],
            "rng_pickle": np.asarray(
                arrays["rng"], dtype=np.uint8
            ).tobytes(),
            "fault_rng_pickle": np.asarray(
                arrays["fault_rng"], dtype=np.uint8
            ).tobytes(),
        })
        return live

    # ------------------------------------------------------------------
    # Forking (what-if ensembles; see Experiment.from_live)
    # ------------------------------------------------------------------
    def fork_state(self) -> Dict[str, Any]:
        """The live state as a batch-ensemble starting point.

        The fork models the *alive* population: the ensemble size is
        the current alive count and the initial mix is the current
        state census, so "what happens from here under M independent
        futures" is exactly what the batch tier answers.
        """
        counts = self.counts()
        return {
            "protocol": self.config.protocol,
            "n": self.alive_count(),
            "initial": {s: float(c) for s, c in counts.items()},
            "loss_rate": self.config.loss_rate,
            "period": self.period,
        }
