"""The deterministic heart of the live service.

:class:`ServiceCore` is deliberately *synchronous*: every externally
visible mutation -- membership event, clock tick, checkpoint, shutdown
-- happens in one atomic call that also appends the matching record to
the event log.  The asyncio shell (:mod:`repro.service.service`)
serializes calls through the event loop, so queries can never observe
a half-applied mutation; the replay verifier and the hypothesis
property suite drive the core directly, with no event loop at all.

The state *stream* is the replay contract's unit of comparison: one
:class:`StreamRow` per logged mutation, carrying the post-event census.
Replaying the log must reproduce the stream bit for bit.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from ..store.eventlog import EVENTS_NAME, EventLog, LoggedEvent, MemoryEventLog
from ..store.snapshots import save_snapshot
from .live import LiveEngine

SNAPSHOT_PATTERN = "snapshot-{period:08d}.npz"

#: Query operations the core understands (the service's read surface).
QUERY_OPS = (
    "status", "counts", "fractions", "equilibrium", "majority",
    "convergence",
)


@dataclass(frozen=True)
class StreamRow:
    """Census after one logged event; the unit of replay comparison."""

    seq: int
    period: int
    counts: Tuple[int, ...]
    alive: int
    total_messages: int

    def counts_dict(self, state_names: Tuple[str, ...]) -> Dict[str, int]:
        return dict(zip(state_names, self.counts))


class ServiceCore:
    """Event-sourced driver for one :class:`LiveEngine`.

    Parameters
    ----------
    live:
        The population to drive.
    directory:
        Service state directory; when given, an :class:`EventLog` is
        created at ``<directory>/events.jsonl`` and snapshots are
        written alongside it.  Mutually exclusive with ``log``.
    log:
        An explicit log (typically :class:`MemoryEventLog`) for replay
        and property tests.
    snapshot_every:
        Auto-checkpoint period spacing (0 = only explicit snapshots).
    history_window:
        How many recent stream rows back the convergence query looks.
    retain_stream:
        Keep the full stream in memory (tests / replay verification);
        a long-running server leaves this off and relies on the log.
    """

    def __init__(
        self,
        live: LiveEngine,
        *,
        directory: Optional[os.PathLike] = None,
        log: Optional[Any] = None,
        snapshot_every: int = 0,
        history_window: int = 64,
        retain_stream: bool = False,
    ):
        if (directory is None) == (log is None):
            raise ValueError("pass exactly one of directory= or log=")
        self.live = live
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.log = EventLog(self.directory / EVENTS_NAME)
        else:
            self.log = log
        self.snapshot_every = int(snapshot_every)
        self.history_window = int(history_window)
        self.history: Deque[StreamRow] = deque(maxlen=self.history_window)
        self.retain_stream = retain_stream
        self.stream: List[StreamRow] = []
        self.snapshots_written = 0
        self._last_snapshot_period: Optional[int] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> LoggedEvent:
        """Log the construction recipe; must be the first log record."""
        if self._started:
            raise RuntimeError("service core already started")
        self._started = True
        event = self.log.append("init", self.live.period, {
            "config": self.live.config.to_dict(),
            "states": list(self.live.state_names),
            "counts": self.live.counts(),
            "alive": self.live.alive_count(),
        })
        self._observe(event.seq)
        return event

    def close(self) -> LoggedEvent:
        """Log an orderly shutdown with the final census."""
        self._require_open()
        self._closed = True
        event = self.log.append("close", self.live.period, {
            "counts": self.live.counts(),
            "alive": self.live.alive_count(),
            "total_messages": self.live.engine.total_messages,
        })
        self.log.close()
        return event

    def _require_open(self) -> None:
        if not self._started:
            raise RuntimeError("service core not started")
        if self._closed:
            raise RuntimeError("service core already closed")

    # ------------------------------------------------------------------
    # Mutations (each one = exactly one log record)
    # ------------------------------------------------------------------
    def apply_event(self, kind: str, data: Mapping[str, Any]) -> LoggedEvent:
        """Apply a membership event and log it with its effect."""
        self._require_open()
        effect = self.live.apply(kind, data)
        event = self.log.append(
            kind, self.live.period, {**dict(data), "effect": effect},
        )
        self._observe(event.seq)
        return event

    def tick(self, periods: int = 1) -> LoggedEvent:
        """Advance the protocol and log the resulting census.

        The logged census is what replay verifies against, period by
        period; a divergence anywhere in engine stepping or RNG
        state shows up here as a loud mismatch.
        """
        self._require_open()
        if periods < 1:
            raise ValueError(f"periods must be >= 1, got {periods}")
        self.live.advance(periods)
        event = self.log.append("tick", self.live.period, {
            "periods": int(periods),
            "counts": self.live.counts(),
            "alive": self.live.alive_count(),
            "total_messages": self.live.engine.total_messages,
        })
        self._observe(event.seq)
        if (
            self.snapshot_every > 0
            and self.directory is not None
            and self.live.period - (self._last_snapshot_period or 0)
            >= self.snapshot_every
        ):
            self.snapshot_now()
        return event

    def snapshot_now(self) -> Optional[Path]:
        """Checkpoint now; returns the snapshot path (None if log-only)."""
        self._require_open()
        self._last_snapshot_period = self.live.period
        if self.directory is None:
            # Keep the log structurally identical to a directory-backed
            # run (replay relies on seq alignment) without touching disk.
            self.log.append("snapshot", self.live.period, {"file": None})
            self.snapshots_written += 1
            return None
        name = SNAPSHOT_PATTERN.format(period=self.live.period)
        arrays, meta = self.live.snapshot()
        meta["seq"] = self.log.next_seq  # seq of the snapshot record below
        meta["history"] = [
            {
                "seq": row.seq,
                "period": row.period,
                "counts": list(row.counts),
                "alive": row.alive,
                "total_messages": row.total_messages,
            }
            for row in self.history
        ]
        path = save_snapshot(self.directory / name, arrays, meta)
        self.log.append("snapshot", self.live.period, {"file": name})
        self.snapshots_written += 1
        return path

    @classmethod
    def from_snapshot(
        cls,
        arrays: Mapping[str, Any],
        meta: Mapping[str, Any],
        *,
        log: Any,
        history_window: int = 64,
        retain_stream: bool = False,
    ) -> "ServiceCore":
        """Rebuild a mid-stream core from a loaded snapshot.

        The snapshot's retained history window is restored too, so
        window-dependent queries (convergence) answer identically to
        the original immediately after the restore point.
        """
        live = LiveEngine.restore(arrays, meta)
        core = cls(
            live, log=log, history_window=history_window,
            retain_stream=retain_stream,
        )
        for row in meta.get("history", []):
            core.history.append(StreamRow(
                seq=int(row["seq"]),
                period=int(row["period"]),
                counts=tuple(int(c) for c in row["counts"]),
                alive=int(row["alive"]),
                total_messages=int(row["total_messages"]),
            ))
        core._last_snapshot_period = live.period
        core._started = True
        return core

    def _observe(self, seq: int) -> None:
        counts = self.live.counts()
        row = StreamRow(
            seq=seq,
            period=self.live.period,
            counts=tuple(counts[s] for s in self.live.state_names),
            alive=self.live.alive_count(),
            total_messages=self.live.engine.total_messages,
        )
        self.history.append(row)
        if self.retain_stream:
            self.stream.append(row)

    # ------------------------------------------------------------------
    # Queries (read-only, wall-clock-free, pure functions of state)
    # ------------------------------------------------------------------
    def query(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        params = dict(params or {})
        if op not in QUERY_OPS:
            raise ValueError(
                f"unknown query op {op!r}; expected one of {QUERY_OPS}"
            )
        return getattr(self, f"_query_{op}")(params)

    def _query_status(self, params) -> Dict[str, Any]:
        return {
            "protocol": self.live.config.protocol,
            "n": self.live.config.n,
            "period": self.live.period,
            "alive": self.live.alive_count(),
            "events": self.log.next_seq,
            "snapshots": self.snapshots_written,
            "closed": self._closed,
        }

    def _query_counts(self, params) -> Dict[str, Any]:
        return {
            "period": self.live.period,
            "counts": self.live.counts(),
            "alive": self.live.alive_count(),
        }

    def _query_fractions(self, params) -> Dict[str, Any]:
        return {
            "period": self.live.period,
            "fractions": self.live.fractions(),
            "alive": self.live.alive_count(),
        }

    def _query_equilibrium(self, params) -> Dict[str, Any]:
        """Distance of the live census from the analytic equilibrium."""
        expected = self.live.equilibrium_fractions()
        observed = self.live.fractions()
        result: Dict[str, Any] = {
            "period": self.live.period,
            "fractions": observed,
            "expected": expected,
        }
        if expected is None:
            result["max_abs_error"] = None
        else:
            result["max_abs_error"] = max(
                abs(observed[s] - expected.get(s, 0.0)) for s in observed
            )
        return result

    def _query_majority(self, params) -> Dict[str, Any]:
        """Current dominant state and its margin (LV-style accuracy)."""
        counts = self.live.counts()
        alive = self.live.alive_count()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        top_state, top = ranked[0]
        second = ranked[1][1] if len(ranked) > 1 else 0
        return {
            "period": self.live.period,
            "leader": top_state,
            "count": top,
            "margin": (top - second) / alive if alive else 0.0,
            "strict_majority": bool(alive and top * 2 > alive),
        }

    def _query_convergence(self, params) -> Dict[str, Any]:
        """Has the census settled over the recent history window?"""
        window = int(params.get("window", self.history_window))
        tol = float(params.get("tol", 0.02))
        rows = [r for r in list(self.history)[-window:] if r.alive > 0]
        if len(rows) < 2:
            return {
                "period": self.live.period,
                "window": len(rows),
                "max_delta_fraction": None,
                "settled": False,
            }
        per_state = zip(*(
            tuple(c / row.alive for c in row.counts) for row in rows
        ))
        max_delta = max(max(vals) - min(vals) for vals in per_state)
        return {
            "period": self.live.period,
            "window": len(rows),
            "max_delta_fraction": max_delta,
            "settled": max_delta <= tol,
        }
