"""The asyncio shell around :class:`~repro.service.core.ServiceCore`.

:class:`ProtocolService` owns the tick loop: every ``tick_seconds`` of
clock time (wall or virtual) it advances the population by
``periods_per_tick`` protocol periods.  Because the core is
synchronous and the loop is single-threaded, every mutation and every
query is atomic with respect to each other -- concurrent clients can
never observe a half-applied event, which is the query-snapshot
consistency property the hypothesis suite hammers on.

The TCP endpoint speaks newline-delimited JSON, one request per line:

    {"op": "query", "q": "counts"}
    {"op": "event", "kind": "fail", "data": {"fraction": 0.2}}
    {"op": "what-if", "trials": 8, "periods": 200, "seed": 7}
    {"op": "stop"}

Responses mirror the shape: ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": "..."}``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..experiment.experiment import Experiment
from .clock import WallClock
from .core import ServiceCore


@dataclass(frozen=True)
class ScriptedEvent:
    """A membership event scheduled at a protocol period."""

    at_period: int
    kind: str
    data: Dict[str, Any]

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScriptedEvent":
        extra = {
            k: v for k, v in payload.items()
            if k not in ("at_period", "kind", "data")
        }
        data = dict(payload.get("data", {}))
        data.update(extra)  # allow flat {"at_period": 5, "kind": ..., ...}
        return cls(
            at_period=int(payload["at_period"]),
            kind=str(payload["kind"]),
            data=data,
        )


class ProtocolService:
    """Drive a service core on a clock, serving concurrent callers."""

    def __init__(
        self,
        core: ServiceCore,
        *,
        clock=None,
        tick_seconds: float = 1.0,
        periods_per_tick: int = 1,
        script: Sequence[ScriptedEvent] = (),
        max_periods: Optional[int] = None,
    ):
        if tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be > 0, got {tick_seconds}")
        if periods_per_tick < 1:
            raise ValueError(
                f"periods_per_tick must be >= 1, got {periods_per_tick}"
            )
        self.core = core
        self.clock = clock if clock is not None else WallClock()
        self.tick_seconds = float(tick_seconds)
        self.periods_per_tick = int(periods_per_tick)
        self.script: List[ScriptedEvent] = sorted(
            script, key=lambda ev: ev.at_period
        )
        self._script_index = 0
        self.max_periods = max_periods
        self._task: Optional[asyncio.Task] = None
        self._stop: Optional[asyncio.Event] = None
        self.finished: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("service already started")
        self._stop = asyncio.Event()
        self.finished = asyncio.Event()
        self.core.start()
        self._apply_due_script()
        self._task = asyncio.create_task(self._run(), name="protocol-ticks")

    async def _run(self) -> None:
        try:
            while not self._stop.is_set():
                if await self._sleep_or_stop(self.tick_seconds):
                    break
                self.core.tick(self.periods_per_tick)
                self._apply_due_script()
                if (
                    self.max_periods is not None
                    and self.core.live.period >= self.max_periods
                ):
                    break
        finally:
            self.finished.set()

    async def _sleep_or_stop(self, delay: float) -> bool:
        """Sleep on the service clock; True if stop arrived first."""
        sleeper = asyncio.ensure_future(self.clock.sleep(delay))
        stopper = asyncio.ensure_future(self._stop.wait())
        done, pending = await asyncio.wait(
            (sleeper, stopper), return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        return stopper in done

    def _apply_due_script(self) -> None:
        while (
            self._script_index < len(self.script)
            and self.script[self._script_index].at_period
            <= self.core.live.period
        ):
            event = self.script[self._script_index]
            self._script_index += 1
            self.core.apply_event(event.kind, event.data)

    async def stop(self, *, close: bool = True) -> None:
        """Halt the tick loop; optionally log an orderly close.

        Idempotent and safe to call concurrently (signal handler plus
        main coroutine): the first caller through joins the tick task
        and closes the core; later callers find nothing left to do.
        """
        if self._stop is None:
            return
        self._stop.set()
        await self.finished.wait()
        task, self._task = self._task, None
        if task is not None:
            await asyncio.gather(task, return_exceptions=True)
        if close and self.core.started and not self.core.closed:
            self.core.close()

    async def run_to_completion(self) -> None:
        """Wait for the loop to end on its own (``max_periods``)."""
        await self.finished.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Client surface (atomic: the core runs inside the event loop)
    # ------------------------------------------------------------------
    async def submit(self, kind: str, data: Mapping[str, Any]) -> Dict[str, Any]:
        return self.core.apply_event(kind, data).to_dict()

    async def query(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        return self.core.query(op, params)

    async def what_if(
        self,
        *,
        trials: int,
        periods: int,
        seed: Optional[int] = None,
        workers: int = 1,
        backend: str = "pool",
    ) -> Dict[str, Any]:
        """Fork a batch ensemble off the live state and summarize it.

        The fork recipe is captured synchronously (one consistent
        census); the ensemble then runs in a worker thread through the
        ordinary exec fan-out, so long what-ifs do not stall ticks.
        """
        forked_at = self.core.live.period
        experiment = Experiment.from_live(
            self.core.live, trials=trials, periods=periods, seed=seed,
            workers=workers, backend=backend,
        )
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(None, experiment.run)
        return {
            "forked_at_period": forked_at,
            "trials": trials,
            "periods": periods,
            "n": experiment.n,
            "mean_final_counts": result.mean_final_counts(),
            "summary": result.summary(),
        }


# ----------------------------------------------------------------------
# Newline-JSON TCP endpoint
# ----------------------------------------------------------------------
async def _handle_client(
    service: ProtocolService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                response = {
                    "ok": True,
                    "result": await _dispatch(service, request),
                }
            except Exception as exc:  # protocol surface: report, don't die
                response = {"ok": False, "error": str(exc)}
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
            if response.get("result") == "stopping":
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _dispatch(service: ProtocolService, request: Any) -> Any:
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    op = request.get("op")
    if op == "query":
        return await service.query(request["q"], request.get("params"))
    if op == "event":
        return await service.submit(request["kind"], request.get("data", {}))
    if op == "what-if":
        return await service.what_if(
            trials=int(request.get("trials", 4)),
            periods=int(request.get("periods", 100)),
            seed=request.get("seed"),
            workers=int(request.get("workers", 1)),
            backend=str(request.get("backend", "pool")),
        )
    if op == "stop":
        # Stop after this response is flushed: the handler sees the
        # sentinel and closes; the caller awaits the service's end.
        asyncio.get_running_loop().call_soon(
            lambda: asyncio.ensure_future(service.stop())
        )
        return "stopping"
    raise ValueError(f"unknown op {op!r}")


async def serve_tcp(
    service: ProtocolService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose a service over newline-JSON TCP; port 0 = ephemeral."""
    return await asyncio.start_server(
        lambda r, w: _handle_client(service, r, w), host, port
    )


class ServiceClient:
    """Minimal line-JSON client for tests and the CLI smoke."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, payload: Dict[str, Any]) -> Any:
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(f"service error: {response.get('error')}")
        return response["result"]

    async def query(
        self, q: str, params: Optional[Dict[str, Any]] = None
    ) -> Any:
        return await self.request({"op": "query", "q": q, "params": params})

    async def event(self, kind: str, data: Optional[Dict[str, Any]] = None) -> Any:
        return await self.request({"op": "event", "kind": kind, "data": data or {}})

    async def what_if(self, **kwargs) -> Any:
        return await self.request({"op": "what-if", **kwargs})

    async def stop(self) -> Any:
        return await self.request({"op": "stop"})

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
