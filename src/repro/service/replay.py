"""Replay a live-service event log and verify bit-identity.

The contract (docs/service.md): a service directory -- event log plus
optional snapshots -- fully determines the state stream.  Replay
rebuilds the population either from the ``init`` record (genesis) or
from the latest intact snapshot, re-applies every subsequent logged
event through the same :class:`~repro.service.core.ServiceCore` code,
and compares each record it *would* log against the record the
original run *did* log.  Any divergence -- a census off by one, a
different fault victim, drifted protocol code -- surfaces as a
:class:`ReplayMismatch` naming the seq where histories fork.

Verification is strict equality, not statistics: the logged censuses
are integer projections of the real state tensors, and the RNG streams
are restored byte for byte, so "close" is indistinguishable from
"wrong".
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..store.eventlog import EVENTS_NAME, LoggedEvent, MemoryEventLog, read_events
from ..store.snapshots import SnapshotError, load_snapshot
from .core import ServiceCore
from .live import LiveConfig, LiveEngine


@dataclass(frozen=True)
class ReplayMismatch:
    """One point where the replayed stream diverges from the log."""

    seq: int
    kind: str
    field_name: str
    logged: Any
    replayed: Any

    def __str__(self) -> str:
        return (
            f"seq {self.seq} ({self.kind}): {self.field_name} "
            f"logged={self.logged!r} replayed={self.replayed!r}"
        )


@dataclass
class ReplayReport:
    """Outcome of a replay: the rebuilt core plus the verification."""

    core: Optional[ServiceCore]
    events: List[LoggedEvent]
    start_seq: int
    replayed: int
    mismatches: List[ReplayMismatch] = field(default_factory=list)
    torn_tail: bool = False
    from_snapshot: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def final_counts(self) -> Optional[Dict[str, int]]:
        if self.core is None:
            return None
        return self.core.live.counts()


def latest_snapshot(
    events: List[LoggedEvent], directory: Path
) -> Optional[Tuple[LoggedEvent, Path]]:
    """The most recent snapshot record whose file is present and intact.

    Walks backwards so a snapshot torn by a crash mid-write (or
    corrupted later) falls through to the previous one -- replay
    prefers an older trusted anchor over a newer broken one.
    """
    for event in reversed(events):
        if event.kind != "snapshot" or not event.data.get("file"):
            continue
        path = directory / event.data["file"]
        if not path.exists():
            continue
        try:
            load_snapshot(path)
        except SnapshotError:
            continue
        return event, path
    return None


def _compare(
    replayed_event: LoggedEvent,
    logged_event: LoggedEvent,
    mismatches: List[ReplayMismatch],
) -> None:
    for field_name in ("seq", "kind", "period"):
        got = getattr(replayed_event, field_name)
        want = getattr(logged_event, field_name)
        if got != want:
            mismatches.append(ReplayMismatch(
                logged_event.seq, logged_event.kind, field_name, want, got,
            ))
    keys = set(replayed_event.data) | set(logged_event.data)
    for key in sorted(keys):
        got = replayed_event.data.get(key)
        want = logged_event.data.get(key)
        if got != want:
            mismatches.append(ReplayMismatch(
                logged_event.seq, logged_event.kind, f"data.{key}",
                want, got,
            ))


def replay_events(
    events: List[LoggedEvent],
    *,
    core: Optional[ServiceCore] = None,
    start_seq: int = 0,
    on_event: Optional[Callable[[ServiceCore, LoggedEvent], None]] = None,
    retain_stream: bool = True,
) -> ReplayReport:
    """Re-apply ``events[start_seq:]`` and verify record-for-record.

    ``core`` carries a snapshot-restored population (its log must be a
    :class:`MemoryEventLog` positioned at ``start_seq``); when None,
    ``events[0]`` must be the ``init`` record and the population is
    rebuilt from genesis.  ``on_event`` runs after each replayed event
    -- the hook tests use to re-issue queries at logged points.
    """
    report = ReplayReport(
        core=core, events=events, start_seq=start_seq, replayed=0,
    )
    for logged in events[start_seq:]:
        if logged.kind == "init":
            if report.core is not None:
                report.mismatches.append(ReplayMismatch(
                    logged.seq, "init", "kind", "init",
                    "second init record",
                ))
                break
            config = LiveConfig.from_dict(logged.data["config"])
            report.core = ServiceCore(
                LiveEngine(config),
                log=MemoryEventLog(),
                retain_stream=retain_stream,
            )
            replayed = report.core.start()
        elif report.core is None:
            report.mismatches.append(ReplayMismatch(
                logged.seq, logged.kind, "kind", "init", logged.kind,
            ))
            break
        elif logged.kind == "tick":
            replayed = report.core.tick(int(logged.data["periods"]))
        elif logged.kind == "snapshot":
            # Nothing to re-execute (checkpoints are pure observers);
            # append verbatim to keep seq alignment with the original.
            replayed = report.core.log.append(
                "snapshot", logged.period, logged.data
            )
        elif logged.kind == "close":
            replayed = report.core.close()
        else:
            data = {
                k: v for k, v in logged.data.items() if k != "effect"
            }
            replayed = report.core.apply_event(logged.kind, data)
        report.replayed += 1
        _compare(replayed, logged, report.mismatches)
        if on_event is not None:
            on_event(report.core, logged)
        if report.mismatches:
            break  # histories forked; further comparison is noise
    return report


def replay_directory(
    directory: os.PathLike,
    *,
    from_snapshot: bool = False,
    tolerate_torn_tail: bool = True,
    on_event: Optional[Callable[[ServiceCore, LoggedEvent], None]] = None,
    retain_stream: bool = True,
) -> ReplayReport:
    """Replay a service directory (``events.jsonl`` + snapshots)."""
    directory = Path(directory)
    events, torn = read_events(
        directory / EVENTS_NAME, tolerate_torn_tail=tolerate_torn_tail
    )
    core: Optional[ServiceCore] = None
    start_seq = 0
    snapshot_name: Optional[str] = None
    if from_snapshot:
        anchor = latest_snapshot(events, directory)
        if anchor is None:
            raise SnapshotError(
                f"{directory}: no intact snapshot to replay from"
            )
        snapshot_event, path = anchor
        arrays, meta = load_snapshot(path)
        # Resume right after the snapshot record itself.
        start_seq = snapshot_event.seq + 1
        core = ServiceCore.from_snapshot(
            arrays, meta,
            log=MemoryEventLog(start_seq=start_seq),
            retain_stream=retain_stream,
        )
        snapshot_name = snapshot_event.data["file"]
    report = replay_events(
        events,
        core=core,
        start_seq=start_seq,
        on_event=on_event,
        retain_stream=retain_stream,
    )
    report.torn_tail = torn
    report.from_snapshot = snapshot_name
    return report
