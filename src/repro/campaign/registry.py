"""Named protocols and failure scenarios for campaign grids.

A campaign references protocols and scenarios by *name* so that specs
are plain data (JSON-serializable, diffable, replayable).  The two
registries below map those names to builders; both can be extended at
runtime with :func:`register_protocol` / :func:`register_scenario`
before a campaign is run.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Tuple, Union

from ..protocols.endemic import EndemicParams, figure1_protocol
from ..protocols.epidemic import pull_protocol, push_protocol, push_pull_protocol
from ..protocols.lv import lv_protocol
from ..runtime.churn import ChurnReplayer, generate_trace
from ..runtime.failures import CrashRecoveryNoise, MassiveFailure
from ..runtime.rng import spawn_seeds
from ..synthesis.protocol import ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiment.protocol import Protocol
    from .grid import CampaignPoint

#: name -> builder(n) -> (spec, initial distribution)
ProtocolBuilder = Callable[[int], Tuple[ProtocolSpec, Mapping[str, float]]]

#: name -> builder(point, trial, seed) -> list of fresh hooks for one trial
ScenarioBuilder = Callable[["CampaignPoint", int, int], List[Callable]]

#: Entropy domain separating scenario streams from protocol streams.
_SCENARIO_DOMAIN = 0x5C3A


def _epidemic_initial(n: int) -> Dict[str, float]:
    # 1% infected: past the knife-edge single-seed regime, so ensemble
    # means track the mean-field trajectory.
    seeds = max(1, n // 100)
    return {"x": n - seeds, "y": seeds}


def _build_epidemic_pull(n: int):
    return pull_protocol(), _epidemic_initial(n)


def _build_epidemic_push(n: int):
    return push_protocol(), _epidemic_initial(n)


def _build_epidemic_push_pull(n: int):
    return push_pull_protocol(), _epidemic_initial(n)


#: The endemic configuration used for campaign cells: equilibrium
#: stash population ~= n/101, stable at a few hundred hosts and up.
_ENDEMIC_PARAMS = EndemicParams(alpha=1e-4, gamma=1e-2, b=2)


def _build_endemic(n: int):
    return figure1_protocol(_ENDEMIC_PARAMS), _ENDEMIC_PARAMS.equilibrium_counts(n)


def _build_lv(n: int):
    zeros = int(0.6 * n)
    return lv_protocol(p=0.01), {"x": zeros, "y": n - zeros, "z": 0}


def _build_lv_close(n: int):
    # The accuracy regime near the saddle (Section 4.2): a 52/48 split,
    # where majority selection is hardest and the w.h.p. guarantee is
    # weakest.  Campaign grids over this entry (large M, trial-axis
    # sharding) are how the fig7/fig8-family accuracy ensembles run at
    # scale on the batch engine.
    zeros = int(round(0.52 * n))
    return lv_protocol(p=0.01), {"x": zeros, "y": n - zeros, "z": 0}


_PROTOCOLS: Dict[str, ProtocolBuilder] = {
    "epidemic-pull": _build_epidemic_pull,
    "epidemic-push": _build_epidemic_push,
    "epidemic-push-pull": _build_epidemic_push_pull,
    "endemic": _build_endemic,
    "lv": _build_lv,
    "lv-close": _build_lv_close,
}


def register_protocol(name: str, builder: ProtocolBuilder) -> None:
    """Register (or replace) a named protocol builder."""
    _PROTOCOLS[name] = builder


def available_protocols() -> List[str]:
    return sorted(_PROTOCOLS)


def protocol_builder(name: str) -> ProtocolBuilder:
    """The raw registered builder behind a protocol name."""
    try:
        return _PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from None


def resolve_protocol(name: Union[str, "Protocol"]) -> "Protocol":
    """Resolve a protocol reference to a :class:`repro.experiment.Protocol`.

    The canonical resolution path: campaigns and the ``run`` CLI hand
    these handles to :class:`~repro.experiment.experiment.Experiment`
    (or call ``handle.resolve(n)``) instead of unpacking raw builder
    tuples.  Accepts, in order of precedence:

    * a ready :class:`~repro.experiment.protocol.Protocol` handle
      (returned unchanged);
    * a registered protocol name;
    * a path to an equations file (``# param:`` directives honored) --
      so campaign grids can sweep equations-file protocols without
      registering them first.
    """
    # Lazy import: repro.experiment.Protocol.named resolves through
    # this registry.
    from ..experiment.protocol import Protocol

    if isinstance(name, Protocol):
        return name
    if name in _PROTOCOLS:
        return Protocol.named(name)
    if Path(name).is_file():
        return Protocol.from_equations(Path(name))
    raise KeyError(
        f"unknown protocol {name!r}: neither a registered name "
        f"(available: {available_protocols()}) nor an equations file"
    )


class ProtocolHandleBuilder:
    """Adapter presenting a :class:`Protocol` handle as a registry builder.

    Campaign grids that carry handle objects register them under their
    label through this wrapper (see ``CampaignSpec.expand``), so points
    stay plain name-referencing data.  Picklability follows the
    handle's resolver: file- and registry-born handles ship to pool
    workers; closure-built ones fall back to the serial path with the
    usual warning.
    """

    def __init__(self, handle: "Protocol"):
        self.handle = handle

    def __call__(self, n: int) -> Tuple[ProtocolSpec, Mapping[str, float]]:
        resolved = self.handle.resolve(n)
        return resolved.spec, resolved.initial


def build_protocol(name: str, n: int) -> Tuple[ProtocolSpec, Mapping[str, float]]:
    """Deprecated: resolve a name to a raw (spec, initial) builder tuple.

    Kept as a shim for pre-facade call sites.  Use
    :func:`resolve_protocol` (a :class:`~repro.experiment.Protocol`
    handle) or :class:`repro.experiment.Experiment` instead.
    """
    warnings.warn(
        "build_protocol() is deprecated; use "
        "repro.campaign.resolve_protocol(name) / "
        "repro.experiment.Protocol.named(name) and .resolve(n) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    resolved = resolve_protocol(name).resolve(n)
    return resolved.spec, resolved.initial


# ----------------------------------------------------------------------
# Failure scenarios
# ----------------------------------------------------------------------
def _scenario_none(point, trial, seed):
    return []


def _scenario_massive_failure(point, trial, seed):
    # Half the hosts crash halfway through the horizon (Figure 5's
    # stress pattern, scaled to the point's horizon).
    return [MassiveFailure(at_period=max(1, point.periods // 2), fraction=0.5)]


def _scenario_crash_recovery(point, trial, seed):
    # Background churn: ~0.2% of hosts crash per period, crashed hosts
    # return at 5% per period (Section 1's crash-recovery model).
    return [CrashRecoveryNoise(crash_rate=0.002, recovery_rate=0.05, seed=seed)]


def _scenario_churn(point, trial, seed):
    # Overnet-calibrated availability trace, 10 periods per hour.
    trace = generate_trace(
        point.n,
        duration_hours=max(1.0, point.periods / 10.0),
        mean_session_hours=2.0,
        seed=seed,
        initial_online_fraction=0.5,
    )
    return [ChurnReplayer(trace, periods_per_hour=10.0)]


_SCENARIOS: Dict[str, ScenarioBuilder] = {
    "none": _scenario_none,
    "massive-failure": _scenario_massive_failure,
    "crash-recovery": _scenario_crash_recovery,
    "churn": _scenario_churn,
}

#: Import-time snapshots.  Worker processes under the ``spawn`` start
#: method re-import this module and get exactly these; any deviation --
#: a new name or a built-in name re-registered to a different builder
#: -- must be shipped over explicitly (see :func:`custom_entries`).
_BUILTIN_PROTOCOLS = dict(_PROTOCOLS)
_BUILTIN_SCENARIOS = dict(_SCENARIOS)


def custom_entries() -> Tuple[
    Dict[str, ProtocolBuilder], Dict[str, ScenarioBuilder]
]:
    """Runtime registrations that differ from the import-time registry.

    Compared by identity, not name, so replacing a built-in builder
    counts as custom and reaches pool workers too.
    """
    return (
        {k: v for k, v in _PROTOCOLS.items()
         if _BUILTIN_PROTOCOLS.get(k) is not v},
        {k: v for k, v in _SCENARIOS.items()
         if _BUILTIN_SCENARIOS.get(k) is not v},
    )


def install_entries(
    protocols: Dict[str, ProtocolBuilder],
    scenarios: Dict[str, ScenarioBuilder],
) -> None:
    """Re-register custom builders (worker-process initializer)."""
    _PROTOCOLS.update(protocols)
    _SCENARIOS.update(scenarios)


def register_scenario(name: str, builder: ScenarioBuilder) -> None:
    """Register (or replace) a named failure scenario."""
    _SCENARIOS[name] = builder


def available_scenarios() -> List[str]:
    return sorted(_SCENARIOS)


def scenario_builder(name: str) -> ScenarioBuilder:
    """The raw registered builder behind a scenario name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; "
            f"available: {available_scenarios()}"
        ) from None


def scenario_seeds(seed: int, trials: int) -> List[int]:
    """The per-trial scenario seed family for a run rooted at ``seed``.

    Scenario randomness draws from a seed family domain-separated from
    the engine's protocol streams, so adding or changing a scenario
    never perturbs the protocol's own sampling sequence.  Campaigns and
    :class:`repro.experiment.Scenario` share this family, so an
    experiment and a campaign point with the same parameters inject
    identical faults.
    """
    return spawn_seeds((seed, _SCENARIO_DOMAIN), trials)


def scenario_hook_factory(point: "CampaignPoint") -> Callable[[int], List[Callable]]:
    """A per-trial hook factory for the point's scenario."""
    builder = scenario_builder(point.scenario)
    seeds = scenario_seeds(point.seed, point.trials)

    def factory(trial: int) -> List[Callable]:
        return builder(point, trial, seeds[trial])

    return factory
