"""Declarative experiment campaigns over protocol ensembles.

The paper's evaluation is a *grid* of experiments -- protocol x group
size x loss rate x failure scenario, each repeated over many trials --
and the repository's benches each hand-roll one cell of that grid.
This package makes the grid a first-class object:

* :mod:`~repro.campaign.grid` -- :class:`CampaignSpec` (the declarative
  grid) expands to :class:`CampaignPoint` parameter points, each with a
  deterministic spawned seed; specs and results round-trip through
  JSON.
* :mod:`~repro.campaign.registry` -- named protocol builders (epidemic
  pull/push/push-pull, endemic replication, LV majority) and failure
  scenarios (massive failure, crash-recovery noise, Overnet-style
  churn) that campaigns reference by name; both registries are
  extensible at runtime.
* :mod:`~repro.campaign.runner` -- executes each point on a
  :class:`~repro.runtime.batch_engine.BatchRoundEngine` ensemble, fans
  points out across worker processes, and records every seed so any
  point can be replayed bit-for-bit later.

Command line::

    python -m repro campaign --protocol lv --n 1000 --n 4000 \
        --scenario none --scenario massive-failure \
        --trials 16 --periods 500 --out results.json
    python -m repro campaign --config campaign.json --workers 4
    python -m repro campaign --dry-run        # print the expanded grid
    python -m repro campaign --replay results.json
"""

from .grid import CampaignPoint, CampaignSpec
from .registry import (
    available_protocols,
    available_scenarios,
    build_protocol,
    protocol_builder,
    register_protocol,
    register_scenario,
    resolve_protocol,
    scenario_builder,
    scenario_hook_factory,
    scenario_seeds,
)
from .runner import (
    MANIFEST_NAME,
    CampaignResult,
    PointResult,
    load_manifest,
    replay_point,
    run_campaign,
    run_point,
    verify_replay,
)

__all__ = [
    "CampaignSpec",
    "CampaignPoint",
    "CampaignResult",
    "PointResult",
    "run_campaign",
    "run_point",
    "replay_point",
    "verify_replay",
    "load_manifest",
    "MANIFEST_NAME",
    "build_protocol",
    "resolve_protocol",
    "protocol_builder",
    "register_protocol",
    "register_scenario",
    "scenario_builder",
    "scenario_hook_factory",
    "scenario_seeds",
    "available_protocols",
    "available_scenarios",
]
