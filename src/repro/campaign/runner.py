"""Campaign execution: batch-engine ensembles, fan-out, and replay.

Each :class:`~repro.campaign.grid.CampaignPoint` runs as one
:class:`~repro.runtime.batch_engine.BatchRoundEngine` ensemble (the
trial axis is vectorized); independent points fan out across worker
processes with :mod:`multiprocessing`.  Results carry every seed that
produced them, so :func:`replay_point` can re-run any point and
:func:`verify_replay` can check a stored result file bit-for-bit.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..runtime.batch_engine import BatchMetricsRecorder, BatchRoundEngine
from .grid import CampaignPoint, CampaignSpec
from .registry import (
    build_protocol,
    custom_entries,
    install_entries,
    scenario_hook_factory,
)

#: Quantiles reported in point summaries.
SUMMARY_QUANTILES = (0.25, 0.5, 0.75)


@dataclass
class PointResult:
    """Outcome of one campaign point: summaries plus replay provenance."""

    point: CampaignPoint
    states: List[str]
    trial_seeds: List[int]
    final_counts: Dict[str, List[int]]
    summary: Dict[str, Dict[str, float]]
    mean_trajectory: Dict[str, List[float]]
    recorded_periods: List[int]
    mean_alive: List[float]
    elapsed_seconds: float

    def to_dict(self) -> Dict:
        return {
            "point": self.point.to_dict(),
            "states": list(self.states),
            "trial_seeds": list(self.trial_seeds),
            "final_counts": self.final_counts,
            "summary": self.summary,
            "mean_trajectory": self.mean_trajectory,
            "recorded_periods": list(self.recorded_periods),
            "mean_alive": list(self.mean_alive),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PointResult":
        return cls(
            point=CampaignPoint.from_dict(data["point"]),
            states=list(data["states"]),
            trial_seeds=list(data["trial_seeds"]),
            final_counts={k: list(v) for k, v in data["final_counts"].items()},
            summary={
                k: {kk: float(vv) for kk, vv in v.items()}
                for k, v in data["summary"].items()
            },
            mean_trajectory={
                k: list(v) for k, v in data["mean_trajectory"].items()
            },
            recorded_periods=list(data["recorded_periods"]),
            mean_alive=list(data["mean_alive"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
        )


@dataclass
class CampaignResult:
    """All point results of a campaign, JSON round-trippable."""

    spec: CampaignSpec
    results: List[PointResult] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.to_dict(),
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignResult":
        return cls(
            spec=CampaignSpec.from_dict(data["spec"]),
            results=[PointResult.from_dict(r) for r in data["results"]],
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))


def _make_engine(point: CampaignPoint) -> BatchRoundEngine:
    spec, initial = build_protocol(point.protocol, point.n)
    return BatchRoundEngine(
        spec,
        n=point.n,
        trials=point.trials,
        initial=initial,
        seed=point.seed,
        connection_failure_rate=point.loss_rate,
        mode=point.mode,
    )


def _composite_hook_factory(point: CampaignPoint) -> Callable[[int], Callable]:
    per_trial = scenario_hook_factory(point)

    def factory(trial: int) -> Callable:
        hooks = per_trial(trial)

        def composite(view) -> None:
            for hook in hooks:
                hook(view)

        return composite

    return factory


def _run_ensemble(
    point: CampaignPoint,
) -> Tuple[BatchRoundEngine, BatchMetricsRecorder]:
    """Build and run one point's ensemble.

    The single execution path shared by :func:`run_point` and
    :func:`replay_point`: the replay guarantee holds only while both go
    through the exact same engine/recorder/hook construction.
    """
    engine = _make_engine(point)
    recorder = BatchMetricsRecorder(
        engine.state_names, point.trials,
        track_transitions=False, stride=point.stride,
    )
    engine.run(
        point.periods, recorder=recorder,
        hook_factories=[_composite_hook_factory(point)],
    )
    return engine, recorder


def run_point(point: CampaignPoint) -> PointResult:
    """Execute one campaign point as a batched ensemble."""
    started = time.perf_counter()
    engine, recorder = _run_ensemble(point)
    elapsed = time.perf_counter() - started

    final = engine.counts_matrix()
    summary: Dict[str, Dict[str, float]] = {}
    final_counts: Dict[str, List[int]] = {}
    mean_trajectory: Dict[str, List[float]] = {}
    for index, state in enumerate(engine.state_names):
        series = final[:, index]
        stats = {
            "mean": float(series.mean()),
            "std": float(series.std()),
            "min": float(series.min()),
            "max": float(series.max()),
        }
        for q, value in zip(
            SUMMARY_QUANTILES, np.quantile(series, SUMMARY_QUANTILES)
        ):
            stats[f"q{int(q * 100)}"] = float(value)
        summary[state] = stats
        final_counts[state] = [int(v) for v in series]
        mean_trajectory[state] = [
            float(v) for v in recorder.mean_counts(state)
        ]
    return PointResult(
        point=point,
        states=list(engine.state_names),
        trial_seeds=list(engine.trial_seeds),
        final_counts=final_counts,
        summary=summary,
        mean_trajectory=mean_trajectory,
        recorded_periods=[int(t) for t in recorder.times],
        mean_alive=[float(v) for v in recorder.mean_alive()],
        elapsed_seconds=elapsed,
    )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    progress: Optional[Callable[[PointResult], None]] = None,
) -> CampaignResult:
    """Run every point of the campaign grid.

    ``workers > 1`` fans the parameter points out across that many
    processes (each point's trial axis is already vectorized, so the
    pool parallelizes the *grid*, not the trials).  Results are
    returned in grid order regardless of completion order.
    """
    points = spec.expand()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    fan_out = workers > 1 and len(points) > 1
    if fan_out:
        # Worker processes under the spawn start method (macOS/Windows
        # default) re-import the registry and see only the built-ins,
        # so runtime-registered builders must ride along and be
        # re-installed by the pool initializer.  Only builders this
        # campaign actually references are shipped; ones that cannot
        # cross a process boundary (closures, lambdas) force a serial
        # run -- with a warning -- rather than a KeyError inside the
        # workers.
        extra_protocols, extra_scenarios = custom_entries()
        used_protocols = {p.protocol for p in points}
        used_scenarios = {p.scenario for p in points}
        extra = (
            {k: v for k, v in extra_protocols.items()
             if k in used_protocols},
            {k: v for k, v in extra_scenarios.items()
             if k in used_scenarios},
        )
        try:
            pickle.dumps(extra)
        except Exception:
            warnings.warn(
                "campaign references runtime-registered builders that "
                "cannot be pickled to worker processes; running the "
                f"{len(points)}-point grid serially instead of on "
                f"{workers} workers",
                RuntimeWarning,
                stacklevel=2,
            )
            fan_out = False

    if not fan_out:
        results = []
        for point in points:
            result = run_point(point)
            if progress is not None:
                progress(result)
            results.append(result)
        return CampaignResult(spec=spec, results=results)

    with multiprocessing.Pool(
        processes=min(workers, len(points)),
        initializer=install_entries, initargs=extra,
    ) as pool:
        indexed: Dict[int, PointResult] = {}
        jobs = pool.imap_unordered(
            _run_indexed, list(enumerate(points))
        )
        for index, result in jobs:
            indexed[index] = result
            if progress is not None:
                progress(result)
    results = [indexed[i] for i in range(len(points))]
    return CampaignResult(spec=spec, results=results)


def _run_indexed(indexed_point):
    index, point = indexed_point
    return index, run_point(point)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay_point(point: CampaignPoint) -> np.ndarray:
    """Re-run a point and return its full ``(M, periods, S)`` count tensor.

    Campaign seeds are recorded in specs and results, so the same point
    always reproduces the same tensor (same numpy version and mode).
    """
    _, recorder = _run_ensemble(point)
    return recorder.count_tensor()


def verify_replay(result: PointResult) -> bool:
    """Re-run a recorded point and check it reproduces the stored result."""
    rerun = run_point(result.point)
    if rerun.trial_seeds != result.trial_seeds:
        return False
    for state in result.states:
        if rerun.final_counts[state] != result.final_counts[state]:
            return False
        if rerun.mean_trajectory[state] != result.mean_trajectory[state]:
            return False
    return True
