"""Campaign execution: batch-engine ensembles, fan-out, and replay.

Each :class:`~repro.campaign.grid.CampaignPoint` runs as one
:class:`~repro.runtime.batch_engine.BatchRoundEngine` ensemble (the
trial axis is vectorized).  Two axes of process-level parallelism
compose on top:

* independent grid *points* fan out across worker processes;
* a single point with ``shards > 1`` splits its trial axis into that
  many independently seeded sub-ensembles (shard seeds spawned from
  ``(point.seed, shard domain)``), which fan out across the same pool
  -- the ROADMAP's "very large M" case, where one point is the whole
  campaign.

Sharded or not, a point's result is assembled with integer-exact
arithmetic (count sums, not means of means), so serial runs, pooled
runs and replays of the same point agree bit for bit.  Results carry
every seed that produced them, so :func:`replay_point` can re-run any
point and :func:`verify_replay` can check a stored result file
bit-for-bit.  ``save_tensors`` additionally persists each point's full
``(M, periods, states)`` count tensor as a compressed ``.npz`` for
offline analysis.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..experiment.scenario import Scenario
from ..runtime.batch_engine import BatchMetricsRecorder, BatchRoundEngine
from ..runtime.exec import (
    ExecutionPlan,
    FaultPolicy,
    UnitFailure,
    WorkUnit,
    run_plan,
)
from ..runtime.parallel import shard_layout
from .grid import CampaignPoint, CampaignSpec
from .registry import custom_entries, install_entries, resolve_protocol

#: Quantiles reported in point summaries.
SUMMARY_QUANTILES = (0.25, 0.5, 0.75)


@dataclass
class PointResult:
    """Outcome of one campaign point: summaries plus replay provenance."""

    point: CampaignPoint
    states: List[str]
    trial_seeds: List[int]
    final_counts: Dict[str, List[int]]
    summary: Dict[str, Dict[str, float]]
    mean_trajectory: Dict[str, List[float]]
    recorded_periods: List[int]
    mean_alive: List[float]
    #: Aggregate compute time over the point's shards.  For an
    #: unsharded point this is the point's wall clock; with shards
    #: fanned out across workers it exceeds the wall time (it is the
    #: CPU-seconds the point cost, not how long you waited).
    elapsed_seconds: float
    #: Set when the campaign ran with ``save_tensors``: file name of the
    #: compressed full count tensor, relative to the tensors directory.
    tensor_path: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "point": self.point.to_dict(),
            "states": list(self.states),
            "trial_seeds": list(self.trial_seeds),
            "final_counts": self.final_counts,
            "summary": self.summary,
            "mean_trajectory": self.mean_trajectory,
            "recorded_periods": list(self.recorded_periods),
            "mean_alive": list(self.mean_alive),
            "elapsed_seconds": self.elapsed_seconds,
            "tensor_path": self.tensor_path,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PointResult":
        return cls(
            point=CampaignPoint.from_dict(data["point"]),
            states=list(data["states"]),
            trial_seeds=list(data["trial_seeds"]),
            final_counts={k: list(v) for k, v in data["final_counts"].items()},
            summary={
                k: {kk: float(vv) for kk, vv in v.items()}
                for k, v in data["summary"].items()
            },
            mean_trajectory={
                k: list(v) for k, v in data["mean_trajectory"].items()
            },
            recorded_periods=list(data["recorded_periods"]),
            mean_alive=list(data["mean_alive"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            tensor_path=data.get("tensor_path"),
        )


@dataclass
class CampaignResult:
    """All point results of a campaign, JSON round-trippable.

    ``results`` holds the completed points in grid order.  Under a
    skipping fault policy (``FaultPolicy(on_error="skip")``) points
    whose units failed terminally are *absent* from ``results`` and
    recorded on :attr:`failures` instead -- partial results with the
    losses named, never silently shortened.
    """

    spec: CampaignSpec
    results: List[PointResult] = field(default_factory=list)
    #: Terminal unit failures (as dicts: index, label, error,
    #: traceback, attempts) recorded by a skipping fault policy.
    failures: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.to_dict(),
            "results": [r.to_dict() for r in self.results],
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignResult":
        return cls(
            spec=CampaignSpec.from_dict(data["spec"]),
            results=[PointResult.from_dict(r) for r in data["results"]],
            failures=list(data.get("failures", [])),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))


def _make_engine(point: CampaignPoint) -> BatchRoundEngine:
    resolved = resolve_protocol(point.protocol).resolve(point.n)
    return BatchRoundEngine(
        resolved.spec,
        n=point.n,
        trials=point.trials,
        initial=resolved.initial,
        seed=point.seed,
        connection_failure_rate=point.loss_rate,
        mode=point.mode,
    )


def _composite_hook_factory(point: CampaignPoint) -> Callable[[int], Callable]:
    # A CampaignPoint duck-types the experiment facade's RunContext, so
    # the campaign layer shares the Scenario contract (and its
    # domain-separated seed family) with repro.experiment.
    return Scenario.named(point.scenario).hook_factory(point)


def _shard_points(point: CampaignPoint) -> List[CampaignPoint]:
    """Split a point's trial axis into independently seeded shards.

    Each shard is a plain single-shard point with its own seed and an
    even slice of the trials, so it can run anywhere :func:`run_point`
    runs.  The decomposition is :func:`repro.runtime.parallel.shard_layout`
    -- the same ``(seed, SHARD_DOMAIN)``-spawned discipline the
    engine-level :class:`~repro.runtime.parallel.ShardedBatchExecutor`
    uses -- and depends only on the point, which is what makes sharded
    runs replayable.
    """
    if point.shards <= 1:
        return [point]
    return [
        replace(point, trials=size, seed=shard_seed, shards=1)
        for size, shard_seed in shard_layout(
            point.seed, point.trials, point.shards
        )
    ]


@dataclass
class _ShardOutput:
    """One shard's raw outcome, in merge-exact (integer) form."""

    states: List[str]
    trial_seeds: List[int]
    final_counts: np.ndarray       # (M_shard, S) int64
    count_sums: np.ndarray         # (periods, S) int64, summed over trials
    alive_sums: np.ndarray         # (periods,) int64
    recorded_periods: List[int]
    elapsed_seconds: float
    tensor: Optional[np.ndarray]   # (M_shard, periods, S) when requested
    total_messages: np.ndarray     # (M_shard,) int64 per-trial totals


def _run_shard(
    shard: CampaignPoint, want_tensor: bool = False
) -> _ShardOutput:
    """Build and run one (sub-)point's ensemble.

    The single execution path behind :func:`run_point`,
    :func:`replay_point` and the pool workers: the replay guarantee
    holds only while all of them go through the exact same
    engine/recorder/hook construction.
    """
    started = time.perf_counter()
    engine = _make_engine(shard)
    recorder = BatchMetricsRecorder(
        engine.state_names, shard.trials,
        track_transitions=False, stride=shard.stride,
    )
    engine.run(
        shard.periods, recorder=recorder,
        hook_factories=[_composite_hook_factory(shard)],
    )
    tensor = recorder.count_tensor()
    return _ShardOutput(
        states=list(engine.state_names),
        trial_seeds=list(engine.trial_seeds),
        final_counts=engine.counts_matrix(),
        count_sums=tensor.sum(axis=0),
        alive_sums=recorder.alive_tensor().sum(axis=0),
        recorded_periods=[int(t) for t in recorder.times],
        elapsed_seconds=time.perf_counter() - started,
        tensor=tensor if want_tensor else None,
        total_messages=np.asarray(engine.total_messages, dtype=np.int64),
    )


def _merge_shards(
    point: CampaignPoint, outputs: List[_ShardOutput]
) -> PointResult:
    """Assemble a point result from its shard outputs.

    All reductions are integer sums divided once at the end, so the
    result is bitwise independent of how the trials were sharded across
    processes -- a serial run, a pooled run and a replay of the same
    point always produce the same numbers.
    """
    first = outputs[0]
    for output in outputs[1:]:
        if output.recorded_periods != first.recorded_periods:
            raise AssertionError("shards disagree on recording schedule")
    states = first.states
    total_trials = sum(len(o.trial_seeds) for o in outputs)
    finals = np.concatenate([o.final_counts for o in outputs], axis=0)
    count_sums = sum(o.count_sums for o in outputs)
    alive_sums = sum(o.alive_sums for o in outputs)
    summary: Dict[str, Dict[str, float]] = {}
    final_counts: Dict[str, List[int]] = {}
    mean_trajectory: Dict[str, List[float]] = {}
    for index, state in enumerate(states):
        series = finals[:, index]
        stats = {
            "mean": float(series.mean()),
            "std": float(series.std()),
            "min": float(series.min()),
            "max": float(series.max()),
        }
        for q, value in zip(
            SUMMARY_QUANTILES, np.quantile(series, SUMMARY_QUANTILES)
        ):
            stats[f"q{int(q * 100)}"] = float(value)
        summary[state] = stats
        final_counts[state] = [int(v) for v in series]
        mean_trajectory[state] = [
            float(v) for v in count_sums[:, index] / total_trials
        ]
    return PointResult(
        point=point,
        states=states,
        trial_seeds=[s for o in outputs for s in o.trial_seeds],
        final_counts=final_counts,
        summary=summary,
        mean_trajectory=mean_trajectory,
        recorded_periods=list(first.recorded_periods),
        mean_alive=[float(v) for v in alive_sums / total_trials],
        elapsed_seconds=sum(o.elapsed_seconds for o in outputs),
    )


def run_point(point: CampaignPoint) -> PointResult:
    """Execute one campaign point (all of its shards, in this process)."""
    return _merge_shards(
        point, [_run_shard(shard) for shard in _shard_points(point)]
    )


def _tensor_file_name(spec_name: str, index: int) -> str:
    safe = "".join(
        c if c.isalnum() or c in "-_" else "-" for c in spec_name
    ) or "campaign"
    return f"{safe}-point{index:03d}.npz"


def _save_tensor(
    directory: Path,
    spec_name: str,
    index: int,
    result: PointResult,
    tensor: np.ndarray,
    total_messages: np.ndarray,
) -> str:
    """Persist one point's full count tensor as a compressed ``.npz``.

    Layout: ``counts`` is the ``(M, periods, S)`` tensor in
    ``trial_seeds`` order, ``periods``/``states``/``trial_seeds`` label
    its axes, ``total_messages`` holds the engine's per-trial message
    totals (same trial order; the static complexity model cross-checks
    against it), and ``point_json`` carries the producing point for
    provenance (``json.loads(str(...))`` round-trips it).

    Written atomically (tmp + rename): a crash mid-write can never
    leave a truncated ``.npz`` that a later ``--resume`` would trust.
    """
    name = _tensor_file_name(spec_name, index)
    tmp = directory / (name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez_compressed(
            handle,
            counts=tensor,
            periods=np.asarray(result.recorded_periods, dtype=np.int64),
            states=np.asarray(result.states),
            trial_seeds=np.asarray(result.trial_seeds, dtype=np.uint64),
            total_messages=np.asarray(total_messages, dtype=np.int64),
            point_json=np.asarray(json.dumps(result.point.to_dict())),
        )
    os.replace(tmp, directory / name)
    return name


#: File name of the campaign-level index written next to the tensors.
MANIFEST_NAME = "manifest.json"


def _created_stamp() -> str:
    """The manifest's creation time (``SOURCE_DATE_EPOCH`` pins it)."""
    epoch = os.environ.get("SOURCE_DATE_EPOCH")
    if epoch is not None:
        return datetime.datetime.fromtimestamp(
            int(epoch), tz=datetime.timezone.utc
        ).isoformat()
    return datetime.datetime.now(tz=datetime.timezone.utc).isoformat()


def _write_json_atomic(path: Path, data: Dict) -> None:
    """Write JSON via tmp + rename, so readers never see a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=2))
    os.replace(tmp, path)


def _pending_entry(index: int, point: CampaignPoint) -> Dict:
    """A planned-but-not-finished point's manifest entry."""
    return {
        "index": index,
        "label": point.label,
        "point": point.to_dict(),
        "status": "pending",
    }


def _done_entry(index: int, result: PointResult) -> Dict:
    """A completed point's manifest entry.

    Keeps the legacy top-level keys (``tensor``, ``states``,
    ``trial_seeds``, ...) for offline consumers, and additionally
    embeds the full :meth:`PointResult.to_dict` so ``--resume`` can
    restore the point without re-running it.
    """
    return {
        "index": index,
        "label": result.point.label,
        "point": result.point.to_dict(),
        "status": "done",
        "tensor": result.tensor_path,
        "states": list(result.states),
        "trial_seeds": list(result.trial_seeds),
        "recorded_periods": list(result.recorded_periods),
        "elapsed_seconds": result.elapsed_seconds,
        "result": result.to_dict(),
    }


def _manifest_data(spec: CampaignSpec, entries: List[Dict]) -> Dict:
    """The campaign-level manifest: one entry per planned point.

    One file indexes every point of the campaign -- its parameters,
    completion status, seeds, tensor file and summary provenance -- so
    offline analysis loads the manifest instead of globbing per-point
    ``.npz`` files, and an interrupted campaign can be resumed from it
    (``complete`` is true only once every point is ``done``).
    ``SOURCE_DATE_EPOCH`` pins the ``created`` stamp for byte-identical
    reruns.
    """
    return {
        "campaign": spec.name,
        "spec": spec.to_dict(),
        "complete": all(
            entry.get("status") == "done" for entry in entries
        ),
        "points": entries,
        "provenance": {
            "created": _created_stamp(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def load_manifest(directory) -> Dict:
    """Read a campaign tensors directory's ``manifest.json``."""
    return json.loads((Path(directory) / MANIFEST_NAME).read_text())


def _restore_completed(
    resume_dir: Path, spec: CampaignSpec, points: List[CampaignPoint]
) -> Dict[int, PointResult]:
    """Load the completed points of a partial campaign manifest.

    Verifies spec identity first: resuming under a different spec
    would splice points from two different campaigns into one result,
    so anything but an exact ``spec.to_dict()`` match is an error.
    Entries count as restorable only when they are ``done``, embed
    their ``result``, match the re-expanded point exactly, and their
    tensor file (when one was recorded) still exists -- anything else
    is simply re-run, which is always correct (points are
    deterministic in their seeds).
    """
    try:
        manifest = load_manifest(resume_dir)
    except FileNotFoundError:
        raise ValueError(
            f"{resume_dir} has no {MANIFEST_NAME}; only campaigns run "
            f"with save_tensors (--save-tensors) are resumable"
        )
    if manifest.get("spec") != spec.to_dict():
        raise ValueError(
            f"resume spec mismatch: the manifest in {resume_dir} was "
            f"written by a different campaign spec; --resume re-runs "
            f"the recorded campaign, it does not reconfigure it"
        )
    restored: Dict[int, PointResult] = {}
    for entry in manifest.get("points", []):
        if entry.get("status") != "done" or "result" not in entry:
            continue
        index = entry.get("index")
        if not isinstance(index, int) or not 0 <= index < len(points):
            continue
        result = PointResult.from_dict(entry["result"])
        if result.point.to_dict() != points[index].to_dict():
            raise ValueError(
                f"resume manifest entry {index} records point "
                f"{result.point.label!r}, but the spec expands to "
                f"{points[index].label!r} there"
            )
        if result.tensor_path is not None and not (
            resume_dir / result.tensor_path
        ).is_file():
            continue
        restored[index] = result
    return restored


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    progress: Optional[Callable[[PointResult], None]] = None,
    save_tensors: Optional[str] = None,
    resume: Optional[str] = None,
    fault_policy: Optional[FaultPolicy] = None,
    backend: str = "pool",
) -> CampaignResult:
    """Run every point of the campaign grid.

    ``workers > 1`` fans work out across that many processes.  The unit
    of fan-out is the *shard*: with ``spec.shards == 1`` (default) that
    is one grid point per job (each point's trial axis is already
    vectorized), and with ``spec.shards > 1`` each point additionally
    splits its trial axis into independently seeded sub-ensembles so a
    small grid with a very large M still fills the pool.  Results are
    returned in grid order, and are bitwise identical however the jobs
    were scheduled (see :func:`_merge_shards`).

    ``save_tensors`` names a directory (created if missing) that
    receives one compressed ``.npz`` per point with the full
    ``(M, periods, states)`` count tensor; each
    :class:`PointResult.tensor_path` records its file, and a
    campaign-level ``manifest.json`` (see :func:`load_manifest`)
    indexes every point's parameters, seeds and tensor path for
    offline analysis.  The manifest doubles as the campaign's
    **checkpoint**: it is written atomically (tmp + rename) before the
    first unit runs and again as every point completes, so a crash or
    kill at any moment leaves a consistent partial manifest naming
    exactly the points that finished.

    ``resume`` names such a directory: completed points are restored
    from the manifest instead of re-run (after verifying the manifest
    was written by this exact spec), and only the missing points
    execute.  Because every point's seeds derive from the spec alone,
    a resumed campaign's results, manifest and tensors are bitwise
    identical to an uninterrupted run's (wall-clock provenance --
    ``elapsed_seconds``, ``created`` -- aside).  ``resume`` implies
    ``save_tensors`` into the same directory.

    ``fault_policy`` governs work-unit faults (default: raise on the
    first failure).  ``on_error="retry"`` re-runs a failed unit's
    exact payload with capped backoff, which cannot perturb seeds or
    merge order; ``on_error="skip"`` isolates terminal failures to
    their point -- the other points complete, the failed ones are
    recorded on :attr:`CampaignResult.failures` and marked ``failed``
    in the manifest (a later ``resume`` re-runs them).

    ``backend`` selects the executor
    (:data:`~repro.runtime.exec.BACKENDS`): ``"pool"`` (default) or
    ``"cluster"`` -- process-isolated socket workers with heartbeats,
    dead-worker re-dispatch and elastic worker counts.  ``backend`` is
    pure scheduling, never part of the campaign's identity: manifests
    and tensors are bitwise identical across backends, so a campaign
    checkpointed on one backend resumes cleanly on the other.  A
    SIGTERM during a cluster run drains in-flight units into the
    checkpoint and raises
    :class:`~repro.runtime.cluster.ClusterDrained`; resume then
    finishes the remaining points.
    """
    points = spec.expand()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    resume_dir: Optional[Path] = None
    if resume is not None:
        resume_dir = Path(resume)
        if save_tensors is None:
            save_tensors = resume
        elif Path(save_tensors).resolve() != resume_dir.resolve():
            raise ValueError(
                "resume and save_tensors must name the same directory "
                "(resume continues the campaign checkpointed there)"
            )
    tensors_dir: Optional[Path] = None
    if save_tensors is not None:
        tensors_dir = Path(save_tensors)
        tensors_dir.mkdir(parents=True, exist_ok=True)
    want_tensor = tensors_dir is not None

    restored: Dict[int, PointResult] = (
        _restore_completed(resume_dir, spec, points)
        if resume_dir is not None else {}
    )

    # The checkpoint state: one manifest entry per planned point,
    # rewritten atomically whenever a point lands.
    entries: List[Dict] = [
        _done_entry(index, restored[index]) if index in restored
        else _pending_entry(index, point)
        for index, point in enumerate(points)
    ]

    def checkpoint() -> None:
        if tensors_dir is not None:
            _write_json_atomic(
                tensors_dir / MANIFEST_NAME, _manifest_data(spec, entries)
            )

    # The campaign as one ExecutionPlan: both parallelism levels --
    # independent grid points, and the trial-axis shards of each point
    # -- flatten into a single work-unit list served by one ``workers``
    # budget, so a small grid holding one huge sharded point fills the
    # same pool a wide grid does.  The decomposition (and every unit's
    # seed) depends only on the spec, never on ``workers`` -- which is
    # what keeps pooled runs bitwise equal to serial ones and replays,
    # and what lets a resume re-run exactly the units of the
    # not-yet-completed points without touching anything else.
    pairs = [
        (
            (point_index, shard_index),
            WorkUnit(
                runner=_run_shard_unit,
                payload=(shard, want_tensor),
                label=f"{point.label} shard {shard_index}",
            ),
        )
        for point_index, point in enumerate(points)
        if point_index not in restored
        for shard_index, shard in enumerate(_shard_points(point))
    ]
    unit_keys = [key for key, _ in pairs]
    units = [unit for _, unit in pairs]

    # Worker processes under the spawn start method (macOS/Windows
    # default) re-import the registry and see only the built-ins, so
    # runtime-registered builders must ride along and be re-installed
    # by the pool initializer.  Only builders this campaign actually
    # references are shipped; ones that cannot cross a process
    # boundary (closures, lambdas) are caught by run_plan's pickle
    # check, which degrades to a warned serial in-process run rather
    # than a KeyError inside the workers.
    extra_protocols, extra_scenarios = custom_entries()
    used_protocols = {p.protocol for p in points}
    used_scenarios = {p.scenario for p in points}
    extra = (
        {k: v for k, v in extra_protocols.items()
         if k in used_protocols},
        {k: v for k, v in extra_scenarios.items()
         if k in used_scenarios},
    )

    # Stream completion: a point is merged, saved, checkpointed and
    # reported as soon as its last shard lands, and its shard outputs
    # (which hold the full tensors when save_tensors is on) are freed
    # immediately -- the plan declares no merge, so the executor never
    # forces the whole campaign resident at once.
    shard_counts: Dict[int, int] = {}
    for point_index, _ in unit_keys:
        shard_counts[point_index] = shard_counts.get(point_index, 0) + 1
    pending: Dict[int, Dict[int, _ShardOutput]] = {}
    results: Dict[int, PointResult] = dict(restored)
    failures_by_point: Dict[int, List[UnitFailure]] = {}

    def complete(unit_index: int, output: _ShardOutput) -> None:
        point_index, shard_index = unit_keys[unit_index]
        bucket = pending.setdefault(point_index, {})
        bucket[shard_index] = output
        if len(bucket) < shard_counts[point_index]:
            return
        shard_outputs = [bucket[k] for k in sorted(bucket)]
        del pending[point_index]
        result = _merge_shards(points[point_index], shard_outputs)
        if tensors_dir is not None:
            tensor = np.concatenate(
                [o.tensor for o in shard_outputs], axis=0
            )
            messages = np.concatenate(
                [o.total_messages for o in shard_outputs]
            )
            result.tensor_path = _save_tensor(
                tensors_dir, spec.name, point_index, result, tensor,
                messages,
            )
        results[point_index] = result
        entries[point_index] = _done_entry(point_index, result)
        checkpoint()
        if progress is not None:
            progress(result)

    def record_failure(failure: UnitFailure) -> None:
        # Only reachable under on_error="skip" (raising policies abort
        # run_plan instead): isolate the loss to its point, persist it,
        # and let every other unit proceed.
        point_index, _ = unit_keys[failure.index]
        bucket = failures_by_point.setdefault(point_index, [])
        bucket.append(failure)
        entries[point_index] = {
            **_pending_entry(point_index, points[point_index]),
            "status": "failed",
            "failures": [f.to_dict() for f in bucket],
        }
        checkpoint()

    checkpoint()
    run_plan(
        ExecutionPlan(
            units=units,
            merge=None,
            label=f"campaign {spec.name!r}",
            initializer=install_entries,
            initargs=extra,
        ),
        workers=workers,
        on_unit=complete,
        fault_policy=fault_policy,
        on_failure=record_failure,
        backend=backend,
    )

    checkpoint()
    ordered = [
        results[i] for i in range(len(points)) if i in results
    ]
    failure_dicts = [
        failure.to_dict()
        for point_index in sorted(failures_by_point)
        for failure in sorted(
            failures_by_point[point_index], key=lambda f: f.index
        )
    ]
    return CampaignResult(
        spec=spec, results=ordered, failures=failure_dicts
    )


def _run_shard_unit(payload):
    shard, want_tensor = payload
    return _run_shard(shard, want_tensor=want_tensor)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay_point(point: CampaignPoint) -> np.ndarray:
    """Re-run a point and return its full ``(M, periods, S)`` count tensor.

    Campaign seeds are recorded in specs and results, so the same point
    always reproduces the same tensor (same numpy version and mode);
    trial rows follow the merged shard order, i.e. the recorded
    ``trial_seeds``.
    """
    return np.concatenate(
        [
            _run_shard(shard, want_tensor=True).tensor
            for shard in _shard_points(point)
        ],
        axis=0,
    )


def verify_replay(result: PointResult) -> bool:
    """Re-run a recorded point and check it reproduces the stored result."""
    rerun = run_point(result.point)
    if rerun.trial_seeds != result.trial_seeds:
        return False
    for state in result.states:
        if rerun.final_counts[state] != result.final_counts[state]:
            return False
        if rerun.mean_trajectory[state] != result.mean_trajectory[state]:
            return False
    return True
