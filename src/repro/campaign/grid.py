"""Campaign grids: declarative specs and their expanded parameter points.

A :class:`CampaignSpec` is plain data -- the cross product of protocol
names, group sizes, connection-loss rates and failure scenarios, plus
the per-point trial count and horizon.  :meth:`CampaignSpec.expand`
produces one :class:`CampaignPoint` per grid cell with a deterministic
seed spawned from the campaign's base seed, so re-expanding the same
spec always yields the same seeds and any point can be replayed later.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from itertools import product
from typing import Dict, List

from ..runtime.rng import spawn_seeds
from .registry import available_protocols, available_scenarios


@dataclass(frozen=True)
class CampaignPoint:
    """One cell of a campaign grid: a fully-determined experiment."""

    protocol: str
    n: int
    loss_rate: float
    scenario: str
    trials: int
    periods: int
    seed: int
    stride: int = 1
    mode: str = "batch"
    #: Trial-axis sharding: the point's M trials split into this many
    #: independently seeded sub-ensembles, which the campaign runner can
    #: fan out across workers.  Part of the point's identity: replays
    #: reproduce a sharded run bit for bit only with the same shard
    #: count (shard seeds are spawned from (seed, shard domain)).
    shards: int = 1

    @property
    def label(self) -> str:
        return (
            f"{self.protocol}/n={self.n}/f={self.loss_rate:g}/{self.scenario}"
        )

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignPoint":
        return cls(**data)


@dataclass
class CampaignSpec:
    """A declarative experiment campaign (the grid, not its results)."""

    name: str = "campaign"
    protocols: List[str] = field(default_factory=lambda: ["epidemic-pull"])
    group_sizes: List[int] = field(default_factory=lambda: [1000])
    loss_rates: List[float] = field(default_factory=lambda: [0.0])
    scenarios: List[str] = field(default_factory=lambda: ["none"])
    trials: int = 16
    periods: int = 200
    base_seed: int = 0
    stride: int = 1
    mode: str = "batch"
    shards: int = 1

    def validate(self) -> None:
        if not self.protocols or not self.group_sizes \
                or not self.loss_rates or not self.scenarios:
            raise ValueError("every grid axis needs at least one value")
        unknown = set(self.protocols) - set(available_protocols())
        if unknown:
            raise ValueError(
                f"unknown protocols {sorted(unknown)}; "
                f"available: {available_protocols()}"
            )
        unknown = set(self.scenarios) - set(available_scenarios())
        if unknown:
            raise ValueError(
                f"unknown scenarios {sorted(unknown)}; "
                f"available: {available_scenarios()}"
            )
        if self.trials < 1 or self.periods < 1:
            raise ValueError("trials and periods must be >= 1")
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        for n in self.group_sizes:
            if n < 2:
                raise ValueError(f"group sizes must be >= 2, got {n}")
        for rate in self.loss_rates:
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"loss rate must lie in [0, 1), got {rate}")
        if self.mode not in ("batch", "lockstep"):
            raise ValueError(f"mode must be 'batch' or 'lockstep', got {self.mode!r}")
        if not 1 <= self.shards <= self.trials:
            raise ValueError(
                f"shards must lie in [1, trials={self.trials}], "
                f"got {self.shards}"
            )

    def expand(self) -> List[CampaignPoint]:
        """The grid cells, each with its spawned deterministic seed."""
        self.validate()
        cells = list(product(
            self.protocols, self.group_sizes, self.loss_rates, self.scenarios
        ))
        seeds = spawn_seeds(self.base_seed, len(cells))
        return [
            CampaignPoint(
                protocol=protocol,
                n=n,
                loss_rate=loss_rate,
                scenario=scenario,
                trials=self.trials,
                periods=self.periods,
                seed=seed,
                stride=self.stride,
                mode=self.mode,
                shards=self.shards,
            )
            for (protocol, n, loss_rate, scenario), seed in zip(cells, seeds)
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))
