"""Campaign grids: declarative specs and their expanded parameter points.

A :class:`CampaignSpec` is plain data -- the cross product of protocol
names, group sizes, connection-loss rates and failure scenarios, plus
the per-point trial count and horizon.  :meth:`CampaignSpec.expand`
produces one :class:`CampaignPoint` per grid cell with a deterministic
seed spawned from the campaign's base seed, so re-expanding the same
spec always yields the same seeds and any point can be replayed later.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, List, TYPE_CHECKING, Union

from ..runtime.rng import spawn_seeds
from .registry import available_protocols, available_scenarios

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiment.protocol import Protocol


@dataclass(frozen=True)
class CampaignPoint:
    """One cell of a campaign grid: a fully-determined experiment."""

    protocol: str
    n: int
    loss_rate: float
    scenario: str
    trials: int
    periods: int
    seed: int
    stride: int = 1
    mode: str = "batch"
    #: Trial-axis sharding: the point's M trials split into this many
    #: independently seeded sub-ensembles, which the campaign runner can
    #: fan out across workers.  Part of the point's identity: replays
    #: reproduce a sharded run bit for bit only with the same shard
    #: count (shard seeds are spawned from (seed, shard domain)).
    shards: int = 1

    @property
    def label(self) -> str:
        return (
            f"{self.protocol}/n={self.n}/f={self.loss_rate:g}/{self.scenario}"
        )

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignPoint":
        return cls(**data)


@dataclass
class CampaignSpec:
    """A declarative experiment campaign (the grid, not its results).

    The ``protocols`` axis accepts registered names, paths to equations
    files (resolved through
    :func:`~repro.campaign.registry.resolve_protocol`, ``# param:``
    directives honored), and ready
    :class:`~repro.experiment.protocol.Protocol` handles -- handles are
    auto-registered under their label at expansion, so the expanded
    points remain plain name-referencing data.
    """

    name: str = "campaign"
    protocols: List[Union[str, "Protocol"]] = field(
        default_factory=lambda: ["epidemic-pull"]
    )
    group_sizes: List[int] = field(default_factory=lambda: [1000])
    loss_rates: List[float] = field(default_factory=lambda: [0.0])
    scenarios: List[str] = field(default_factory=lambda: ["none"])
    trials: int = 16
    periods: int = 200
    base_seed: int = 0
    stride: int = 1
    mode: str = "batch"
    shards: int = 1

    def validate(self) -> None:
        if not self.protocols or not self.group_sizes \
                or not self.loss_rates or not self.scenarios:
            raise ValueError("every grid axis needs at least one value")
        from ..experiment.protocol import Protocol

        registered = set(available_protocols())
        unknown = sorted(
            entry for entry in self.protocols
            if isinstance(entry, str)
            and entry not in registered
            and not Path(entry).is_file()
        )
        if unknown:
            raise ValueError(
                f"unknown protocols {unknown}: neither registered "
                f"names (available: {available_protocols()}) nor "
                f"equations files"
            )
        for entry in self.protocols:
            if not isinstance(entry, (str, Protocol)):
                raise ValueError(
                    f"protocol axis entries must be names, equations "
                    f"file paths or Protocol handles, got "
                    f"{type(entry).__name__}"
                )
        unknown = set(self.scenarios) - set(available_scenarios())
        if unknown:
            raise ValueError(
                f"unknown scenarios {sorted(unknown)}; "
                f"available: {available_scenarios()}"
            )
        if self.trials < 1 or self.periods < 1:
            raise ValueError("trials and periods must be >= 1")
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        for n in self.group_sizes:
            if n < 2:
                raise ValueError(f"group sizes must be >= 2, got {n}")
        for rate in self.loss_rates:
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"loss rate must lie in [0, 1), got {rate}")
        if self.mode not in ("batch", "lockstep"):
            raise ValueError(f"mode must be 'batch' or 'lockstep', got {self.mode!r}")
        if not 1 <= self.shards <= self.trials:
            raise ValueError(
                f"shards must lie in [1, trials={self.trials}], "
                f"got {self.shards}"
            )

    def _protocol_names(self) -> List[str]:
        """The protocols axis as plain names, registering handles.

        :class:`Protocol` handles register under their label, so
        expanded points reference them by name exactly like built-ins.
        A label that is already registered to a *different* protocol is
        an error: silently replacing it would retarget every other
        spec's and replay's points that resolve that name
        (re-expanding a spec with the same handle stays idempotent).
        """
        from ..experiment.protocol import Protocol
        from .registry import (
            ProtocolHandleBuilder,
            protocol_builder,
            register_protocol,
        )

        names: List[str] = []
        for entry in self.protocols:
            if isinstance(entry, Protocol):
                if entry.source == "named":
                    # Registry-born handles already resolve through the
                    # registry; nothing to register.
                    names.append(entry.label)
                    continue
                try:
                    existing = protocol_builder(entry.label)
                except KeyError:
                    existing = None
                if existing is not None and not (
                    isinstance(existing, ProtocolHandleBuilder)
                    and existing.handle is entry
                ):
                    raise ValueError(
                        f"protocol handle label {entry.label!r} collides "
                        f"with an existing registration; rename the "
                        f"handle (Protocol.from_spec(..., name=...)) or "
                        f"register it explicitly first"
                    )
                register_protocol(entry.label, ProtocolHandleBuilder(entry))
                names.append(entry.label)
            else:
                names.append(entry)
        return names

    def expand(self) -> List[CampaignPoint]:
        """The grid cells, each with its spawned deterministic seed."""
        self.validate()
        cells = list(product(
            self._protocol_names(), self.group_sizes, self.loss_rates,
            self.scenarios,
        ))
        seeds = spawn_seeds(self.base_seed, len(cells))
        return [
            CampaignPoint(
                protocol=protocol,
                n=n,
                loss_rate=loss_rate,
                scenario=scenario,
                trials=self.trials,
                periods=self.periods,
                seed=seed,
                stride=self.stride,
                mode=self.mode,
                shards=self.shards,
            )
            for (protocol, n, loss_rate, scenario), seed in zip(cells, seeds)
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        data = asdict(self)
        # Protocol handles serialize by label (asdict cannot descend
        # into them); replaying such a spec requires the handle (or an
        # equally named protocol) to be registered again.
        data["protocols"] = [
            entry if isinstance(entry, str) else entry.label
            for entry in self.protocols
        ]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))
