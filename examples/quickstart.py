#!/usr/bin/env python3
"""Quickstart: from differential equations to ensemble results.

This walks the full pipeline of the framework on the paper's motivating
example (the epidemic equations (0)), through the ``repro.experiment``
facade -- the one declarative API over parsing, taxonomy, synthesis and
the engine tiers:

1. write the equations as text and wrap them in a ``Protocol`` handle
   (parse + classify + synthesize happen inside);
2. inspect the taxonomy and the synthesized state machine;
3. run an 8-trial ensemble of 10,000 processes with ``Experiment``
   (the batch engine is auto-selected for ensembles);
4. compare the ensemble mean with the mean-field analysis.

The same run is one command on the CLI::

    python -m repro run examples/endemic.txt --n 10000 --trials 16

Run:  python examples/quickstart.py
"""

import math

from repro.experiment import Experiment, Protocol
from repro.odes import classify, integrate
from repro.viz import render_series

N = 10_000
TRIALS = 8


def main() -> None:
    # 1. Equations, the way a scientist writes them -- one handle.
    protocol = Protocol.from_equations(
        """
        x' = -x*y     # susceptible meets infected
        y' =  x*y
        """,
        name="epidemic",
        initial={"x": 1 - 1 / N, "y": 1 / N},  # one seed process
    )
    system = protocol.system()
    print("equations:")
    print(system.render())
    print()

    # 2. Taxonomy (Section 2) and the synthesized protocol (Section 3):
    # the canonical pull epidemic falls out.
    print(classify(system).render())
    print()
    spec = protocol.resolve(N).spec
    print(spec.render())
    print()

    # 3. Run an ensemble: trials > 1 auto-selects the batch engine.
    result = Experiment(
        protocol, n=N, trials=TRIALS, periods=40, seed=42
    ).run()

    # 4. Mean-field reference (the paper's analysis).
    trajectory = integrate(
        system, {"x": 1 - 1 / N, "y": 1 / N}, t_end=40.0, samples=41
    )

    print(render_series(
        result.times,
        {
            "simulated infected (ensemble mean)": result.mean_counts("y"),
            "mean-field infected": trajectory.series("y") * N,
        },
        width=70, height=16,
        title=f"pull epidemic, N={N}, {TRIALS} trials ({result.engine} "
              f"engine): simulation vs analysis",
    ))
    print()
    print(f"final counts (ensemble mean): {result.mean_final_counts()}")
    print(f"messages sent per process per period: "
          f"{spec.message_complexity()}")
    susceptible = result.mean_counts("x")
    first_clear = next(
        (int(t) for t, x in zip(result.times, susceptible) if x <= 1),
        None,
    )
    print(f"rounds to <=1 susceptible (ensemble mean): {first_clear} "
          f"(theory: O(log N) ~= {2 * math.log(N):.1f})")


if __name__ == "__main__":
    main()
