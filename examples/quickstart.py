#!/usr/bin/env python3
"""Quickstart: from differential equations to a running protocol.

This walks the full pipeline of the framework on the paper's motivating
example (the epidemic equations (0)):

1. write the equations as text and parse them;
2. classify them against the Section 2 taxonomy;
3. synthesize the distributed protocol (Section 3);
4. simulate 10,000 processes and compare with the mean-field analysis.

Run:  python examples/quickstart.py
"""

from repro.odes import classify, integrate, parse_system
from repro.runtime import RoundEngine
from repro.synthesis import synthesize
from repro.viz import render_series


def main() -> None:
    # 1. Equations, the way a scientist writes them.
    system = parse_system(
        """
        x' = -x*y     # susceptible meets infected
        y' =  x*y
        """,
        name="epidemic",
    )
    print("equations:")
    print(system.render())
    print()

    # 2. Taxonomy (Section 2): complete? partitionable? restricted?
    report = classify(system)
    print(report.render())
    print()

    # 3. Synthesis (Section 3): the canonical pull epidemic falls out.
    protocol = synthesize(system)
    print(protocol.render())
    print()

    # 4. Simulate N = 10,000 processes, one initially infected.
    n = 10_000
    engine = RoundEngine(
        protocol, n=n, initial={"x": n - 1, "y": 1}, seed=42
    )
    result = engine.run(periods=40)
    recorder = result.recorder

    # Mean-field reference (the paper's analysis).
    trajectory = integrate(
        system, {"x": 1 - 1 / n, "y": 1 / n}, t_end=40.0, samples=41
    )

    print(render_series(
        recorder.times,
        {
            "simulated infected": recorder.counts("y"),
            "mean-field infected": trajectory.series("y") * n,
        },
        width=70, height=16,
        title=f"pull epidemic, N={n}: simulation vs analysis",
    ))
    print()
    print(f"final counts: {result.final_counts()}")
    print(f"messages sent per process per period: "
          f"{protocol.message_complexity()}")
    first_clear = next(
        (int(t) for t, x in zip(recorder.times, recorder.counts('x'))
         if x <= 1),
        None,
    )
    print(f"rounds to <=1 susceptible: {first_clear} "
          f"(theory: O(log N) ~= {2 * __import__('math').log(n):.1f})")


if __name__ == "__main__":
    main()
