#!/usr/bin/env python3
"""Probabilistic majority selection with the LV protocol.

Case Study II of the paper as an application: a LOCKSS-style digital
library holds two divergent versions of a document and must repair to
the majority version.  Exact majority selection is impossible in an
asynchronous system (it would solve consensus); the LV protocol solves
the *probabilistic* variant -- all processes eventually agree, and
w.h.p. on the initial majority.

The demo runs three polls with increasing corruption, a near-tie to
show where the w.h.p. guarantee frays, a poll through a massive
failure (Figure 12's scenario), and a batched accuracy ensemble
(LVEnsemble: M trials in one vectorized engine) measuring how the
w.h.p. guarantee depends on the split.

Run:  python examples/lv_majority.py
"""

import numpy as np

from repro.protocols.lv import (
    LVEnsemble,
    LVMajority,
    expected_convergence_periods,
)
from repro.runtime import MassiveFailure
from repro.store import MajorityService
from repro.viz import render_series

N = 20_000


def main() -> None:
    print(f"{N} processes; LV protocol with p=0.01 (coin bias 3p=0.03)")
    print(f"theory: convergence in ~{expected_convergence_periods(N):.0f} "
          f"periods (O(log N))")
    print()

    # A repeated-polling service: corrupt, poll, repair, repeat.
    service = MajorityService(N, np.zeros(N, dtype=int), seed=3)
    for round_number, corruption in enumerate((0.2, 0.35, 0.45), start=1):
        service.corrupt(corruption, to_version=1)
        zeros, ones = service.split()
        record = service.poll(max_periods=5000)
        print(f"poll {round_number}: split {zeros}/{ones} -> winner "
              f"version {0 if record.winner == 'x' else 1}, "
              f"converged in {record.convergence_periods} periods, "
              f"matched majority: {record.matched_majority}")
    print("service summary:", service.summary())
    print()

    # Near-tie: the saddle at x = y makes close votes slow and risky.
    close = LVMajority(N, zeros=N // 2 + 200, ones=N // 2 - 200, seed=4)
    outcome = close.run(8000, stop_on_convergence=False)
    print(f"near-tie 50.5/49.5: winner {outcome.winner} "
          f"(correct: {outcome.correct}) after "
          f"{outcome.convergence_period} periods "
          f"-- close votes take far longer than clear ones")
    print()

    # Massive failure mid-vote (Figure 12).
    instance = LVMajority(N, zeros=int(0.6 * N), ones=N - int(0.6 * N), seed=5)
    failure = MassiveFailure(at_period=100, fraction=0.5)
    outcome = instance.run(4000, hooks=(failure,), stop_on_convergence=False)
    recorder = outcome.recorder
    print(f"with 50% of processes crashing at t=100: winner "
          f"{outcome.winner}, full agreement at "
          f"{outcome.convergence_period} periods")
    horizon = recorder.times <= (outcome.convergence_period or recorder.times[-1])
    print(render_series(
        recorder.times[horizon],
        {
            "state x (0)": recorder.counts("x")[horizon],
            "state y (1)": recorder.counts("y")[horizon],
            "undecided": recorder.counts("z")[horizon],
        },
        width=70, height=14,
        title="LV majority selection through a massive failure",
    ))
    print()

    # Accuracy as a function of the split: M trials per split in one
    # batched (M, N) engine -- the fig7/fig8-family measurement.
    n, trials = 2_000, 16
    print(f"accuracy vs split ({trials} batched trials at N={n}):")
    for share in (0.60, 0.55, 0.52):
        zeros = int(share * n)
        outcome = LVEnsemble(
            n, zeros, n - zeros, trials=trials, seed=6
        ).run(6000)
        decided = int(outcome.decided.sum())
        print(f"  {100 * share:.0f}/{100 * (1 - share):.0f}: "
              f"accuracy {outcome.accuracy():.2f} "
              f"({decided}/{trials} decided, median convergence "
              f"{int(np.median(outcome.convergence_periods[outcome.converged]))}"
              f" periods)")


if __name__ == "__main__":
    main()
