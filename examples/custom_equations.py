#!/usr/bin/env python3
"""Designing your own protocol from equations you wrote.

The framework's promise is that *any* suitable equation system can be
turned into a protocol.  This demo does it three times, with systems
that are not in the paper:

1. a SIRS rumor model written as text, mapped directly;
2. the raw Lotka-Volterra competition equations (6), which need the
   full Section 7 rewriting pipeline (completion + degree raising)
   before they map -- the library does it automatically;
3. a system with a term that has no factor of its own variable, forcing
   the Section 6 Tokenizing technique, run both with oracle routing and
   with TTL random-walk routing to show the TTL approximation error.

Run:  python examples/custom_equations.py
"""

from repro.analysis.mean_field import compare_trajectory
from repro.experiment import Experiment, Protocol
from repro.odes import classify, library, parse_system
from repro.synthesis import synthesize


def sirs_rumor() -> None:
    print("=" * 70)
    print("1. SIRS rumor model (direct mapping, via the facade)")
    protocol = Protocol.from_equations(
        """
        s' = -0.6*s*i + 0.05*r     # hear the rumor; forget immunity
        i' =  0.6*s*i - 0.2*i      # spread; lose interest
        r' =  0.2*i   - 0.05*r
        """,
        name="sirs-rumor",
        initial={"s": 0.995, "i": 0.005, "r": 0.0},
    )
    system = protocol.system()
    print(classify(system).render())
    n = 20_000
    spec = protocol.resolve(n).spec
    print(spec.render())
    result = Experiment(
        protocol, n=n, trials=4, periods=spec.periods_for_time(200.0),
        seed=11,
    ).run()
    print(f"simulated equilibrium (ensemble mean): "
          f"{result.mean_final_counts()}")
    # The facade's equilibrium check compares the stationary window
    # against the closed-form stable equilibrium of the source ODE.
    print(result.equilibrium_check().render())
    print()


def raw_lotka_volterra() -> None:
    print("=" * 70)
    print("2. raw LV competition (rewriting pipeline)")
    raw = parse_system(
        "x' = 3*x - 3*x^2 - 6*x*y\n"
        "y' = 3*y - 3*y^2 - 6*x*y",
        name="lv-raw",
    )
    print("before rewriting:", classify(raw).mapping_technique)
    # Protocol.from_equations applies auto_rewrite when the system is
    # not directly mappable -- the slack state z appears by itself.
    protocol = Protocol.from_equations(
        "x' = 3*x - 3*x^2 - 6*x*y\n"
        "y' = 3*y - 3*y^2 - 6*x*y",
        name="lv-raw", p=0.01,
        initial={"x": 0.56, "y": 0.44, "z": 0.0},
    )
    mappable = protocol.system()
    print("after auto_rewrite:")
    print(mappable.render())
    print("matches the paper's equation (7):",
          mappable.equivalent_to(library.lv()))
    n = 10_000
    # One trial: Experiment auto-selects the serial RoundEngine tier.
    result = Experiment(protocol, n=n, periods=1500, seed=12).run()
    print(f"56/44 vote at N={n} ({result.engine} engine): "
          f"final {result.mean_final_counts()}")
    print()


def tokenizing_demo() -> None:
    print("=" * 70)
    print("3. Tokenizing (Section 6), oracle vs TTL random walk")
    system = parse_system(
        """
        x' = -0.3*x + 0.4*x*y
        y' =  0.3*x - 0.5*y
        z' =  0.5*y - 0.4*x*y     # -0.4xy has no factor of z: tokens!
        """,
        name="token-demo",
    )
    print(classify(system).render())
    for label, ttl in (("membership oracle", None), ("TTL=3 random walk", 3)):
        protocol = synthesize(system, token_ttl=ttl)
        comparison = compare_trajectory(
            protocol, n=30_000,
            initial_counts={"x": 15_000, "y": 7_500, "z": 7_500},
            periods=120, seed=13, reference="discrete",
        )
        print(f"  {label}: worst RMS fraction error vs mean field = "
              f"{comparison.worst_rms_fraction_error():.4f}")
    print("  (the TTL walk drops tokens that fail to find a target, so")
    print("   its dynamics deviate from the source equations -- exactly")
    print("   the limitation Section 6 discusses)")


def main() -> None:
    sirs_rumor()
    raw_lotka_volterra()
    tokenizing_demo()


if __name__ == "__main__":
    main()
