#!/usr/bin/env python3
"""Designing your own protocol from equations you wrote.

The framework's promise is that *any* suitable equation system can be
turned into a protocol.  This demo does it three times, with systems
that are not in the paper:

1. a SIRS rumor model written as text, mapped directly;
2. the raw Lotka-Volterra competition equations (6), which need the
   full Section 7 rewriting pipeline (completion + degree raising)
   before they map -- the library does it automatically;
3. a system with a term that has no factor of its own variable, forcing
   the Section 6 Tokenizing technique, run both with oracle routing and
   with TTL random-walk routing to show the TTL approximation error.

Run:  python examples/custom_equations.py
"""

import numpy as np

from repro.analysis.mean_field import compare_trajectory
from repro.odes import auto_rewrite, classify, library, parse_system
from repro.runtime import RoundEngine
from repro.synthesis import synthesize


def sirs_rumor() -> None:
    print("=" * 70)
    print("1. SIRS rumor model (direct mapping)")
    system = parse_system(
        """
        s' = -0.6*s*i + 0.05*r     # hear the rumor; forget immunity
        i' =  0.6*s*i - 0.2*i      # spread; lose interest
        r' =  0.2*i   - 0.05*r
        """,
        name="sirs-rumor",
    )
    print(classify(system).render())
    protocol = synthesize(system)
    print(protocol.render())
    n = 20_000
    engine = RoundEngine(protocol, n=n, initial={"s": n - 100, "i": 100, "r": 0},
                         seed=11)
    engine.run(protocol.periods_for_time(200.0))
    counts = engine.counts()
    print(f"simulated equilibrium: {counts}")
    from repro.odes import find_equilibria
    stable = [e for e in find_equilibria(system) if e.is_stable]
    print(f"analytic equilibrium:  "
          f"{ {k: round(v * n) for k, v in stable[0].point.items()} }")
    print()


def raw_lotka_volterra() -> None:
    print("=" * 70)
    print("2. raw LV competition (rewriting pipeline)")
    raw = parse_system(
        "x' = 3*x - 3*x^2 - 6*x*y\n"
        "y' = 3*y - 3*y^2 - 6*x*y",
        name="lv-raw",
    )
    print("before rewriting:", classify(raw).mapping_technique)
    mappable = auto_rewrite(raw)
    print("after auto_rewrite:")
    print(mappable.render())
    print("matches the paper's equation (7):",
          mappable.equivalent_to(library.lv()))
    protocol = synthesize(mappable, p=0.01)
    n = 10_000
    engine = RoundEngine(protocol, n=n, initial={"x": 5600, "y": 4400, "z": 0},
                         seed=12)
    engine.run(1500)
    print(f"56/44 vote at N={n}: final {engine.counts()}")
    print()


def tokenizing_demo() -> None:
    print("=" * 70)
    print("3. Tokenizing (Section 6), oracle vs TTL random walk")
    system = parse_system(
        """
        x' = -0.3*x + 0.4*x*y
        y' =  0.3*x - 0.5*y
        z' =  0.5*y - 0.4*x*y     # -0.4xy has no factor of z: tokens!
        """,
        name="token-demo",
    )
    print(classify(system).render())
    for label, ttl in (("membership oracle", None), ("TTL=3 random walk", 3)):
        protocol = synthesize(system, token_ttl=ttl)
        comparison = compare_trajectory(
            protocol, n=30_000,
            initial_counts={"x": 15_000, "y": 7_500, "z": 7_500},
            periods=120, seed=13, reference="discrete",
        )
        print(f"  {label}: worst RMS fraction error vs mean field = "
              f"{comparison.worst_rms_fraction_error():.4f}")
    print("  (the TTL walk drops tokens that fail to find a target, so")
    print("   its dynamics deviate from the source equations -- exactly")
    print("   the limitation Section 6 discusses)")


def main() -> None:
    sirs_rumor()
    raw_lotka_volterra()
    tokenizing_demo()


if __name__ == "__main__":
    main()
