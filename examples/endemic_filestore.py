#!/usr/bin/env python3
"""A persistent file store with migratory (endemic) replica location.

Case Study I of the paper as an application: every file runs its own
endemic protocol instance; its replicas live on the current *stash*
processes and constantly migrate.  The demo exercises the properties
the paper claims:

* probabilistic safety -- the file survives a 50% massive failure;
* liveness + fairness -- replicas rotate across the whole population;
* untraceability -- a snapshot of replica locations goes stale fast;
* constant overhead -- per-host bandwidth is tiny.

Run:  python examples/endemic_filestore.py
"""

import numpy as np

from repro.analysis.fairness import analyze_member_log, attack_window_decay
from repro.analysis.safety import RealityCheck
from repro.protocols.endemic import STASH, EndemicParams, figure1_protocol
from repro.runtime import MetricsRecorder, RoundEngine
from repro.store import MigratoryFileStore
from repro.viz import render_series

N = 2_000
PARAMS = EndemicParams(alpha=0.01, gamma=0.1, b=2)


def main() -> None:
    store = MigratoryFileStore(n=N, params=PARAMS, seed=7)

    print(f"hosts: {N}, parameters: alpha={PARAMS.alpha}, "
          f"gamma={PARAMS.gamma}, b={PARAMS.b} (beta={PARAMS.beta})")
    print(f"analytic equilibrium: "
          f"{ {k: round(v, 1) for k, v in PARAMS.equilibrium_counts(N).items()} }")
    print()

    # Insert two files; a single seed replica suffices (the trivial
    # equilibrium is a saddle -- one stasher escapes it).
    store.insert("thesis.pdf", size_bytes=2.4e6, initial_replicas=1)
    store.insert("archive.tar", size_bytes=88.2e3, initial_replicas=1)
    store.tick(600)

    for name in ("thesis.pdf", "archive.tar"):
        replicas = store.replica_count(name)
        fetch = store.fetch(name)
        print(f"{name}: {replicas} replicas; fetch found a copy on host "
              f"{fetch.replica_host} after {fetch.probes} probe(s)")
    print()

    # Massive failure: half the hosts crash with their replicas.
    victims = store.crash_random_fraction(0.5)
    print(f"MASSIVE FAILURE: crashed {len(victims)} hosts")
    store.tick(600)
    for name in ("thesis.pdf", "archive.tar"):
        print(f"{name}: {store.replica_count(name)} replicas after failure "
              f"(lost: {name in store.lost_files()})")
    print()

    # Bandwidth accounting (the Section 5.1 reality check).
    check = RealityCheck.of(PARAMS, N)
    measured = store.bandwidth_bps_per_host("archive.tar", window_periods=300)
    print(f"bandwidth per host for archive.tar: measured {measured:.3g} bps, "
          f"closed form {check.bandwidth_bps_per_host:.3g} bps")
    print()

    # Untraceability / fairness measurement on a dedicated run.
    spec = figure1_protocol(PARAMS)
    engine = RoundEngine(spec, n=N, initial=PARAMS.equilibrium_counts(N), seed=8)
    engine.run(400)
    recorder = MetricsRecorder(spec.states, member_log_state=STASH)
    engine.run(300, recorder=recorder, record_initial=False)
    fairness = analyze_member_log(recorder, N, gamma=PARAMS.gamma)
    print("fairness / untraceability over 300 observed periods:")
    print(fairness.render())
    decay = attack_window_decay(recorder, lags=(1, 10, 30))
    print("attacker snapshot overlap by lag:",
          {lag: round(v, 3) for lag, v in decay.items()})
    print()

    print(render_series(
        recorder.times,
        {"stashers": recorder.counts(STASH)},
        width=70, height=10,
        title="replica population over time (stable, low)",
    ))


if __name__ == "__main__":
    main()
