"""Setup shim: enables legacy editable installs (`pip install -e .`)
on environments without the `wheel` package (PEP 660 requires it)."""
from setuptools import setup

setup()
