#!/usr/bin/env python3
"""Documentation presence and link check (CI gate, stdlib only).

Verifies that the repository's entry-point documentation exists, that
every *relative* markdown link in it resolves to a real file or
directory, and that load-bearing sections (the ones other docs and
error messages point at) are still present under a recognizable
heading.  External links (http/https/mailto) and pure in-page anchors
are not checked.

Run from anywhere:  python tools/check_docs.py
Exit status 0 = all good, 1 = missing docs or dangling links.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation that must exist for the repo to count as documented.
REQUIRED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/campaigns.md",
    "docs/experiment.md",
    "docs/service.md",
    "docs/static-analysis.md",
    "benchmarks/results/README.md",
)

#: Markdown files whose links are validated.
CHECKED_FOR_LINKS = REQUIRED_DOCS + (
    "ROADMAP.md",
    "PAPER.md",
)

#: Headings (any level) that must appear in the named doc.  Substring
#: match against heading lines, so retitling around the key phrase is
#: fine; deleting the section is not.
REQUIRED_SECTIONS = (
    ("docs/architecture.md", "The distributed backend"),
    ("docs/architecture.md", "The execution layer"),
    ("docs/campaigns.md", "The cluster backend"),
    ("docs/campaigns.md", "Checkpointing and resume"),
    ("docs/campaigns.md", "Fault policy"),
)

#: Inline markdown links: [text](target).  Deliberately simple -- docs
#: here do not use reference-style links or angle-bracket targets.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def missing_required(root: Path = REPO_ROOT) -> List[str]:
    """Required doc files that do not exist."""
    return [name for name in REQUIRED_DOCS if not (root / name).is_file()]


def dangling_links(root: Path = REPO_ROOT) -> List[Tuple[str, str]]:
    """(file, target) pairs whose relative link target does not exist."""
    bad: List[Tuple[str, str]] = []
    for name in CHECKED_FOR_LINKS:
        path = root / name
        if not path.is_file():
            continue  # reported by missing_required
        for target in _LINK.findall(path.read_text()):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                bad.append((name, target))
    return bad


def missing_sections(root: Path = REPO_ROOT) -> List[Tuple[str, str]]:
    """(file, section) pairs whose required heading is gone."""
    bad: List[Tuple[str, str]] = []
    for name, section in REQUIRED_SECTIONS:
        path = root / name
        if not path.is_file():
            continue  # reported by missing_required
        headings = _HEADING.findall(path.read_text())
        if not any(section in heading for heading in headings):
            bad.append((name, section))
    return bad


def main() -> int:
    failures = 0
    for name in missing_required():
        print(f"MISSING: {name}")
        failures += 1
    for name, target in dangling_links():
        print(f"DANGLING LINK: {name}: ({target})")
        failures += 1
    for name, section in missing_sections():
        print(f"MISSING SECTION: {name}: {section!r}")
        failures += 1
    if failures:
        print(f"{failures} documentation problem(s)")
        return 1
    print(
        f"docs ok: {len(REQUIRED_DOCS)} required files present, "
        f"links in {len(CHECKED_FOR_LINKS)} files resolve, "
        f"{len(REQUIRED_SECTIONS)} required sections found"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
