#!/usr/bin/env python3
"""Compare two campaign tensor directories for bitwise-equal results.

The resume guarantee under test in CI: a campaign that was killed
mid-run and finished with ``--resume`` must produce the same manifest
and the same tensors as an uninterrupted run of the same spec.  Two
kinds of noise are legitimately different and are normalized away:

* wall-clock provenance -- ``elapsed_seconds`` and the manifest's
  ``created`` stamp (pin the latter with ``SOURCE_DATE_EPOCH`` if you
  want byte-identical manifests);
* ``.npz`` container bytes -- the zip layer embeds entry timestamps,
  so files are compared by *array contents*, which is what the
  reproducibility contract promises.

Usage:  python tools/compare_campaign_dirs.py DIR_A DIR_B
Exit status 0 = equivalent, 1 = any difference (each one reported).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

WALL_CLOCK_KEYS = ("elapsed_seconds", "created")


def scrub(data):
    """Mask wall-clock provenance so only real content is compared."""
    if isinstance(data, dict):
        return {
            key: "<wall-clock>" if key in WALL_CLOCK_KEYS else scrub(value)
            for key, value in data.items()
        }
    if isinstance(data, list):
        return [scrub(value) for value in data]
    return data


def diff_paths(a, b, prefix=""):
    """Human-readable paths where two scrubbed JSON trees differ."""
    if type(a) is not type(b):
        return [f"{prefix or '.'}: {type(a).__name__} != {type(b).__name__}"]
    if isinstance(a, dict):
        problems = []
        for key in sorted(set(a) | set(b)):
            where = f"{prefix}.{key}" if prefix else str(key)
            if key not in a or key not in b:
                problems.append(f"{where}: only in one manifest")
            else:
                problems.extend(diff_paths(a[key], b[key], where))
        return problems
    if isinstance(a, list):
        if len(a) != len(b):
            return [f"{prefix}: length {len(a)} != {len(b)}"]
        problems = []
        for index, (va, vb) in enumerate(zip(a, b)):
            problems.extend(diff_paths(va, vb, f"{prefix}[{index}]"))
        return problems
    return [] if a == b else [f"{prefix}: {a!r} != {b!r}"]


def compare(dir_a: Path, dir_b: Path) -> list:
    problems = []
    try:
        manifest_a = json.loads((dir_a / "manifest.json").read_text())
        manifest_b = json.loads((dir_b / "manifest.json").read_text())
    except FileNotFoundError as exc:
        return [f"missing manifest: {exc}"]
    problems.extend(
        diff_paths(scrub(manifest_a), scrub(manifest_b), "manifest")
    )

    names_a = sorted(p.name for p in dir_a.glob("*.npz"))
    names_b = sorted(p.name for p in dir_b.glob("*.npz"))
    if names_a != names_b:
        problems.append(f"tensor files differ: {names_a} != {names_b}")
    for name in sorted(set(names_a) & set(names_b)):
        with np.load(dir_a / name) as a, np.load(dir_b / name) as b:
            if sorted(a.files) != sorted(b.files):
                problems.append(f"{name}: keys {a.files} != {b.files}")
                continue
            for key in a.files:
                if not np.array_equal(a[key], b[key]):
                    problems.append(f"{name}[{key}]: arrays differ")
    return problems


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    dir_a, dir_b = Path(argv[0]), Path(argv[1])
    problems = compare(dir_a, dir_b)
    if problems:
        print(f"{dir_a} and {dir_b} are NOT equivalent:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"{dir_a} and {dir_b} are equivalent "
        f"(manifests match modulo wall clock; tensors bitwise equal)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
