"""FIG8: replica untraceability and load balancing.

Paper: Figure 8 -- N = 1000, b = 2, gamma = 0.1; scatter of stasher
host ids at the end of every period over [1000, 1200].  Claims: no
significant horizontal lines (load balancing), no correlation with
time or host id (untraceability), stable stasher count 88.63, one new
stasher every 40.6 seconds.

Parameter note (see DESIGN.md): the figure caption prints alpha=0.001,
but the stated 88.63 stashers and 40.6-second birth interval are
consistent only with alpha=0.01, which we therefore use.
"""

import numpy as np
import pytest

from bench_util import format_table, report, scaled

from repro.analysis.fairness import analyze_member_log, attack_window_decay
from repro.protocols.endemic import STASH, EndemicParams, figure1_protocol, stasher_birth_rate
from repro.runtime import MetricsRecorder, RoundEngine
from repro.viz.ascii_plot import render_scatter

N = 1000
PARAMS = EndemicParams(alpha=0.01, gamma=0.1, b=2)


def run_experiment():
    spec = figure1_protocol(PARAMS)
    engine = RoundEngine(spec, n=N, initial=PARAMS.equilibrium_counts(N), seed=80)
    warmup = scaled(1000, minimum=200)
    window = scaled(200, minimum=100)
    engine.run(warmup)
    recorder = MetricsRecorder(spec.states, member_log_state=STASH)
    engine.run(window, recorder=recorder, record_initial=False)
    return recorder


def test_fig8_untraceability(run_once):
    recorder = run_once(run_experiment)

    fairness = analyze_member_log(recorder, N, gamma=PARAMS.gamma)
    decay = attack_window_decay(recorder, lags=(1, 5, 10, 20, 50))
    stash_series = recorder.counts(STASH)
    births = stasher_birth_rate(PARAMS, N)

    xs, ys = [], []
    for period, members in recorder.member_log:
        xs.extend([period] * len(members))
        ys.extend(members.tolist())
    plot = render_scatter(
        xs, ys, name="stashers", width=70, height=24,
        title="Figure 8: hosts holding a replica, per period",
        y_range=(0, N),
    )
    decay_rows = [
        (lag, f"{observed:.3f}", f"{(1 - PARAMS.gamma) ** lag:.3f}")
        for lag, observed in decay.items()
    ]
    report("fig8_untraceability", "\n".join([
        f"parameters: N={N}, b=2, gamma=0.1, alpha=0.01 (see note)",
        f"stable stasher count: paper 88.63, analytic "
        f"{PARAMS.equilibrium_counts(N)[STASH]:.2f}, measured mean "
        f"{np.mean(stash_series):.2f}",
        f"stasher birth interval: paper 40.6 s, analytic "
        f"{360.0 / births:.1f} s",
        "",
        fairness.render(),
        "",
        format_table(
            ["lag (periods)", "snapshot overlap", "(1-gamma)^lag"],
            decay_rows,
        ),
        "",
        plot,
    ]))

    # Stable stasher count near the paper's 88.63.
    assert np.mean(stash_series) == pytest.approx(88.63, rel=0.2)
    # Birth interval 40.6 s.
    assert 360.0 / births == pytest.approx(40.6, abs=0.1)
    # Untraceability: no host-id/time correlation, uniform host usage.
    assert abs(fairness.host_time_correlation) < 0.05
    assert fairness.host_id_uniformity_pvalue > 0.01
    # Load balancing: no host stashes for dramatically longer than the
    # geometric expectation ("no significant horizontal lines").
    assert fairness.max_run_length < 3 * fairness.expected_max_run_length
    # The attacker's snapshot decays roughly like (1-gamma)^lag.
    assert decay[10] == pytest.approx(0.9**10, abs=0.12)
    assert decay[50] < decay[5] < decay[1]