"""FIG8: replica untraceability and load balancing.

Paper: Figure 8 -- N = 1000, b = 2, gamma = 0.1; scatter of stasher
host ids at the end of every period over [1000, 1200].  Claims: no
significant horizontal lines (load balancing), no correlation with
time or host id (untraceability), stable stasher count 88.63, one new
stasher every 40.6 seconds.

Parameter note: the figure caption prints alpha=0.001,
but the stated 88.63 stashers and 40.6-second birth interval are
consistent only with alpha=0.01, which we therefore use.

Runs on the batch engine: the paper shows one representative run, but
every claim here is statistical, so M trials run as one batched
ensemble with per-trial member logs and the assertions hold ensemble
means (stasher count, attacker decay) and per-trial bounds (stint
lengths, uniformity) instead of a single run's luck.
"""

import numpy as np
import pytest

from bench_util import format_table, report, scaled

from repro.analysis.fairness import analyze_member_log, attack_window_decay
from repro.protocols.endemic import STASH, EndemicParams, figure1_protocol, stasher_birth_rate
from repro.runtime import BatchMetricsRecorder, BatchRoundEngine
from repro.viz.ascii_plot import render_scatter

N = 1000
TRIALS = 8
PARAMS = EndemicParams(alpha=0.01, gamma=0.1, b=2)
LAGS = (1, 5, 10, 20, 50)


def run_experiment():
    spec = figure1_protocol(PARAMS)
    engine = BatchRoundEngine(
        spec, n=N, trials=TRIALS,
        initial=PARAMS.equilibrium_counts(N), seed=80,
    )
    warmup = scaled(1000, minimum=200)
    window = scaled(200, minimum=100)
    engine.run(warmup)
    recorder = BatchMetricsRecorder(
        spec.states, TRIALS, member_log_state=STASH
    )
    engine.run(window, recorder=recorder, record_initial=False)
    return recorder


def test_fig8_untraceability(run_once):
    recorder = run_once(run_experiment)

    fairness = [
        analyze_member_log(
            recorder.trial_member_log(m), N, gamma=PARAMS.gamma
        )
        for m in range(TRIALS)
    ]
    decay = [
        attack_window_decay(recorder.trial_member_log(m), lags=LAGS)
        for m in range(TRIALS)
    ]
    mean_decay = {
        lag: float(np.mean([d[lag] for d in decay if lag in d]))
        for lag in LAGS
    }
    stash_mean = float(recorder.counts(STASH).mean())
    births = stasher_birth_rate(PARAMS, N)
    correlations = np.array([f.host_time_correlation for f in fairness])
    pvalues = np.array([f.host_id_uniformity_pvalue for f in fairness])

    xs, ys = [], []
    for period, members in recorder.trial_member_log(0):
        xs.extend([period] * len(members))
        ys.extend(members.tolist())
    plot = render_scatter(
        xs, ys, name="stashers", width=70, height=24,
        title="Figure 8: hosts holding a replica, per period (trial 0)",
        y_range=(0, N),
    )
    trial_rows = [
        (m, f.hosts_ever_responsible, f"{f.jain_index:.3f}",
         f"{f.max_run_length}/{f.expected_max_run_length:.0f}",
         f"{f.host_id_uniformity_pvalue:.3f}",
         f"{f.host_time_correlation:+.4f}")
        for m, f in enumerate(fairness)
    ]
    decay_rows = [
        (lag, f"{mean_decay[lag]:.3f}", f"{(1 - PARAMS.gamma) ** lag:.3f}")
        for lag in LAGS
    ]
    report("fig8_untraceability", "\n".join([
        f"parameters: N={N}, b=2, gamma=0.1, alpha=0.01 (see note), "
        f"M={TRIALS}-trial batched ensemble",
        f"stable stasher count: paper 88.63, analytic "
        f"{PARAMS.equilibrium_counts(N)[STASH]:.2f}, ensemble mean "
        f"{stash_mean:.2f}",
        f"stasher birth interval: paper 40.6 s, analytic "
        f"{360.0 / births:.1f} s",
        "",
        format_table(
            ["trial", "hosts ever resp.", "Jain",
             "max stint / expected", "uniformity p", "host-time corr"],
            trial_rows,
        ),
        "",
        format_table(
            ["lag (periods)", "snapshot overlap (mean)", "(1-gamma)^lag"],
            decay_rows,
        ),
        "",
        plot,
    ]))

    # Stable stasher count near the paper's 88.63 (ensemble mean).
    assert stash_mean == pytest.approx(88.63, rel=0.2)
    # Birth interval 40.6 s.
    assert 360.0 / births == pytest.approx(40.6, abs=0.1)
    # Untraceability: no host-id/time correlation (tight on the
    # ensemble mean, loose per trial), uniform host usage everywhere.
    assert abs(float(correlations.mean())) < 0.05
    assert np.all(np.abs(correlations) < 0.15)
    assert float(np.median(pvalues)) > 0.05
    assert np.all(pvalues > 0.001)
    # Load balancing: no host stashes for dramatically longer than the
    # geometric expectation ("no significant horizontal lines").
    for f in fairness:
        assert f.max_run_length < 3 * f.expected_max_run_length
    # The attacker's snapshot decays roughly like (1-gamma)^lag.
    assert mean_decay[10] == pytest.approx(0.9**10, abs=0.12)
    assert mean_decay[50] < mean_decay[5] < mean_decay[1]
