"""FIG5: endemic protocol under a massive failure (batched ensemble).

Paper: Figure 5 -- N = 100,000, b = 2, alpha = 1e-6, gamma = 1e-3.
Half the hosts crash at t = 5000.  The stasher count drops by a factor
of about two and restabilizes; the receptive count is *unchanged*,
because after the failure half of all contacts hit crashed hosts,
halving the effective b and doubling the equilibrium receptive
fraction of the (halved) population.

The paper plots one run; this bench runs a 6-trial ensemble on the
batch engine and asserts the shape on the ensemble means (the same
claims, de-flaked), reporting the per-trial spread alongside.
"""

import numpy as np
import pytest

from bench_util import format_table, report
from endemic_runs import figure5_run

from repro.viz.ascii_plot import render_series


def test_fig5_endemic_massive_failure(run_once):
    data = run_once(figure5_run)
    recorder, fail_at, total = data["recorder"], data["fail_at"], data["total"]
    params, n, trials = data["params"], data["n"], data["trials"]

    times = recorder.times
    stash = recorder.mean_counts("y")
    receptive = recorder.mean_counts("x")
    stash_trials = recorder.counts("y")  # (M, periods)

    def window_mean(series, lo, hi):
        mask = (times >= lo) & (times <= hi)
        return float(np.mean(series[mask]))

    pre_stash = window_mean(stash, int(fail_at * 0.6), fail_at - 1)
    post_stash = window_mean(stash, int(total * 0.9), total)
    pre_rcptv = window_mean(receptive, int(fail_at * 0.6), fail_at - 1)
    post_rcptv = window_mean(receptive, int(total * 0.9), total)

    # Per-trial post-failure stash means: the ensemble spread.
    post_mask = (times >= int(total * 0.9)) & (times <= total)
    post_stash_trials = stash_trials[:, post_mask].mean(axis=1)

    eq = params.equilibrium_counts(n)
    rows = [
        ("stashers", f"{eq['y']:.1f}", f"{pre_stash:.1f}", f"{post_stash:.1f}",
         f"{pre_stash / max(post_stash, 1e-9):.2f}x"),
        ("receptives", f"{eq['x']:.1f}", f"{pre_rcptv:.1f}", f"{post_rcptv:.1f}",
         f"{pre_rcptv / max(post_rcptv, 1e-9):.2f}x"),
    ]
    table = format_table(
        ["state", "analytic eq.", "pre-failure mean", "post-failure mean",
         "pre/post"],
        rows,
    )
    mask = times >= int(fail_at * 0.8)
    plot = render_series(
        times[mask],
        {"Stash:Alive": stash[mask], "Rcptv:Alive": receptive[mask]},
        width=70, height=18,
        title=f"Figure 5: massive failure of 50% at t={fail_at} "
              f"(N={n}, b=2, alpha=1e-6, gamma=1e-3, "
              f"ensemble mean of {trials} trials)",
    )
    report("fig5_endemic_massive_failure", "\n".join([
        f"N={n}  trials={trials}  failure at t={fail_at}  horizon t={total}",
        "paper shape: stashers drop ~2x, receptives unchanged, quick "
        "restabilization",
        f"post-failure stash means per trial: "
        f"{np.array2string(post_stash_trials, precision=1)}",
        "",
        table,
        "",
        plot,
    ]))

    # Shape: stashers halve (paper: "drop by a factor of about two").
    assert post_stash == pytest.approx(pre_stash / 2, rel=0.35)
    # Receptives unchanged (the effective-b halving argument).
    assert post_rcptv == pytest.approx(pre_rcptv, rel=0.35)
    # The object survives the failure in every trial of the ensemble.
    assert np.all(recorder.last_counts()[:, recorder.states.index("y")] > 0)