"""FIG12: LV convergence through a massive failure.

Paper: Figure 12 -- same 60/40 start as Figure 11; at t = 100 half the
processes (selected at random) crash.  The system still converges to
the initial majority, just later (paper: t = 862 vs < 500 without the
failure).
"""

import numpy as np
import pytest

from bench_util import format_table, report, scaled

from repro.protocols.lv import LVMajority
from repro.runtime import MassiveFailure
from repro.viz.ascii_plot import render_series


def run_experiment():
    n = scaled(100_000, minimum=5_000)
    clean = LVMajority(
        n, zeros=int(0.6 * n), ones=n - int(0.6 * n), p=0.01, seed=120
    ).run(scaled(3_000, minimum=1_500), stop_on_convergence=False)

    failed_instance = LVMajority(
        n, zeros=int(0.6 * n), ones=n - int(0.6 * n), p=0.01, seed=120
    )
    failure = MassiveFailure(at_period=100, fraction=0.5)
    failed = failed_instance.run(
        scaled(3_000, minimum=1_500), hooks=(failure,),
        stop_on_convergence=False,
    )
    return n, clean, failed


def _visual_convergence(outcome, n):
    times = outcome.recorder.times
    minority = outcome.recorder.counts("y").astype(float)
    alive = outcome.recorder.alive_series().astype(float)
    hits = np.nonzero(minority <= 0.01 * alive)[0]
    return int(times[hits[0]]) if len(hits) else None


def test_fig12_lv_massive_failure(run_once):
    n, clean, failed = run_once(run_experiment)

    clean_visual = _visual_convergence(clean, n)
    failed_visual = _visual_convergence(failed, n)

    times = failed.recorder.times
    horizon = times <= min(times[-1], 2 * (failed.convergence_period or times[-1]))
    plot = render_series(
        times[horizon],
        {
            "State X": failed.recorder.counts("x")[horizon],
            "State Y": failed.recorder.counts("y")[horizon],
            "State Z": failed.recorder.counts("z")[horizon],
        },
        width=70, height=18,
        title=f"Figure 12: LV with 50% massive failure at t=100 (N={n})",
    )
    report("fig12_lv_massive_failure", "\n".join([
        f"N={n}, p=0.01, start 60/40, 50% crash at t=100",
        format_table(
            ["run", "winner", "visual convergence", "full agreement"],
            [
                ("no failure (Fig 11)", clean.winner, clean_visual,
                 clean.convergence_period),
                ("50% failure at t=100", failed.winner, failed_visual,
                 failed.convergence_period),
            ],
        ),
        "",
        "paper: convergence still occurs, delayed (t=862 vs <500)",
        "",
        plot,
    ]))

    # Both runs converge to the initial majority.
    assert clean.winner == "x" and failed.winner == "x"
    # The failure delays convergence (paper: 862 vs < 500) but does not
    # prevent it.
    assert failed_visual is not None
    assert failed_visual > clean_visual
    # Same order of magnitude as the paper's delay factor (~1.7x);
    # allow a broad band for stochastic variation.
    assert failed_visual < 5 * clean_visual