"""FIG12: LV convergence through a massive failure (LVEnsemble).

Paper: Figure 12 -- same 60/40 start as Figure 11; at t = 100 half the
processes (selected at random) crash.  The system still converges to
the initial majority, just later (paper: t = 862 vs < 500 without the
failure).

Runs as :class:`~repro.protocols.lv.LVEnsemble` pairs (the same
treatment Figure 11 got): a clean ensemble and a failure-injected
ensemble share trial counts and horizon, and the convergence-delay
claim is asserted on *per-trial decision tensors* -- each trial's own
visual-convergence period (its minority camp below 1% of its alive
population), compared clean-vs-failed across the band -- instead of a
single serial run per condition.
"""

import numpy as np
import pytest

from bench_util import format_table, report, scaled

from repro.protocols.lv import LVEnsemble
from repro.runtime import MassiveFailure
from repro.viz.ascii_plot import render_series

TRIALS = 6


def run_experiment():
    n = scaled(100_000, minimum=5_000)
    zeros = int(0.6 * n)
    periods = scaled(3_000, minimum=1_500)
    clean = LVEnsemble(
        n, zeros, n - zeros, trials=TRIALS, p=0.01, seed=120
    ).run(periods, stop_when_all_converged=False)

    failed = LVEnsemble(
        n, zeros, n - zeros, trials=TRIALS, p=0.01, seed=120
    ).run(
        periods,
        hook_factories=[
            lambda trial: MassiveFailure(at_period=100, fraction=0.5)
        ],
        stop_when_all_converged=False,
    )
    return n, clean, failed


def _visual_convergence(outcome):
    """Per-trial first period with the minority below 1% of alive."""
    recorder = outcome.recorder
    times = recorder.times
    minority = recorder.counts("y").astype(float)       # (M, periods)
    alive = recorder.alive_tensor().astype(float)       # (M, periods)
    hits = minority <= 0.01 * alive
    periods = np.full(minority.shape[0], -1, dtype=np.int64)
    for trial in range(minority.shape[0]):
        indices = np.nonzero(hits[trial])[0]
        if indices.size:
            periods[trial] = int(times[indices[0]])
    return periods


def test_fig12_lv_massive_failure(run_once):
    n, clean, failed = run_once(run_experiment)

    clean_visual = _visual_convergence(clean)
    failed_visual = _visual_convergence(failed)

    recorder = failed.recorder
    times = recorder.times
    # Unconverged trials report -1; fall back to the full horizon so
    # the diagnostic plot still renders before the assertions fire.
    cap = (2 * int(failed_visual.max()) if failed_visual.max() > 0
           else int(times[-1]))
    horizon = times <= min(int(times[-1]), cap)
    plot = render_series(
        times[horizon],
        {
            "State X": recorder.mean_counts("x")[horizon],
            "State Y": recorder.mean_counts("y")[horizon],
            "State Z": recorder.mean_counts("z")[horizon],
        },
        width=70, height=18,
        title=f"Figure 12: LV with 50% massive failure at t=100 "
              f"(N={n}, mean of {TRIALS} trials)",
    )

    def band(values):
        return (f"min {int(values.min())} / median "
                f"{float(np.median(values)):g} / max {int(values.max())}")

    report("fig12_lv_massive_failure", "\n".join([
        f"N={n}, trials={TRIALS}, p=0.01, start 60/40, 50% crash at "
        f"t=100 (LVEnsemble decision tensors)",
        format_table(
            ["ensemble", "winner", "visual convergence band",
             "full agreement per trial"],
            [
                ("no failure (Fig 11)",
                 f"x in {int((clean.winners == 'x').sum())}/{TRIALS}",
                 band(clean_visual),
                 ", ".join(str(int(p))
                           for p in clean.convergence_periods)),
                ("50% failure at t=100",
                 f"x in {int((failed.winners == 'x').sum())}/{TRIALS}",
                 band(failed_visual),
                 ", ".join(str(int(p))
                           for p in failed.convergence_periods)),
            ],
        ),
        "",
        "paper: convergence still occurs, delayed (t=862 vs <500)",
        "",
        plot,
    ]))

    # Every trial of both ensembles converges to the initial majority.
    assert np.all(clean.winners == "x")
    assert np.all(failed.winners == "x")
    assert np.all(clean_visual >= 0) and np.all(failed_visual >= 0)
    # The failure delays convergence (paper: 862 vs < 500) but does not
    # prevent it -- asserted on the ensemble medians, which average out
    # single-trial noise.
    assert np.median(failed_visual) > np.median(clean_visual)
    # Same order of magnitude as the paper's delay factor (~1.7x);
    # allow a broad band for stochastic variation.
    assert np.median(failed_visual) < 5 * np.median(clean_visual)
