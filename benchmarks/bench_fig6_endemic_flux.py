"""FIG6: file flux rate of the Figure 5 run.

Paper: Figure 6 -- same experiment as Figure 5; the number of file
transfers (receptive -> stash transitions) per protocol period stays
low, shows no wild variation through the massive failure, and converges
back to its equilibrium value quickly.

Shares the batched Figure 5 ensemble; flux statistics are ensemble
means over the trials.
"""

import numpy as np
import pytest

from bench_util import format_table, report
from endemic_runs import figure5_run

from repro.viz.ascii_plot import render_series

#: Minimum expected receptive->stash transfer events (summed over the
#: ensemble) in the pre- and post-failure windows for the mean-flux
#: assertions to be signal rather than shot noise: at K expected events
#: the relative shot noise is ~1/sqrt(K), and the tightest check (post
#: ~= pre/2 within 60%) needs that comfortably under the tolerance.
MIN_PRE_EVENTS = 50.0
MIN_POST_EVENTS = 25.0


def test_fig6_endemic_flux(run_once):
    data = run_once(figure5_run)
    recorder, fail_at, total = data["recorder"], data["fail_at"], data["total"]
    params, n = data["params"], data["n"]

    times = recorder.times
    flux = recorder.mean_transitions(("x", "y"))

    def window(series, lo, hi):
        mask = (times >= lo) & (times <= hi)
        return series[mask]

    pre = window(flux, int(fail_at * 0.6), fail_at - 1)
    post = window(flux, int(total * 0.9), total)
    # Equilibrium flux = stasher birth rate = gamma * y_inf.
    eq_flux_pre = params.gamma * params.equilibrium_counts(n)["y"]

    rows = [
        ("pre-failure", f"{np.mean(pre):.2f}", f"{np.max(pre):.0f}"),
        ("post-failure", f"{np.mean(post):.2f}", f"{np.max(post):.0f}"),
        ("analytic (pre)", f"{eq_flux_pre:.2f}", "-"),
    ]
    table = format_table(
        ["window", "mean transfers/period", "max transfers/period"], rows
    )
    mask = times >= int(fail_at * 0.8)
    plot = render_series(
        times[mask], {"Rcptv->Stash": flux[mask]},
        width=70, height=14,
        title="Figure 6: file flux rate (transfers per period, "
              "ensemble mean)",
    )
    # Noise gate: the shape checks compare *mean transfer rates*, so
    # they need enough expected transfer events in the observation
    # windows to rise above shot noise.  Reduced-scale runs (small N
    # shrinks the equilibrium flux linearly, short horizons shrink the
    # windows) fall below that and used to false-fail at
    # REPRO_BENCH_SCALE < ~0.1; they now skip the assertions instead
    # (the artifact is still written, marked as sub-scale).
    expected_pre = eq_flux_pre * data["trials"] * len(pre)
    expected_post = (eq_flux_pre / 2) * data["trials"] * len(post)
    fragile = (
        expected_pre < MIN_PRE_EVENTS or expected_post < MIN_POST_EVENTS
        or len(pre) < 5 or len(post) < 5
    )
    status = (
        f"SKIPPED (sub-scale: ~{expected_pre:.0f} expected pre-failure / "
        f"~{expected_post:.0f} post-failure transfer events, need "
        f">= {MIN_PRE_EVENTS:g} / {MIN_POST_EVENTS:g})" if fragile else "PASS"
    )
    report("fig6_endemic_flux", "\n".join([
        f"N={n}  trials={data['trials']}  failure at t={fail_at}",
        "paper shape: flux stays low; no drastic change at the failure",
        f"status: {status}",
        "",
        table,
        "",
        plot,
    ]))

    if fragile:
        pytest.skip(
            f"fig6 flux assertions need >= {MIN_PRE_EVENTS:g} pre- and "
            f">= {MIN_POST_EVENTS:g} post-failure expected transfer events "
            f"(got ~{expected_pre:.0f} / ~{expected_post:.0f}); raise "
            "REPRO_BENCH_SCALE"
        )
    # Shape: the flux stays low (single digits per period for this
    # configuration) and the failure does not cause a drastic spike.
    assert np.mean(pre) == pytest.approx(eq_flux_pre, rel=0.5)
    assert np.max(post) <= max(10.0, 6 * np.mean(pre))
    # Post-failure flux roughly halves with the stash population.
    assert np.mean(post) == pytest.approx(np.mean(pre) / 2, rel=0.6)