"""FIG9: endemic replication under host churn (state counts, batched).

Paper: Figure 9 -- N = 2000, b = 32, gamma = 0.1, alpha = 0.005,
6-minute periods, availability traces injected hourly (Overnet-style;
hourly churn 10-25% of the system).  The stasher, averse and receptive
counts remain stable, and the stasher count stays low.

Our traces are synthetic but calibrated to the statistics the paper
cites (see repro.runtime.churn).  The experiment runs as a 6-trial
batched ensemble with an independent trace per trial: plots show the
ensemble means, and the paper's *stability* claims are asserted per
trial (stability of the mean would be a weaker statement).
"""

import numpy as np
import pytest

from bench_util import format_table, report
from endemic_runs import churn_run

from repro.viz.ascii_plot import render_series


def test_fig9_churn_counts(run_once):
    data = run_once(churn_run)
    recorder, traces, params, n = (
        data["recorder"], data["traces"], data["params"], data["n"],
    )
    hours, trials = data["hours"], data["trials"]

    times = recorder.times / 10.0  # periods -> hours
    mean_series = {
        "Stash:Alive": recorder.mean_counts("y"),
        "Rcptv:Alive": recorder.mean_counts("x"),
        "Avers:Alive": recorder.mean_counts("z"),
    }
    # Observation window: the last ~20 hours (paper plots 150-170h).
    window = times >= (hours - 20)

    churn_rates = np.concatenate([t.hourly_churn_rates() for t in traces])
    stash_trials = recorder.counts("y")[:, window]  # (M, window periods)
    # Per-trial stability: coefficient of variation of each trial's
    # stasher series over the window.
    stash_cvs = stash_trials.std(axis=1) / stash_trials.mean(axis=1)

    rows = [
        (name, f"{np.mean(values[window]):.1f}",
         f"{np.min(values[window]):.0f}", f"{np.max(values[window]):.0f}")
        for name, values in mean_series.items()
    ]
    plot = render_series(
        times[window],
        {k: v[window] for k, v in mean_series.items()},
        width=70, height=18,
        title="Figure 9: endemic under churn (ensemble-mean counts vs hours)",
    )
    alive_mean = float(np.mean(recorder.mean_alive()[window]))
    rejoins = float(np.mean([t.rejoins_per_day() for t in traces]))
    availability = float(np.mean([t.mean_availability() for t in traces]))
    report("fig9_churn_counts", "\n".join([
        f"N={n}, trials={trials}, b=32, gamma=0.1, alpha=0.005, "
        f"6-minute periods",
        f"traces: hourly churn mean {np.mean(churn_rates):.1%} "
        f"(paper band 10-25%), rejoins/day {rejoins:.1f} "
        f"(Overnet: 6.4), availability {availability:.1%}",
        f"alive mean over window: {alive_mean:.0f}",
        f"per-trial stasher coefficient of variation over window: "
        f"{np.array2string(stash_cvs, precision=2)}",
        "note: under churn the stash level sits above the closed-system "
        f"equilibrium ({params.equilibrium_counts(n)['y']:.0f}) because "
        "every rejoining host is receptive and b=32 converts receptives "
        "within ~1 period; the paper's claims are about *stability*.",
        "",
        format_table(["series (ensemble mean)", "window mean", "min", "max"],
                     rows),
        "",
        plot,
    ]))

    # Trace statistics in the paper's band.
    assert 0.08 <= float(np.mean(churn_rates)) <= 0.27
    # Stability, per trial: stashers never die out and fluctuate
    # moderately in every ensemble member.
    assert np.min(stash_trials) > 0
    assert np.all(stash_cvs < 0.35)
    # "The number of stashers stays low": well under half of the alive
    # population (most hosts are averse or offline at any moment).
    assert np.mean(stash_trials) < 0.5 * alive_mean