"""FIG9: endemic replication under host churn (state counts).

Paper: Figure 9 -- N = 2000, b = 32, gamma = 0.1, alpha = 0.005,
6-minute periods, availability traces injected hourly (Overnet-style;
hourly churn 10-25% of the system).  The stasher, averse and receptive
counts remain stable, and the stasher count stays low.

Our traces are synthetic but calibrated to the statistics the paper
cites (see repro.runtime.churn).
"""

import numpy as np
import pytest

from bench_util import format_table, report
from endemic_runs import churn_run

from repro.viz.ascii_plot import render_series


def test_fig9_churn_counts(run_once):
    data = run_once(churn_run)
    recorder, trace, params, n = (
        data["recorder"], data["trace"], data["params"], data["n"],
    )
    hours = data["hours"]

    times = recorder.times / 10.0  # periods -> hours
    series = {
        "Stash:Alive": recorder.counts("y"),
        "Rcptv:Alive": recorder.counts("x"),
        "Avers:Alive": recorder.counts("z"),
    }
    # Observation window: the last ~20 hours (paper plots 150-170h).
    window = times >= (hours - 20)

    churn_rates = trace.hourly_churn_rates()
    stash_window = series["Stash:Alive"][window]
    stash_cv = float(np.std(stash_window) / np.mean(stash_window))

    rows = [
        (name, f"{np.mean(values[window]):.1f}",
         f"{np.min(values[window])}", f"{np.max(values[window])}")
        for name, values in series.items()
    ]
    plot = render_series(
        times[window],
        {k: v[window] for k, v in series.items()},
        width=70, height=18,
        title="Figure 9: endemic under churn (counts vs hours)",
    )
    alive_mean = float(np.mean(recorder.alive_series()[window]))
    report("fig9_churn_counts", "\n".join([
        f"N={n}, b=32, gamma=0.1, alpha=0.005, 6-minute periods",
        f"trace: hourly churn mean {np.mean(churn_rates):.1%} "
        f"(paper band 10-25%), rejoins/day {trace.rejoins_per_day():.1f} "
        f"(Overnet: 6.4), availability {trace.mean_availability():.1%}",
        f"alive mean over window: {alive_mean:.0f}",
        f"stasher count coefficient of variation over window: {stash_cv:.2f}",
        "note: under churn the stash level sits above the closed-system "
        f"equilibrium ({params.equilibrium_counts(n)['y']:.0f}) because "
        "every rejoining host is receptive and b=32 converts receptives "
        "within ~1 period; the paper's claims are about *stability*.",
        "",
        format_table(["series", "window mean", "min", "max"], rows),
        "",
        plot,
    ]))

    # Trace statistics in the paper's band.
    assert 0.08 <= float(np.mean(churn_rates)) <= 0.27
    # Stability: stashers never die out and fluctuate moderately.
    assert np.min(stash_window) > 0
    assert stash_cv < 0.35
    # "The number of stashers stays low": well under half of the alive
    # population (most hosts are averse or offline at any moment).
    assert np.mean(stash_window) < 0.5 * alive_mean